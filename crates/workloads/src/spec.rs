//! Workload scaling.
//!
//! The paper's workloads (Table 5) run millions of files and tens of millions
//! of operations on real hardware for hours. The harness defaults reproduce
//! the same operation mixes over working sets scaled down so every figure
//! regenerates in minutes on a laptop; [`Scale`] is the single knob.

use serde::{Deserialize, Serialize};

/// A multiplicative scale applied to file counts and operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    factor: f64,
}

impl Default for Scale {
    fn default() -> Self {
        Self { factor: 1.0 }
    }
}

impl Scale {
    /// The harness default (already scaled down from the paper's Table 5).
    pub fn new(factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Self { factor }
    }

    /// A very small scale for unit tests and smoke runs.
    pub fn tiny() -> Self {
        Self { factor: 0.05 }
    }

    /// The scale factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Scales a base count, never below 1.
    pub fn count(&self, base: usize) -> usize {
        ((base as f64 * self.factor).round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_identity() {
        let s = Scale::default();
        assert_eq!(s.count(100), 100);
        assert_eq!(s.factor(), 1.0);
    }

    #[test]
    fn scaling_rounds_and_floors_at_one() {
        let s = Scale::new(0.1);
        assert_eq!(s.count(100), 10);
        assert_eq!(s.count(3), 1);
        assert_eq!(Scale::tiny().count(4), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = Scale::new(0.0);
    }
}
