//! Filebench macro-benchmark personalities: Varmail, Fileserver, Webserver,
//! Webproxy (Table 5).
//!
//! Each personality reproduces the operation mix of its Filebench counterpart:
//!
//! * **Varmail** — mail server: delete / create+append+fsync /
//!   read+append+fsync / read, on many small (16 KB) files;
//! * **Fileserver** — create+write, append, whole-file read, delete and stat
//!   on larger (128 KB) files;
//! * **Webserver** — ten whole-file reads plus a small log append per
//!   iteration (read-heavy);
//! * **Webproxy** — delete + create+append plus five reads per iteration
//!   (read-heavy with frequent directory churn).

use fskit::{FileSystem, FileSystemExt, FsResult, OpenFlags};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::metrics::{OpClass, Recorder};
use crate::spec::Scale;
use crate::Workload;

/// The four Filebench personalities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Personality {
    /// Mail-server workload.
    Varmail,
    /// File-server workload.
    Fileserver,
    /// Static web-server workload.
    Webserver,
    /// Web-proxy cache workload.
    Webproxy,
}

impl Personality {
    /// All personalities in the paper's order.
    pub const ALL: [Personality; 4] = [
        Personality::Varmail,
        Personality::Fileserver,
        Personality::Webserver,
        Personality::Webproxy,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Personality::Varmail => "varmail",
            Personality::Fileserver => "fileserver",
            Personality::Webserver => "webserver",
            Personality::Webproxy => "webproxy",
        }
    }
}

/// A Filebench-style macro workload.
#[derive(Debug, Clone)]
pub struct Filebench {
    /// Which personality.
    pub personality: Personality,
    /// Number of files in the data set.
    pub files: usize,
    /// Mean file size in bytes.
    pub file_size: usize,
    /// Number of measured iterations of the personality's operation loop.
    pub iterations: usize,
    /// Size of one append in bytes.
    pub append_size: usize,
}

impl Filebench {
    /// Builds a personality with the paper's shape (Table 5) scaled by
    /// `scale`. Harness base: 400 files / 600 iterations.
    pub fn new(personality: Personality, scale: Scale) -> Self {
        let (files, file_size, iterations, append_size) = match personality {
            Personality::Varmail => (scale.count(400), 16 << 10, scale.count(600), 8 << 10),
            Personality::Fileserver => (scale.count(100), 128 << 10, scale.count(300), 16 << 10),
            Personality::Webserver => (scale.count(400), 16 << 10, scale.count(600), 1 << 10),
            Personality::Webproxy => (scale.count(400), 16 << 10, scale.count(600), 16 << 10),
        };
        Self { personality, files, file_size, iterations, append_size }
    }

    fn path(&self, i: usize) -> String {
        format!("/set/dir{}/file{}", i % 16, i)
    }

    /// Number of file indices `i < files` with `i % shards == shard` — the
    /// file subset one shard owns.
    fn shard_file_count(&self, shard: usize, shards: usize) -> usize {
        if shard >= self.files {
            0
        } else {
            (self.files - shard).div_ceil(shards)
        }
    }

    /// Draws a file index from this shard's own subset. With one shard this
    /// is exactly `gen_range(0..files)`, so the sequential run is unchanged.
    fn shard_pick(&self, rng: &mut SmallRng, shard: usize, shards: usize) -> usize {
        shard + rng.gen_range(0..self.shard_file_count(shard, shards)) * shards
    }

    fn read_whole(&self, fs: &dyn FileSystem, path: &str) -> FsResult<usize> {
        match fs.read_file(path) {
            Ok(data) => Ok(data.len()),
            Err(fskit::FsError::NotFound(_)) => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Workload for Filebench {
    fn name(&self) -> String {
        self.personality.label().to_string()
    }

    fn setup(&self, fs: &dyn FileSystem, rng: &mut SmallRng) -> FsResult<()> {
        fs.mkdir("/set")?;
        for d in 0..16 {
            fs.mkdir(&format!("/set/dir{d}"))?;
        }
        fs.mkdir("/logs")?;
        fs.write_file("/logs/weblog", b"")?;
        let mut payload = vec![0u8; self.file_size];
        for i in 0..self.files {
            rng.fill(&mut payload[..64]);
            fs.write_file(&self.path(i), &payload)?;
        }
        fs.sync()
    }

    fn run(&self, fs: &dyn FileSystem, rng: &mut SmallRng, rec: &mut Recorder) -> FsResult<()> {
        self.run_shard(fs, 0, 1, rng, rec)
    }

    /// Shard `shard` runs iterations `shard, shard+shards, ...` over its own
    /// file subset (`i % shards == shard`), so concurrent shards never race
    /// on the same data files. The web-server log is deliberately shared:
    /// concurrent appends through `O_APPEND` must still interleave safely.
    fn run_shard(
        &self,
        fs: &dyn FileSystem,
        shard: usize,
        shards: usize,
        rng: &mut SmallRng,
        rec: &mut Recorder,
    ) -> FsResult<()> {
        if self.shard_file_count(shard, shards) == 0 {
            return Ok(());
        }
        let clock = fs.clock();
        let append = vec![0xCD; self.append_size];
        for iter in (shard..self.iterations).step_by(shards.max(1)) {
            let pick = |rng: &mut SmallRng| self.shard_pick(rng, shard, shards);
            match self.personality {
                Personality::Varmail => {
                    // delete one mail file
                    let victim = self.path(pick(rng));
                    let sw = rec.start(&clock);
                    if fs.exists(&victim) {
                        fs.unlink(&victim)?;
                    }
                    rec.finish(&clock, sw, OpClass::Meta, 0);
                    // compose: create + append + fsync
                    let sw = rec.start(&clock);
                    let fd = fs.open(&victim, OpenFlags::create_rw())?;
                    fs.append(fd, &append)?;
                    fs.fsync(fd)?;
                    fs.close(fd)?;
                    rec.finish(&clock, sw, OpClass::Write, self.append_size);
                    // read + append + fsync another mailbox
                    let other = self.path(pick(rng));
                    if fs.exists(&other) {
                        let sw = rec.start(&clock);
                        let n = self.read_whole(fs, &other)?;
                        rec.finish(&clock, sw, OpClass::Read, n);
                        let sw = rec.start(&clock);
                        let fd = fs.open(&other, OpenFlags::read_write().with_append())?;
                        fs.append(fd, &append)?;
                        fs.fsync(fd)?;
                        fs.close(fd)?;
                        rec.finish(&clock, sw, OpClass::Write, self.append_size);
                    }
                    // read a third mailbox
                    let third = self.path(pick(rng));
                    let sw = rec.start(&clock);
                    let n = self.read_whole(fs, &third)?;
                    rec.finish(&clock, sw, OpClass::Read, n);
                }
                Personality::Fileserver => {
                    // create a new file and write it whole
                    let fresh = format!("/set/dir{}/new{}", iter % 16, iter);
                    let sw = rec.start(&clock);
                    let fd = fs.open(&fresh, OpenFlags::create_truncate())?;
                    fs.write(fd, 0, &vec![1u8; self.file_size])?;
                    fs.close(fd)?;
                    rec.finish(&clock, sw, OpClass::Write, self.file_size);
                    // append to an existing file
                    let target = self.path(pick(rng));
                    if fs.exists(&target) {
                        let sw = rec.start(&clock);
                        let fd = fs.open(&target, OpenFlags::read_write().with_append())?;
                        fs.append(fd, &append)?;
                        fs.close(fd)?;
                        rec.finish(&clock, sw, OpClass::Write, self.append_size);
                    }
                    // read a whole file
                    let target = self.path(pick(rng));
                    let sw = rec.start(&clock);
                    let n = self.read_whole(fs, &target)?;
                    rec.finish(&clock, sw, OpClass::Read, n);
                    // delete the freshly written file and stat another
                    let sw = rec.start(&clock);
                    fs.unlink(&fresh)?;
                    let _ = fs.stat(&self.path(pick(rng)));
                    rec.finish(&clock, sw, OpClass::Meta, 0);
                }
                Personality::Webserver => {
                    for _ in 0..10 {
                        let target = self.path(pick(rng));
                        let sw = rec.start(&clock);
                        let n = self.read_whole(fs, &target)?;
                        rec.finish(&clock, sw, OpClass::Read, n);
                    }
                    let sw = rec.start(&clock);
                    let fd = fs.open("/logs/weblog", OpenFlags::read_write().with_append())?;
                    fs.append(fd, &append)?;
                    fs.close(fd)?;
                    rec.finish(&clock, sw, OpClass::Write, self.append_size);
                }
                Personality::Webproxy => {
                    let victim = self.path(pick(rng));
                    let sw = rec.start(&clock);
                    if fs.exists(&victim) {
                        fs.unlink(&victim)?;
                    }
                    rec.finish(&clock, sw, OpClass::Meta, 0);
                    let sw = rec.start(&clock);
                    let fd = fs.open(&victim, OpenFlags::create_truncate())?;
                    fs.write(fd, 0, &append)?;
                    fs.close(fd)?;
                    rec.finish(&clock, sw, OpClass::Write, self.append_size);
                    for _ in 0..5 {
                        let target = self.path(pick(rng));
                        let sw = rec.start(&clock);
                        let n = self.read_whole(fs, &target)?;
                        rec.finish(&clock, sw, OpClass::Read, n);
                    }
                }
            }
        }
        let sw = rec.start(&clock);
        fs.sync()?;
        rec.finish(&clock, sw, OpClass::Write, 0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_workload;
    use crate::fsfactory::FsKind;
    use mssd::MssdConfig;

    #[test]
    fn every_personality_runs_on_bytefs_and_ext4() {
        for p in Personality::ALL {
            for kind in [FsKind::ByteFs, FsKind::Ext4] {
                let w = Filebench::new(p, Scale::tiny());
                let result = run_workload(kind, MssdConfig::small_test(), &w, 7).unwrap();
                assert!(result.ops > 0, "{p:?} on {kind}");
                assert!(result.read.count + result.write.count > 0);
            }
        }
    }

    #[test]
    fn webserver_is_read_dominated_and_varmail_write_dominated() {
        let web = Filebench::new(Personality::Webserver, Scale::tiny());
        let r = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &web, 3).unwrap();
        assert!(r.app_read_bytes > r.app_write_bytes, "webserver reads more than it writes");

        let mail = Filebench::new(Personality::Varmail, Scale::tiny());
        let r = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &mail, 3).unwrap();
        assert!(r.write.count > 0 && r.read.count > 0);
    }

    #[test]
    fn personalities_have_table5_shapes() {
        let v = Filebench::new(Personality::Varmail, Scale::default());
        assert_eq!(v.file_size, 16 << 10);
        let f = Filebench::new(Personality::Fileserver, Scale::default());
        assert_eq!(f.file_size, 128 << 10);
        assert!(f.files < v.files);
    }
}
