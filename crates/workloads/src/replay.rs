//! Deterministic capture and replay of file-system op traces.
//!
//! The `mssd::trace` pipeline (PR 9) captures what the *device* saw — every
//! NVMe-style command with timestamps and outcomes, exported by
//! [`mssd::op_trace_text`] and read back by [`mssd::parse_op_trace`]. That
//! format is ideal for inspecting one run but cannot be re-driven against a
//! *different* file system: a device command stream encodes one fs
//! implementation's private layout decisions. This module records one level
//! up, at the [`FileSystem`] boundary, where the op stream (`create`,
//! `write`, `fsync`, `rename`, ...) is implementation-neutral:
//!
//! * [`RecordingFs`] wraps any `FileSystem` and logs every call — op kind,
//!   paths, handle identity, offsets, byte-exact payloads, the ambient
//!   tenant (from [`mssd::trace::ctx`]) and the virtual timestamp at issue;
//! * [`OpTrace`] is the captured trace: a versioned header
//!   ([`TraceMeta`]: schema, workload name, seed, device geometry) plus the
//!   ordered records, serializable as grep-able text
//!   ([`OpTrace::to_text`]) and as a compact binary sibling for large
//!   corpora ([`OpTrace::to_binary`]);
//! * [`replay`] re-drives a parsed trace against any [`FileSystem`] impl
//!   (bytefs, ext4like, novalike, f2fslike, pmfslike) preserving per-tenant
//!   order, with configurable concurrency and timing ([`ReplaySpeed`]).
//!
//! # Timing model and determinism contract
//!
//! All timing is the shared **virtual clock** — wall time never enters. At
//! [`ReplaySpeed::Exact`], the replayer tops the clock up to each record's
//! captured issue timestamp before applying it, reconstructing the recorded
//! timeline exactly: inter-op gaps (a bursty workload's idle windows, the
//! measurement harness's per-op host-CPU charge) reappear as recorded.
//! Because every file system derives its state — including inode
//! timestamps — from the same clock, an exact-speed single-threaded replay
//! of a trace against a fresh device of the same kind and geometry
//! reproduces the original run **bit for bit**: the remounted device digest
//! ([`mssd::CrashImage::digest`]) equals the recording run's.
//! [`ReplaySpeed::Scaled`] compresses (or stretches) the recorded gaps N×;
//! [`ReplaySpeed::Unthrottled`] drops them entirely and issues ops
//! back-to-back. In every mode, two replays of the same trace with the same
//! config are identical — the contract the CI `replay` job gates. With
//! `threads > 1` the per-tenant streams interleave on real OS threads, so
//! physical log placement (and hence the raw image digest) is
//! schedule-dependent; logical file content still converges because tenants
//! touch disjoint files (the [`crate::Workload::run_shard`] contract).
//!
//! See `DESIGN-replay.md` next to this crate for the format grammar, the
//! corpus index ([`crate::corpus`]) and the full determinism argument.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use fskit::{Fd, FileSystem, FsError, FsResult, Metadata, OpenFlags};
use mssd::clock::Stopwatch;
use mssd::{Mssd, MssdConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::driver::RunResult;
use crate::fsfactory::FsKind;
use crate::metrics::{Histogram, LatencyStats, OpClass, Recorder};
use crate::Workload;

/// Schema version of the fs-level op-trace formats (text and binary).
pub const FS_TRACE_SCHEMA: u64 = 1;

/// Magic number opening the binary trace format.
pub const FS_TRACE_MAGIC: [u8; 4] = *b"FSRB";

/// Sentinel recorded as the handle of a `create`/`open` that failed.
pub const NO_FD: u64 = u64::MAX;

// ---------------------------------------------------------------------------
// Trace data model
// ---------------------------------------------------------------------------

/// Trace header: schema plus everything a replayer needs to validate it is
/// re-driving the trace against a compatible device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Format schema version ([`FS_TRACE_SCHEMA`] for fresh traces).
    pub schema: u64,
    /// Workload label the trace was recorded from.
    pub name: String,
    /// Workload RNG seed of the recording run.
    pub seed: u64,
    /// Device capacity the trace was recorded against (0 = unknown).
    pub capacity_bytes: u64,
    /// Device page size (0 = unknown).
    pub page_size: u64,
}

/// A write payload. Workload payloads are overwhelmingly uniform fill
/// patterns (`vec![tag; n]`); storing them as a (byte, length) pair keeps
/// multi-megabyte traces small while staying byte-exact — replay must
/// reproduce the recorded image bit for bit, so payloads are never lossy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// `len` copies of `byte`.
    Fill {
        /// The repeated byte value.
        byte: u8,
        /// Payload length in bytes.
        len: u32,
    },
    /// Verbatim bytes (non-uniform payloads).
    Bytes(Vec<u8>),
}

impl Payload {
    /// Captures a slice, compressing uniform fills.
    pub fn from_slice(data: &[u8]) -> Self {
        match data.first() {
            Some(&b) if data.iter().all(|&x| x == b) => {
                Payload::Fill { byte: b, len: data.len() as u32 }
            }
            _ => Payload::Bytes(data.to_vec()),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::Fill { len, .. } => *len as usize,
            Payload::Bytes(b) => b.len(),
        }
    }

    /// `true` for a zero-length payload.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the payload bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        match self {
            Payload::Fill { byte, len } => vec![*byte; *len as usize],
            Payload::Bytes(b) => b.clone(),
        }
    }
}

/// One recorded [`FileSystem`] call. Handle-referencing ops carry the *fd
/// value of the recording run*; the replayer maps it to the live handle its
/// own `create`/`open` returned ([`NO_FD`] marks a failed open, which maps
/// to nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings mirror the FileSystem trait methods
pub enum OpKind {
    Create { path: String, fd: u64 },
    Open { path: String, flags: u8, fd: u64 },
    Close { fd: u64 },
    Read { fd: u64, offset: u64, len: u32 },
    Write { fd: u64, offset: u64, data: Payload },
    Append { fd: u64, data: Payload },
    Fsync { fd: u64 },
    Fdatasync { fd: u64 },
    Truncate { fd: u64, size: u64 },
    Fstat { fd: u64 },
    Stat { path: String },
    Mkdir { path: String },
    Rmdir { path: String },
    Unlink { path: String },
    Rename { from: String, to: String },
    Readdir { path: String },
    Sync,
    DropCaches,
    Unmount,
}

/// Packs [`OpenFlags`] into the trace's one-byte representation.
pub fn flag_bits(flags: OpenFlags) -> u8 {
    (flags.create as u8)
        | (flags.truncate as u8) << 1
        | (flags.write as u8) << 2
        | (flags.direct as u8) << 3
        | (flags.append as u8) << 4
}

/// Unpacks [`flag_bits`].
pub fn open_flags(bits: u8) -> OpenFlags {
    OpenFlags {
        create: bits & 1 != 0,
        truncate: bits & 2 != 0,
        write: bits & 4 != 0,
        direct: bits & 8 != 0,
        append: bits & 16 != 0,
    }
}

/// One trace record: an op, who issued it, when, and how it resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Global sequence number (total order as recorded).
    pub seq: u64,
    /// Tenant / shard that issued the op (ambient [`mssd::trace::ctx`]).
    pub tenant: u16,
    /// Virtual nanoseconds since trace start, captured at op *issue*.
    pub vts_ns: u64,
    /// `true` for measured-phase ops; setup/teardown records are replayed
    /// but not measured.
    pub measured: bool,
    /// Whether the call succeeded in the recording run.
    pub ok: bool,
    /// The call itself.
    pub op: OpKind,
}

/// A captured fs-level op trace: header plus ordered records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// Header metadata.
    pub meta: TraceMeta,
    /// Records in global sequence order.
    pub records: Vec<OpRecord>,
}

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

/// Percent-escapes a path/name so every serialized token is whitespace-free.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if b.is_ascii_graphic() && b != b'%' {
            out.push(b as char);
        } else {
            let _ = write!(out, "%{b:02x}");
        }
    }
    out
}

/// Reverses [`esc`].
fn unesc(s: &str) -> Result<String, String> {
    let mut out = Vec::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex =
                bytes.get(i + 1..i + 3).ok_or_else(|| format!("truncated escape in {s:?}"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| format!("bad escape in {s:?}"))?;
            out.push(
                u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape %{hex} in {s:?}"))?,
            );
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| format!("escaped token {s:?} is not UTF-8"))
}

fn payload_token(p: &Payload) -> String {
    match p {
        Payload::Fill { byte, len } => format!("fill={byte:02x}:{len}"),
        Payload::Bytes(b) => {
            let mut t = String::with_capacity(4 + b.len() * 2);
            t.push_str("hex=");
            for x in b {
                let _ = write!(t, "{x:02x}");
            }
            t
        }
    }
}

fn parse_payload(tok: &str) -> Result<Payload, String> {
    if let Some(v) = tok.strip_prefix("fill=") {
        let (byte, len) = v.split_once(':').ok_or_else(|| format!("bad fill token {tok:?}"))?;
        return Ok(Payload::Fill {
            byte: u8::from_str_radix(byte, 16).map_err(|e| format!("bad fill byte: {e}"))?,
            len: len.parse().map_err(|e| format!("bad fill length: {e}"))?,
        });
    }
    let v = tok.strip_prefix("hex=").ok_or_else(|| format!("expected a payload, got {tok:?}"))?;
    if v.len() % 2 != 0 {
        return Err(format!("odd hex payload length in {tok:?}"));
    }
    let mut b = Vec::with_capacity(v.len() / 2);
    for i in (0..v.len()).step_by(2) {
        b.push(u8::from_str_radix(&v[i..i + 2], 16).map_err(|e| format!("bad hex payload: {e}"))?);
    }
    Ok(Payload::Bytes(b))
}

impl OpKind {
    /// The op's serialized text tokens (op name first).
    fn to_tokens(&self) -> String {
        match self {
            OpKind::Create { path, fd } => format!("create fd={fd} path={}", esc(path)),
            OpKind::Open { path, flags, fd } => {
                format!("open fd={fd} flags={flags} path={}", esc(path))
            }
            OpKind::Close { fd } => format!("close fd={fd}"),
            OpKind::Read { fd, offset, len } => format!("read fd={fd} off={offset} len={len}"),
            OpKind::Write { fd, offset, data } => {
                format!("write fd={fd} off={offset} {}", payload_token(data))
            }
            OpKind::Append { fd, data } => format!("append fd={fd} {}", payload_token(data)),
            OpKind::Fsync { fd } => format!("fsync fd={fd}"),
            OpKind::Fdatasync { fd } => format!("fdatasync fd={fd}"),
            OpKind::Truncate { fd, size } => format!("truncate fd={fd} size={size}"),
            OpKind::Fstat { fd } => format!("fstat fd={fd}"),
            OpKind::Stat { path } => format!("stat path={}", esc(path)),
            OpKind::Mkdir { path } => format!("mkdir path={}", esc(path)),
            OpKind::Rmdir { path } => format!("rmdir path={}", esc(path)),
            OpKind::Unlink { path } => format!("unlink path={}", esc(path)),
            OpKind::Rename { from, to } => format!("rename from={} to={}", esc(from), esc(to)),
            OpKind::Readdir { path } => format!("readdir path={}", esc(path)),
            OpKind::Sync => "sync".to_string(),
            OpKind::DropCaches => "drop_caches".to_string(),
            OpKind::Unmount => "unmount".to_string(),
        }
    }
}

/// Parses `key=value`, returning the value.
fn field<'a>(tok: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    let tok = tok.ok_or_else(|| format!("missing {key} field"))?;
    tok.strip_prefix(key)
        .and_then(|v| v.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=..., got {tok:?}"))
}

fn field_u64(tok: Option<&str>, key: &str) -> Result<u64, String> {
    let v = field(tok, key)?;
    match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    }
    .map_err(|e| format!("bad {key} value {v:?}: {e}"))
}

fn field_path(tok: Option<&str>, key: &str) -> Result<String, String> {
    unesc(field(tok, key)?)
}

fn parse_op(mut toks: std::str::SplitAsciiWhitespace<'_>) -> Result<OpKind, String> {
    let op = toks.next().ok_or("missing op name")?;
    Ok(match op {
        "create" => OpKind::Create {
            fd: field_u64(toks.next(), "fd")?,
            path: field_path(toks.next(), "path")?,
        },
        "open" => OpKind::Open {
            fd: field_u64(toks.next(), "fd")?,
            flags: field_u64(toks.next(), "flags")? as u8,
            path: field_path(toks.next(), "path")?,
        },
        "close" => OpKind::Close { fd: field_u64(toks.next(), "fd")? },
        "read" => OpKind::Read {
            fd: field_u64(toks.next(), "fd")?,
            offset: field_u64(toks.next(), "off")?,
            len: field_u64(toks.next(), "len")? as u32,
        },
        "write" => OpKind::Write {
            fd: field_u64(toks.next(), "fd")?,
            offset: field_u64(toks.next(), "off")?,
            data: parse_payload(toks.next().ok_or("missing payload")?)?,
        },
        "append" => OpKind::Append {
            fd: field_u64(toks.next(), "fd")?,
            data: parse_payload(toks.next().ok_or("missing payload")?)?,
        },
        "fsync" => OpKind::Fsync { fd: field_u64(toks.next(), "fd")? },
        "fdatasync" => OpKind::Fdatasync { fd: field_u64(toks.next(), "fd")? },
        "truncate" => OpKind::Truncate {
            fd: field_u64(toks.next(), "fd")?,
            size: field_u64(toks.next(), "size")?,
        },
        "fstat" => OpKind::Fstat { fd: field_u64(toks.next(), "fd")? },
        "stat" => OpKind::Stat { path: field_path(toks.next(), "path")? },
        "mkdir" => OpKind::Mkdir { path: field_path(toks.next(), "path")? },
        "rmdir" => OpKind::Rmdir { path: field_path(toks.next(), "path")? },
        "unlink" => OpKind::Unlink { path: field_path(toks.next(), "path")? },
        "rename" => OpKind::Rename {
            from: field_path(toks.next(), "from")?,
            to: field_path(toks.next(), "to")?,
        },
        "readdir" => OpKind::Readdir { path: field_path(toks.next(), "path")? },
        "sync" => OpKind::Sync,
        "drop_caches" => OpKind::DropCaches,
        "unmount" => OpKind::Unmount,
        other => return Err(format!("unknown op {other:?}")),
    })
}

impl OpTrace {
    /// Serializes the trace as text: one `#fstrace` header line, then one
    /// line per record — sequence, issue timestamp, tenant, phase
    /// (`S`etup/`R`un), outcome, op tokens. Line-oriented and
    /// whitespace-delimited, so traces grep and diff cleanly.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.records.len() * 48);
        let _ = writeln!(
            out,
            "#fstrace v{} name={} seed={:#x} capacity_bytes={} page_size={} ops={}",
            self.meta.schema,
            esc(&self.meta.name),
            self.meta.seed,
            self.meta.capacity_bytes,
            self.meta.page_size,
            self.records.len()
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{} {} t={} {} {} {}",
                r.seq,
                r.vts_ns,
                r.tenant,
                if r.measured { 'R' } else { 'S' },
                if r.ok { "ok" } else { "err" },
                r.op.to_tokens()
            );
        }
        out
    }

    /// Parses [`OpTrace::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input or an
    /// unsupported schema version.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut meta: Option<TraceMeta> = None;
        let mut records = Vec::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            let at = |e: String| format!("line {}: {e}", n + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("#fstrace ") {
                let mut toks = rest.split_ascii_whitespace();
                let version = toks.next().unwrap_or("");
                let schema: u64 = version
                    .strip_prefix('v')
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| at(format!("bad fstrace version {version:?}")))?;
                if schema > FS_TRACE_SCHEMA {
                    return Err(at(format!(
                        "fstrace schema v{schema} is newer than supported v{FS_TRACE_SCHEMA}"
                    )));
                }
                meta = Some(TraceMeta {
                    schema,
                    name: field_path(toks.next(), "name").map_err(&at)?,
                    seed: field_u64(toks.next(), "seed").map_err(&at)?,
                    capacity_bytes: field_u64(toks.next(), "capacity_bytes").map_err(&at)?,
                    page_size: field_u64(toks.next(), "page_size").map_err(&at)?,
                });
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let mut toks = line.split_ascii_whitespace();
            let seq: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| at("bad sequence number".into()))?;
            let vts_ns: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| at("bad issue timestamp".into()))?;
            let tenant = field_u64(toks.next(), "t").map_err(&at)? as u16;
            let measured = match toks.next() {
                Some("R") => true,
                Some("S") => false,
                other => return Err(at(format!("bad phase marker {other:?}"))),
            };
            let ok = match toks.next() {
                Some("ok") => true,
                Some("err") => false,
                other => return Err(at(format!("bad outcome {other:?}"))),
            };
            let op = parse_op(toks).map_err(&at)?;
            records.push(OpRecord { seq, tenant, vts_ns, measured, ok, op });
        }
        let meta = meta.ok_or("missing #fstrace header line")?;
        Ok(Self { meta, records })
    }

    /// Serializes the trace in the compact binary format: the
    /// [`FS_TRACE_MAGIC`] magic, a version word, the header, then
    /// fixed-width little-endian records. Roughly 4–10× smaller than the
    /// text form on payload-heavy corpora.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.records.len() * 32);
        out.extend_from_slice(&FS_TRACE_MAGIC);
        out.extend_from_slice(&(self.meta.schema as u32).to_le_bytes());
        put_str(&mut out, &self.meta.name);
        out.extend_from_slice(&self.meta.seed.to_le_bytes());
        out.extend_from_slice(&self.meta.capacity_bytes.to_le_bytes());
        out.extend_from_slice(&self.meta.page_size.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for r in &self.records {
            out.extend_from_slice(&r.vts_ns.to_le_bytes());
            out.extend_from_slice(&r.tenant.to_le_bytes());
            out.push((r.measured as u8) | (r.ok as u8) << 1);
            put_op(&mut out, &r.op);
        }
        out
    }

    /// Parses [`OpTrace::to_binary`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on a bad magic, an unsupported version or a
    /// truncated/corrupt body.
    pub fn from_binary(data: &[u8]) -> Result<Self, String> {
        let mut c = Cursor { data, pos: 0 };
        if c.take(4)? != FS_TRACE_MAGIC {
            return Err("not a binary fs trace (bad magic)".into());
        }
        let schema = u32::from_le_bytes(c.take(4)?.try_into().expect("4 bytes")) as u64;
        if schema > FS_TRACE_SCHEMA {
            return Err(format!(
                "binary fstrace schema v{schema} is newer than supported v{FS_TRACE_SCHEMA}"
            ));
        }
        let name = c.get_str()?;
        let seed = c.get_u64()?;
        let capacity_bytes = c.get_u64()?;
        let page_size = c.get_u64()?;
        let count = c.get_u64()?;
        // A corrupt count must not pre-allocate unbounded memory.
        let mut records = Vec::with_capacity((count as usize).min(1 << 20));
        for seq in 0..count {
            let vts_ns = c.get_u64()?;
            let tenant = c.get_u16()?;
            let bits = c.get_u8()?;
            let op = get_op(&mut c)?;
            records.push(OpRecord {
                seq,
                tenant,
                vts_ns,
                measured: bits & 1 != 0,
                ok: bits & 2 != 0,
                op,
            });
        }
        if c.pos != data.len() {
            return Err(format!("{} trailing bytes after the last record", data.len() - c.pos));
        }
        Ok(Self { meta: TraceMeta { schema, name, seed, capacity_bytes, page_size }, records })
    }

    /// Tenants present in the trace, ascending.
    pub fn tenants(&self) -> Vec<u16> {
        let mut t: Vec<u16> = self.records.iter().map(|r| r.tenant).collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

// Binary helpers -------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_payload(out: &mut Vec<u8>, p: &Payload) {
    match p {
        Payload::Fill { byte, len } => {
            out.push(0);
            out.push(*byte);
            out.extend_from_slice(&len.to_le_bytes());
        }
        Payload::Bytes(b) => {
            out.push(1);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
    }
}

fn put_op(out: &mut Vec<u8>, op: &OpKind) {
    match op {
        OpKind::Create { path, fd } => {
            out.push(1);
            put_str(out, path);
            out.extend_from_slice(&fd.to_le_bytes());
        }
        OpKind::Open { path, flags, fd } => {
            out.push(2);
            put_str(out, path);
            out.push(*flags);
            out.extend_from_slice(&fd.to_le_bytes());
        }
        OpKind::Close { fd } => {
            out.push(3);
            out.extend_from_slice(&fd.to_le_bytes());
        }
        OpKind::Read { fd, offset, len } => {
            out.push(4);
            out.extend_from_slice(&fd.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        OpKind::Write { fd, offset, data } => {
            out.push(5);
            out.extend_from_slice(&fd.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            put_payload(out, data);
        }
        OpKind::Append { fd, data } => {
            out.push(6);
            out.extend_from_slice(&fd.to_le_bytes());
            put_payload(out, data);
        }
        OpKind::Fsync { fd } => {
            out.push(7);
            out.extend_from_slice(&fd.to_le_bytes());
        }
        OpKind::Fdatasync { fd } => {
            out.push(8);
            out.extend_from_slice(&fd.to_le_bytes());
        }
        OpKind::Truncate { fd, size } => {
            out.push(9);
            out.extend_from_slice(&fd.to_le_bytes());
            out.extend_from_slice(&size.to_le_bytes());
        }
        OpKind::Fstat { fd } => {
            out.push(10);
            out.extend_from_slice(&fd.to_le_bytes());
        }
        OpKind::Stat { path } => {
            out.push(11);
            put_str(out, path);
        }
        OpKind::Mkdir { path } => {
            out.push(12);
            put_str(out, path);
        }
        OpKind::Rmdir { path } => {
            out.push(13);
            put_str(out, path);
        }
        OpKind::Unlink { path } => {
            out.push(14);
            put_str(out, path);
        }
        OpKind::Rename { from, to } => {
            out.push(15);
            put_str(out, from);
            put_str(out, to);
        }
        OpKind::Readdir { path } => {
            out.push(16);
            put_str(out, path);
        }
        OpKind::Sync => out.push(17),
        OpKind::DropCaches => out.push(18),
        OpKind::Unmount => out.push(19),
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        let end = end.ok_or_else(|| format!("truncated trace at byte {}", self.pos))?;
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn get_u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn get_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn get_u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn get_str(&mut self) -> Result<String, String> {
        let len = self.get_u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| "non-UTF-8 string".to_string())
    }

    fn get_payload(&mut self) -> Result<Payload, String> {
        match self.get_u8()? {
            0 => Ok(Payload::Fill { byte: self.get_u8()?, len: self.get_u32()? }),
            1 => {
                let len = self.get_u32()? as usize;
                Ok(Payload::Bytes(self.take(len)?.to_vec()))
            }
            t => Err(format!("unknown payload tag {t}")),
        }
    }
}

fn get_op(c: &mut Cursor<'_>) -> Result<OpKind, String> {
    Ok(match c.get_u8()? {
        1 => OpKind::Create { path: c.get_str()?, fd: c.get_u64()? },
        2 => OpKind::Open { path: c.get_str()?, flags: c.get_u8()?, fd: c.get_u64()? },
        3 => OpKind::Close { fd: c.get_u64()? },
        4 => OpKind::Read { fd: c.get_u64()?, offset: c.get_u64()?, len: c.get_u32()? },
        5 => OpKind::Write { fd: c.get_u64()?, offset: c.get_u64()?, data: c.get_payload()? },
        6 => OpKind::Append { fd: c.get_u64()?, data: c.get_payload()? },
        7 => OpKind::Fsync { fd: c.get_u64()? },
        8 => OpKind::Fdatasync { fd: c.get_u64()? },
        9 => OpKind::Truncate { fd: c.get_u64()?, size: c.get_u64()? },
        10 => OpKind::Fstat { fd: c.get_u64()? },
        11 => OpKind::Stat { path: c.get_str()? },
        12 => OpKind::Mkdir { path: c.get_str()? },
        13 => OpKind::Rmdir { path: c.get_str()? },
        14 => OpKind::Unlink { path: c.get_str()? },
        15 => OpKind::Rename { from: c.get_str()?, to: c.get_str()? },
        16 => OpKind::Readdir { path: c.get_str()? },
        17 => OpKind::Sync,
        18 => OpKind::DropCaches,
        19 => OpKind::Unmount,
        t => Err(format!("unknown op tag {t}"))?,
    })
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

struct RecState {
    records: Vec<OpRecord>,
    measured: bool,
}

/// A [`FileSystem`] wrapper that records every call into an op trace while
/// delegating to the wrapped implementation. Tenant attribution comes from
/// the ambient [`mssd::trace::ctx`] (set per shard by the concurrent
/// drivers and by multi-client corpus workloads), timestamps from the
/// device's virtual clock at call entry.
pub struct RecordingFs {
    inner: Arc<dyn FileSystem>,
    start_ns: u64,
    state: Mutex<RecState>,
}

impl RecordingFs {
    /// Wraps `inner`; the trace's timestamps are relative to this moment.
    pub fn new(inner: Arc<dyn FileSystem>) -> Self {
        let start_ns = inner.clock().now_ns();
        Self {
            inner,
            start_ns,
            state: Mutex::new(RecState { records: Vec::new(), measured: false }),
        }
    }

    /// Switches phase attribution: records are tagged measured (`R`) while
    /// `true`, setup/teardown (`S`) otherwise.
    pub fn set_measured(&self, measured: bool) {
        self.state.lock().expect("recording state").measured = measured;
    }

    /// Number of records captured so far.
    pub fn recorded_ops(&self) -> usize {
        self.state.lock().expect("recording state").records.len()
    }

    /// Consumes the recorder, producing the trace under `meta`.
    pub fn into_trace(self, meta: TraceMeta) -> OpTrace {
        OpTrace { meta, records: self.state.into_inner().expect("recording state").records }
    }

    fn vts(&self) -> u64 {
        self.inner.clock().now_ns().saturating_sub(self.start_ns)
    }

    fn record(&self, vts_ns: u64, ok: bool, op: OpKind) {
        let mut st = self.state.lock().expect("recording state");
        let seq = st.records.len() as u64;
        let measured = st.measured;
        st.records.push(OpRecord {
            seq,
            tenant: mssd::trace::ctx().tenant,
            vts_ns,
            measured,
            ok,
            op,
        });
    }
}

impl FileSystem for RecordingFs {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn device(&self) -> &Arc<Mssd> {
        self.inner.device()
    }

    fn create(&self, path: &str) -> FsResult<Fd> {
        let vts = self.vts();
        let res = self.inner.create(path);
        let fd = res.as_ref().map(|fd| fd.0).unwrap_or(NO_FD);
        self.record(vts, res.is_ok(), OpKind::Create { path: path.to_string(), fd });
        res
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        let vts = self.vts();
        let res = self.inner.open(path, flags);
        let fd = res.as_ref().map(|fd| fd.0).unwrap_or(NO_FD);
        self.record(
            vts,
            res.is_ok(),
            OpKind::Open { path: path.to_string(), flags: flag_bits(flags), fd },
        );
        res
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        let vts = self.vts();
        let res = self.inner.close(fd);
        self.record(vts, res.is_ok(), OpKind::Close { fd: fd.0 });
        res
    }

    fn read(&self, fd: Fd, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let vts = self.vts();
        let res = self.inner.read(fd, offset, len);
        self.record(
            vts,
            res.is_ok(),
            OpKind::Read { fd: fd.0, offset, len: len.min(u32::MAX as usize) as u32 },
        );
        res
    }

    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        let vts = self.vts();
        let res = self.inner.write(fd, offset, data);
        self.record(
            vts,
            res.is_ok(),
            OpKind::Write { fd: fd.0, offset, data: Payload::from_slice(data) },
        );
        res
    }

    fn append(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let vts = self.vts();
        let res = self.inner.append(fd, data);
        self.record(vts, res.is_ok(), OpKind::Append { fd: fd.0, data: Payload::from_slice(data) });
        res
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        let vts = self.vts();
        let res = self.inner.fsync(fd);
        self.record(vts, res.is_ok(), OpKind::Fsync { fd: fd.0 });
        res
    }

    fn fdatasync(&self, fd: Fd) -> FsResult<()> {
        let vts = self.vts();
        let res = self.inner.fdatasync(fd);
        self.record(vts, res.is_ok(), OpKind::Fdatasync { fd: fd.0 });
        res
    }

    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        let vts = self.vts();
        let res = self.inner.truncate(fd, size);
        self.record(vts, res.is_ok(), OpKind::Truncate { fd: fd.0, size });
        res
    }

    fn fstat(&self, fd: Fd) -> FsResult<Metadata> {
        let vts = self.vts();
        let res = self.inner.fstat(fd);
        self.record(vts, res.is_ok(), OpKind::Fstat { fd: fd.0 });
        res
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let vts = self.vts();
        let res = self.inner.stat(path);
        self.record(vts, res.is_ok(), OpKind::Stat { path: path.to_string() });
        res
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        let vts = self.vts();
        let res = self.inner.mkdir(path);
        self.record(vts, res.is_ok(), OpKind::Mkdir { path: path.to_string() });
        res
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let vts = self.vts();
        let res = self.inner.rmdir(path);
        self.record(vts, res.is_ok(), OpKind::Rmdir { path: path.to_string() });
        res
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let vts = self.vts();
        let res = self.inner.unlink(path);
        self.record(vts, res.is_ok(), OpKind::Unlink { path: path.to_string() });
        res
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let vts = self.vts();
        let res = self.inner.rename(from, to);
        self.record(
            vts,
            res.is_ok(),
            OpKind::Rename { from: from.to_string(), to: to.to_string() },
        );
        res
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<fskit::DirEntry>> {
        let vts = self.vts();
        let res = self.inner.readdir(path);
        self.record(vts, res.is_ok(), OpKind::Readdir { path: path.to_string() });
        res
    }

    fn sync(&self) -> FsResult<()> {
        let vts = self.vts();
        let res = self.inner.sync();
        self.record(vts, res.is_ok(), OpKind::Sync);
        res
    }

    fn drop_caches(&self) {
        let vts = self.vts();
        self.inner.drop_caches();
        self.record(vts, true, OpKind::DropCaches);
    }

    fn unmount(&self) -> FsResult<()> {
        let vts = self.vts();
        let res = self.inner.unmount();
        self.record(vts, res.is_ok(), OpKind::Unmount);
        res
    }
}

/// A recording run's full outcome: the trace plus the metrics and remounted
/// device digest the replays are validated against.
#[derive(Debug, Clone)]
pub struct Recorded {
    /// The captured op trace.
    pub trace: OpTrace,
    /// Metrics of the recording run (same shape as [`crate::run_workload`]).
    pub result: RunResult,
    /// Digest of the durable device image after unmount — the value an
    /// exact-speed same-fs replay must reproduce.
    pub remount_digest: u64,
}

/// Builds a fresh file system of `kind`, runs `workload` on it through a
/// [`RecordingFs`], and returns the captured trace with the run's metrics
/// and remounted-image digest. The setup phase and the final unmount are
/// recorded as unmeasured (`S`) records so the replayer re-drives them
/// without timing them, exactly as the measurement harness does.
///
/// # Errors
///
/// Propagates file-system errors from the workload.
pub fn record_workload(
    kind: FsKind,
    cfg: MssdConfig,
    workload: &dyn Workload,
    seed: u64,
) -> FsResult<Recorded> {
    let capacity_bytes = cfg.capacity_bytes;
    let page_size = cfg.page_size as u64;
    let (device, fs) = kind.build(cfg);
    let rec_fs = RecordingFs::new(fs);
    let mut rng = SmallRng::seed_from_u64(seed);
    workload.setup(&rec_fs, &mut rng)?;
    rec_fs.drop_caches();
    rec_fs.set_measured(true);

    let clock = device.clock();
    let before_traffic = device.traffic();
    let start_ns = clock.now_ns();
    let mut rec = Recorder::new();
    workload.run(&rec_fs, &mut rng, &mut rec)?;
    let elapsed_ns = clock.now_ns().saturating_sub(start_ns).max(1);
    let traffic = device.traffic().delta_since(&before_traffic);

    rec_fs.set_measured(false);
    rec_fs.unmount()?;
    device.quiesce_cleaning();
    let remount_digest = device.crash_image().digest();

    let ops = rec.ops;
    let result = RunResult {
        fs: rec_fs.name().to_string(),
        workload: workload.name(),
        ops,
        elapsed_ns,
        kops_per_sec: ops as f64 / (elapsed_ns as f64 / 1e9) / 1e3,
        read: rec.read_stats(),
        write: rec.write_stats(),
        meta: rec.meta_stats(),
        queue: rec.queue_stats(),
        traffic,
        app_read_bytes: rec.app_read_bytes,
        app_write_bytes: rec.app_write_bytes,
        page_size: device.page_size(),
        flush_errors: rec.flush_errors,
        retries: rec.retries,
    };
    let trace = rec_fs.into_trace(TraceMeta {
        schema: FS_TRACE_SCHEMA,
        name: workload.name(),
        seed,
        capacity_bytes,
        page_size,
    });
    Ok(Recorded { trace, result, remount_digest })
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// How the replayer treats the recorded inter-op timing (see the module
/// docs' timing model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplaySpeed {
    /// Issue ops back-to-back; recorded gaps are dropped.
    Unthrottled,
    /// Reconstruct the recorded virtual timeline exactly (1×): before each
    /// op the clock is advanced up to the record's issue timestamp. The
    /// mode under which a same-fs replay is bit-identical to the original.
    Exact,
    /// Replay the recorded timeline `N`× faster (gaps divided by the
    /// factor; `Scaled(1.0)` ≡ [`ReplaySpeed::Exact`], `Scaled(2.0)` is
    /// twice as fast, `Scaled(0.5)` half speed).
    Scaled(f64),
}

/// Replay configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Timing mode.
    pub speed: ReplaySpeed,
    /// Worker threads the measured phase's tenant streams are spread over
    /// (1 = fully sequential; capped at the trace's tenant count). Per-
    /// tenant op order is always preserved.
    pub threads: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self { speed: ReplaySpeed::Exact, threads: 1 }
    }
}

/// The outcome of replaying one trace.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Metrics of the measured phase, same shape as a live run's — per-op
    /// latencies live in the log-linear histograms, so `bench_compare` can
    /// diff two replays entry-for-entry. One caveat: `ops` counts measured
    /// trace records (individual file-system calls), where the recording
    /// harness counts the workload's *logical* ops (a "create" op is four
    /// calls) — replay metrics compare against other replays of the same
    /// trace, not against the recording run's throughput.
    pub result: RunResult,
    /// Records applied (all phases).
    pub replayed: u64,
    /// Records whose live outcome differed from the recorded one (e.g. a
    /// recorded success failing on a different fs impl). Zero on a faithful
    /// same-fs replay.
    pub divergences: u64,
    /// Digest of the durable device image after the replayed unmount.
    pub remount_digest: u64,
}

/// Per-thread replay measurement state (the replayer's analogue of
/// [`Recorder`], minus the host-CPU charge: replay reconstructs the
/// recorded timeline from the trace instead of re-charging per-op costs,
/// which is exactly what makes an exact-speed replay bit-identical).
#[derive(Default)]
struct ReplayRec {
    reads: Histogram,
    writes: Histogram,
    metas: Histogram,
    app_read_bytes: u64,
    app_write_bytes: u64,
    ops: u64,
    replayed: u64,
    divergences: u64,
}

impl ReplayRec {
    fn merge(&mut self, other: ReplayRec) {
        self.reads.merge(&other.reads);
        self.writes.merge(&other.writes);
        self.metas.merge(&other.metas);
        self.app_read_bytes += other.app_read_bytes;
        self.app_write_bytes += other.app_write_bytes;
        self.ops += other.ops;
        self.replayed += other.replayed;
        self.divergences += other.divergences;
    }
}

/// Map from a recorded handle (tenant, recorded fd) to the live handle this
/// replay's own open returned.
type FdMap = HashMap<(u16, u64), Fd>;

/// Applies one record against `fs`, returning `(live_ok, class, bytes)`.
fn apply_op(rec: &OpRecord, fs: &dyn FileSystem, fds: &mut FdMap) -> (bool, OpClass, usize) {
    let tenant = rec.tenant;
    let live = |fds: &FdMap, fd: &u64| fds.get(&(tenant, *fd)).copied();
    match &rec.op {
        OpKind::Create { path, fd } => {
            let res = fs.create(path);
            let ok = res.is_ok();
            if let Ok(new) = res {
                if *fd == NO_FD {
                    // The recorded call failed; don't leak the live handle.
                    let _ = fs.close(new);
                } else {
                    fds.insert((tenant, *fd), new);
                }
            }
            (ok, OpClass::Meta, 0)
        }
        OpKind::Open { path, flags, fd } => {
            let res = fs.open(path, open_flags(*flags));
            let ok = res.is_ok();
            if let Ok(new) = res {
                if *fd == NO_FD {
                    let _ = fs.close(new);
                } else {
                    fds.insert((tenant, *fd), new);
                }
            }
            (ok, OpClass::Meta, 0)
        }
        OpKind::Close { fd } => {
            let ok = fds.remove(&(tenant, *fd)).map(|f| fs.close(f).is_ok()).unwrap_or(false);
            (ok, OpClass::Meta, 0)
        }
        OpKind::Read { fd, offset, len } => {
            let ok =
                live(fds, fd).map(|f| fs.read(f, *offset, *len as usize).is_ok()).unwrap_or(false);
            (ok, OpClass::Read, *len as usize)
        }
        OpKind::Write { fd, offset, data } => {
            let buf = data.to_vec();
            let ok = live(fds, fd).map(|f| fs.write(f, *offset, &buf).is_ok()).unwrap_or(false);
            (ok, OpClass::Write, buf.len())
        }
        OpKind::Append { fd, data } => {
            let buf = data.to_vec();
            let ok = live(fds, fd).map(|f| fs.append(f, &buf).is_ok()).unwrap_or(false);
            (ok, OpClass::Write, buf.len())
        }
        OpKind::Fsync { fd } => {
            let ok = live(fds, fd).map(|f| fs.fsync(f).is_ok()).unwrap_or(false);
            (ok, OpClass::Write, 0)
        }
        OpKind::Fdatasync { fd } => {
            let ok = live(fds, fd).map(|f| fs.fdatasync(f).is_ok()).unwrap_or(false);
            (ok, OpClass::Write, 0)
        }
        OpKind::Truncate { fd, size } => {
            let ok = live(fds, fd).map(|f| fs.truncate(f, *size).is_ok()).unwrap_or(false);
            (ok, OpClass::Write, 0)
        }
        OpKind::Fstat { fd } => {
            let ok = live(fds, fd).map(|f| fs.fstat(f).is_ok()).unwrap_or(false);
            (ok, OpClass::Meta, 0)
        }
        OpKind::Stat { path } => (fs.stat(path).is_ok(), OpClass::Meta, 0),
        OpKind::Mkdir { path } => (fs.mkdir(path).is_ok(), OpClass::Meta, 0),
        OpKind::Rmdir { path } => (fs.rmdir(path).is_ok(), OpClass::Meta, 0),
        OpKind::Unlink { path } => (fs.unlink(path).is_ok(), OpClass::Meta, 0),
        OpKind::Rename { from, to } => (fs.rename(from, to).is_ok(), OpClass::Meta, 0),
        OpKind::Readdir { path } => (fs.readdir(path).is_ok(), OpClass::Meta, 0),
        OpKind::Sync => (fs.sync().is_ok(), OpClass::Write, 0),
        OpKind::DropCaches => {
            fs.drop_caches();
            (true, OpClass::Meta, 0)
        }
        OpKind::Unmount => (fs.unmount().is_ok(), OpClass::Write, 0),
    }
}

/// Advances the clock up to the record's pacing target (monotonic top-up;
/// the clock is never set backwards, so a replay running behind schedule
/// simply proceeds).
fn pace(clock: &mssd::Clock, replay_start: u64, vts_ns: u64, speed: ReplaySpeed) {
    let target = match speed {
        ReplaySpeed::Unthrottled => return,
        ReplaySpeed::Exact => replay_start + vts_ns,
        ReplaySpeed::Scaled(factor) => {
            if factor <= 0.0 {
                return;
            }
            replay_start + (vts_ns as f64 / factor) as u64
        }
    };
    let now = clock.now_ns();
    if now < target {
        clock.advance(target - now);
    }
}

/// Applies one stretch of records sequentially, measuring the measured ones.
fn drive(
    records: &[&OpRecord],
    fs: &dyn FileSystem,
    clock: &mssd::Clock,
    replay_start: u64,
    speed: ReplaySpeed,
    fds: &mut FdMap,
    out: &mut ReplayRec,
) {
    for rec in records {
        pace(clock, replay_start, rec.vts_ns, speed);
        // Re-enter the recorded tenant so device-level traces (and any
        // wrapping RecordingFs) attribute the replayed op to the client
        // that issued it in the recording run.
        let _scope = mssd::CtxScope::enter(mssd::trace::ctx().with_tenant(rec.tenant));
        if rec.measured {
            let sw = Stopwatch::start(clock);
            let (ok, class, bytes) = apply_op(rec, fs, fds);
            let lat = sw.elapsed_ns(clock);
            match class {
                OpClass::Read => {
                    out.reads.record(lat);
                    out.app_read_bytes += bytes as u64;
                }
                OpClass::Write => {
                    out.writes.record(lat);
                    out.app_write_bytes += bytes as u64;
                }
                OpClass::Meta => out.metas.record(lat),
            }
            out.ops += 1;
            out.replayed += 1;
            out.divergences += u64::from(ok != rec.ok);
        } else {
            let (ok, _, _) = apply_op(rec, fs, fds);
            out.replayed += 1;
            out.divergences += u64::from(ok != rec.ok);
        }
    }
}

/// Builds a fresh file system of `kind` and replays `trace` against it,
/// after validating the trace's recorded device geometry against `cfg`.
///
/// # Errors
///
/// Returns [`FsError::InvalidArgument`] on a geometry mismatch; file-system
/// errors *during* replay never abort it (a recorded op may have failed in
/// the recording run too) — they surface as
/// [`ReplayOutcome::divergences`] when the live outcome differs from the
/// recorded one.
pub fn replay(
    trace: &OpTrace,
    kind: FsKind,
    cfg: MssdConfig,
    rcfg: &ReplayConfig,
) -> FsResult<ReplayOutcome> {
    if trace.meta.capacity_bytes != 0 && trace.meta.capacity_bytes != cfg.capacity_bytes {
        return Err(FsError::InvalidArgument(format!(
            "trace was recorded against a {}-byte device, replay device has {}",
            trace.meta.capacity_bytes, cfg.capacity_bytes
        )));
    }
    if trace.meta.page_size != 0 && trace.meta.page_size != cfg.page_size as u64 {
        return Err(FsError::InvalidArgument(format!(
            "trace was recorded with page size {}, replay device has {}",
            trace.meta.page_size, cfg.page_size
        )));
    }
    let (device, fs) = kind.build(cfg);
    Ok(replay_on(&device, fs.as_ref(), trace, rcfg))
}

/// Replays `trace` against an already-constructed file system.
///
/// Phases: the leading unmeasured records (setup + cache drop) and the
/// trailing unmeasured ones (unmount) are applied sequentially and
/// unmeasured; the measured body runs over `threads` workers, each owning a
/// subset of tenants and applying its records in recorded order.
pub fn replay_on(
    device: &Arc<Mssd>,
    fs: &dyn FileSystem,
    trace: &OpTrace,
    rcfg: &ReplayConfig,
) -> ReplayOutcome {
    let clock = device.clock();
    let replay_start = clock.now_ns();
    let records = &trace.records;
    let first_m = records.iter().position(|r| r.measured).unwrap_or(records.len());
    let last_m = records.iter().rposition(|r| r.measured).map(|i| i + 1).unwrap_or(first_m);
    let (prologue, rest) = records.split_at(first_m);
    let (body, epilogue) = rest.split_at(last_m - first_m);

    let mut rec = ReplayRec::default();
    let mut fds: FdMap = HashMap::new();
    let prologue_refs: Vec<&OpRecord> = prologue.iter().collect();
    drive(&prologue_refs, fs, &clock, replay_start, rcfg.speed, &mut fds, &mut rec);

    // Measured phase: traffic and elapsed time are snapshotted around it,
    // exactly like the live driver's measured phase.
    let before_traffic = device.traffic();
    let start_ns = clock.now_ns();

    let mut tenants: Vec<u16> = body.iter().map(|r| r.tenant).collect();
    tenants.sort_unstable();
    tenants.dedup();
    let threads = rcfg.threads.max(1).min(tenants.len().max(1));
    if threads <= 1 {
        let body_refs: Vec<&OpRecord> = body.iter().collect();
        drive(&body_refs, fs, &clock, replay_start, rcfg.speed, &mut fds, &mut rec);
    } else {
        // Tenant t runs on worker `index(t) % threads`; per-tenant order is
        // the recorded order because each worker walks its records by seq.
        let worker_of = |tenant: u16| {
            tenants.iter().position(|&t| t == tenant).expect("tenant indexed") % threads
        };
        let mut work: Vec<Vec<&OpRecord>> = vec![Vec::new(); threads];
        for r in body {
            work[worker_of(r.tenant)].push(r);
        }
        let mut maps: Vec<FdMap> = vec![FdMap::new(); threads];
        for ((tenant, fd), live) in fds.drain() {
            maps[worker_of(tenant)].insert((tenant, fd), live);
        }
        let outcomes: Vec<(ReplayRec, FdMap)> = std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .iter()
                .zip(maps)
                .map(|(records, mut map)| {
                    let clock = Arc::clone(&clock);
                    scope.spawn(move || {
                        let mut out = ReplayRec::default();
                        drive(records, fs, &clock, replay_start, rcfg.speed, &mut map, &mut out);
                        (out, map)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("replay worker panicked")).collect()
        });
        for (out, map) in outcomes {
            rec.merge(out);
            fds.extend(map);
        }
    }

    let elapsed_ns = clock.now_ns().saturating_sub(start_ns).max(1);
    let traffic = device.traffic().delta_since(&before_traffic);

    let epilogue_refs: Vec<&OpRecord> = epilogue.iter().collect();
    drive(&epilogue_refs, fs, &clock, replay_start, rcfg.speed, &mut fds, &mut rec);

    device.quiesce_cleaning();
    let remount_digest = device.crash_image().digest();

    let ops = rec.ops;
    let result = RunResult {
        fs: fs.name().to_string(),
        workload: trace.meta.name.clone(),
        ops,
        elapsed_ns,
        kops_per_sec: ops as f64 / (elapsed_ns as f64 / 1e9) / 1e3,
        read: LatencyStats::from_histogram(&rec.reads),
        write: LatencyStats::from_histogram(&rec.writes),
        meta: LatencyStats::from_histogram(&rec.metas),
        queue: LatencyStats::from_histogram(&Histogram::new()),
        traffic,
        app_read_bytes: rec.app_read_bytes,
        app_write_bytes: rec.app_write_bytes,
        page_size: device.page_size(),
        flush_errors: 0,
        retries: 0,
    };
    ReplayOutcome { result, replayed: rec.replayed, divergences: rec.divergences, remount_digest }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::{Micro, MicroOp};
    use crate::spec::Scale;
    use fskit::FileSystemExt;

    fn small() -> MssdConfig {
        MssdConfig::small_test()
    }

    fn tiny_trace() -> Recorded {
        let w = Micro::new(MicroOp::Create, Scale::new(0.01));
        record_workload(FsKind::ByteFs, small(), &w, 7).expect("recording run")
    }

    #[test]
    fn payload_compresses_uniform_fills_only() {
        assert_eq!(Payload::from_slice(&[5; 100]), Payload::Fill { byte: 5, len: 100 });
        assert_eq!(Payload::from_slice(&[1, 2]), Payload::Bytes(vec![1, 2]));
        assert_eq!(Payload::from_slice(&[]), Payload::Bytes(vec![]));
        assert_eq!(Payload::Fill { byte: 9, len: 3 }.to_vec(), vec![9, 9, 9]);
        assert!(Payload::from_slice(&[]).is_empty());
    }

    #[test]
    fn open_flags_round_trip_through_bits() {
        for flags in [
            OpenFlags::read_only(),
            OpenFlags::read_write(),
            OpenFlags::create_rw(),
            OpenFlags::create_truncate(),
            OpenFlags::create_rw().with_direct(),
            OpenFlags::read_write().with_append(),
        ] {
            assert_eq!(open_flags(flag_bits(flags)), flags);
        }
    }

    #[test]
    fn recording_captures_the_full_op_stream_with_phases() {
        let recorded = tiny_trace();
        let t = &recorded.trace;
        assert_eq!(t.meta.schema, FS_TRACE_SCHEMA);
        assert_eq!(t.meta.name, "create");
        assert_eq!(t.meta.capacity_bytes, small().capacity_bytes);
        assert!(t.records.len() > 20, "{} records", t.records.len());
        // Sequence numbers are dense and ordered.
        assert!(t.records.iter().enumerate().all(|(i, r)| r.seq == i as u64));
        // Setup precedes the measured body; the trailing unmount is unmeasured.
        assert!(!t.records.first().unwrap().measured);
        assert!(matches!(t.records.last().unwrap().op, OpKind::Unmount));
        assert!(!t.records.last().unwrap().measured);
        assert!(t.records.iter().any(|r| r.measured));
        // Issue timestamps never go backwards in a sequential recording.
        assert!(t.records.windows(2).all(|w| w[0].vts_ns <= w[1].vts_ns));
    }

    #[test]
    fn text_format_round_trips() {
        let recorded = tiny_trace();
        let text = recorded.trace.to_text();
        assert!(text.starts_with("#fstrace v1 name=create seed=0x7 "), "{text:?}");
        let parsed = OpTrace::from_text(&text).expect("parse own text export");
        assert_eq!(parsed, recorded.trace);
    }

    #[test]
    fn binary_format_round_trips_and_is_smaller() {
        let recorded = tiny_trace();
        let bin = recorded.trace.to_binary();
        let parsed = OpTrace::from_binary(&bin).expect("parse own binary export");
        assert_eq!(parsed, recorded.trace);
        assert!(
            bin.len() < recorded.trace.to_text().len(),
            "binary {} vs text {}",
            bin.len(),
            recorded.trace.to_text().len()
        );
    }

    #[test]
    fn parsers_reject_corrupt_and_future_inputs() {
        assert!(OpTrace::from_text("").is_err(), "missing header");
        assert!(OpTrace::from_text("#fstrace v9 name=x seed=0 capacity_bytes=0 page_size=0 ops=0")
            .is_err());
        let recorded = tiny_trace();
        let mut text: Vec<String> = recorded.trace.to_text().lines().map(String::from).collect();
        text[1] = "garbage".into();
        assert!(OpTrace::from_text(&text.join("\n")).is_err());
        let mut bin = recorded.trace.to_binary();
        bin[0] = b'X';
        assert!(OpTrace::from_binary(&bin).is_err(), "bad magic");
        let bin = recorded.trace.to_binary();
        assert!(OpTrace::from_binary(&bin[..bin.len() - 3]).is_err(), "truncated");
    }

    #[test]
    fn paths_with_odd_bytes_survive_the_text_format() {
        let meta = TraceMeta {
            schema: FS_TRACE_SCHEMA,
            name: "odd paths".into(),
            seed: 1,
            capacity_bytes: 0,
            page_size: 0,
        };
        let trace = OpTrace {
            meta,
            records: vec![OpRecord {
                seq: 0,
                tenant: 3,
                vts_ns: 42,
                measured: true,
                ok: false,
                op: OpKind::Rename { from: "/a dir/x%y".into(), to: "/a dir/z".into() },
            }],
        };
        let parsed = OpTrace::from_text(&trace.to_text()).expect("escaped paths parse");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn exact_replay_reproduces_the_recorded_run_bit_for_bit() {
        let recorded = tiny_trace();
        let out = replay(&recorded.trace, FsKind::ByteFs, small(), &ReplayConfig::default())
            .expect("replay");
        assert_eq!(out.divergences, 0);
        assert_eq!(
            out.remount_digest, recorded.remount_digest,
            "an exact-speed same-fs replay must reproduce the recorded image"
        );
        assert_eq!(out.replayed, recorded.trace.records.len() as u64);
        assert!(out.result.ops > 0);
    }

    #[test]
    fn two_replays_agree_in_every_speed_mode() {
        let recorded = tiny_trace();
        for speed in [ReplaySpeed::Unthrottled, ReplaySpeed::Exact, ReplaySpeed::Scaled(4.0)] {
            let cfg = ReplayConfig { speed, threads: 1 };
            let a = replay(&recorded.trace, FsKind::ByteFs, small(), &cfg).unwrap();
            let b = replay(&recorded.trace, FsKind::ByteFs, small(), &cfg).unwrap();
            assert_eq!(a.remount_digest, b.remount_digest, "{speed:?}");
            assert_eq!(a.result.elapsed_ns, b.result.elapsed_ns, "{speed:?}");
        }
    }

    #[test]
    fn speed_modes_order_elapsed_time() {
        let recorded = tiny_trace();
        let run = |speed| {
            replay(&recorded.trace, FsKind::ByteFs, small(), &ReplayConfig { speed, threads: 1 })
                .unwrap()
                .result
                .elapsed_ns
        };
        let unthrottled = run(ReplaySpeed::Unthrottled);
        let exact = run(ReplaySpeed::Exact);
        let double = run(ReplaySpeed::Scaled(2.0));
        let half = run(ReplaySpeed::Scaled(0.5));
        assert!(
            unthrottled <= double && double <= exact && exact <= half,
            "unthrottled {unthrottled} <= 2x {double} <= exact {exact} <= 0.5x {half}"
        );
        // Exact replay reconstructs the recorded measured phase down to the
        // one charge it cannot see: the recording harness bills
        // HOST_CPU_NS_PER_OP *after* the last op, before the next record's
        // timestamp — and there is no next measured record.
        assert_eq!(exact + crate::metrics::HOST_CPU_NS_PER_OP, recorded.result.elapsed_ns);
    }

    #[test]
    fn replay_runs_against_a_different_filesystem() {
        let recorded = tiny_trace();
        let out = replay(&recorded.trace, FsKind::Ext4, small(), &ReplayConfig::default())
            .expect("cross-fs replay");
        assert_eq!(out.divergences, 0, "the op stream is implementation-neutral");
        assert_eq!(out.replayed, recorded.trace.records.len() as u64);
        assert_eq!(out.result.fs, "ext4");
        // Same op stream, different fs: the replay metrics are comparable
        // replay-to-replay — both sides count measured records.
        let same = replay(&recorded.trace, FsKind::ByteFs, small(), &ReplayConfig::default())
            .expect("same-fs replay");
        assert_eq!(out.result.ops, same.result.ops);
        assert_eq!(
            out.result.ops,
            recorded.trace.records.iter().filter(|r| r.measured).count() as u64
        );
    }

    #[test]
    fn replay_rejects_mismatched_geometry() {
        let recorded = tiny_trace();
        let mut cfg = small();
        cfg.capacity_bytes *= 2;
        let err = replay(&recorded.trace, FsKind::ByteFs, cfg, &ReplayConfig::default());
        assert!(matches!(err, Err(FsError::InvalidArgument(_))), "{err:?}");
    }

    #[test]
    fn logical_state_survives_a_replayed_trace() {
        // Replay a hand-written trace and check the replayed fs contents.
        let meta = TraceMeta {
            schema: FS_TRACE_SCHEMA,
            name: "hand".into(),
            seed: 0,
            capacity_bytes: 0,
            page_size: 0,
        };
        let mk = |seq, op| OpRecord { seq, tenant: 0, vts_ns: 0, measured: true, ok: true, op };
        let trace = OpTrace {
            meta,
            records: vec![
                mk(0, OpKind::Mkdir { path: "/d".into() }),
                mk(1, OpKind::Create { path: "/d/f".into(), fd: 100 }),
                mk(2, OpKind::Write { fd: 100, offset: 0, data: Payload::Bytes(vec![1, 2, 3, 4]) }),
                mk(3, OpKind::Fsync { fd: 100 }),
                mk(4, OpKind::Close { fd: 100 }),
                mk(5, OpKind::Sync),
            ],
        };
        let (device, fs) = FsKind::ByteFs.build(small());
        let out = replay_on(&device, fs.as_ref(), &trace, &ReplayConfig::default());
        assert_eq!(out.divergences, 0);
        assert_eq!(fs.read_file("/d/f").unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn recorded_failures_replay_as_failures_without_divergence() {
        let meta = TraceMeta {
            schema: FS_TRACE_SCHEMA,
            name: "fail".into(),
            seed: 0,
            capacity_bytes: 0,
            page_size: 0,
        };
        let trace = OpTrace {
            meta,
            records: vec![
                OpRecord {
                    seq: 0,
                    tenant: 0,
                    vts_ns: 0,
                    measured: true,
                    ok: false,
                    // A create that failed at record time (missing parent):
                    // it fails at replay time too, so outcomes agree.
                    op: OpKind::Create { path: "/nodir/f".into(), fd: NO_FD },
                },
                OpRecord {
                    seq: 1,
                    tenant: 0,
                    vts_ns: 0,
                    measured: true,
                    ok: false,
                    op: OpKind::Stat { path: "/nodir/f".into() },
                },
            ],
        };
        let (device, fs) = FsKind::ByteFs.build(small());
        let out = replay_on(&device, fs.as_ref(), &trace, &ReplayConfig::default());
        assert_eq!(out.divergences, 0);
    }
}
