//! Filebench-style micro-benchmarks: `create`, `delete`, `mkdir`, `rmdir`
//! (Table 5: 1 M objects in the paper, scaled down here).

use fskit::{AsyncFileSystem, BoxFuture, FileSystem, FileSystemExt, FsResult};
use rand::rngs::SmallRng;

use crate::metrics::{OpClass, Recorder};
use crate::spec::Scale;
use crate::Workload;

/// Which micro-benchmark to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Create files (each with a 4 KB payload, as in the paper).
    Create,
    /// Delete pre-created files.
    Delete,
    /// Create directories.
    Mkdir,
    /// Remove pre-created directories.
    Rmdir,
}

impl MicroOp {
    /// All four micro-benchmarks in the paper's order.
    pub const ALL: [MicroOp; 4] =
        [MicroOp::Create, MicroOp::Delete, MicroOp::Mkdir, MicroOp::Rmdir];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            MicroOp::Create => "create",
            MicroOp::Delete => "delete",
            MicroOp::Mkdir => "mkdir",
            MicroOp::Rmdir => "rmdir",
        }
    }
}

/// A micro-benchmark instance.
#[derive(Debug, Clone)]
pub struct Micro {
    /// Which operation is measured.
    pub op: MicroOp,
    /// Number of objects operated on.
    pub objects: usize,
    /// Number of parent directories the objects are spread over.
    pub dirs: usize,
    /// Payload written into each created file.
    pub file_size: usize,
}

impl Micro {
    /// The paper's configuration (1 M objects) scaled by `scale`; the harness
    /// base is 2 000 objects.
    pub fn new(op: MicroOp, scale: Scale) -> Self {
        Self { op, objects: scale.count(2_000), dirs: 16, file_size: 4096 }
    }

    fn dir(&self, i: usize) -> String {
        format!("/mdir{}", i % self.dirs)
    }

    fn file_path(&self, i: usize) -> String {
        format!("{}/f{}", self.dir(i), i)
    }

    fn dir_path(&self, i: usize) -> String {
        format!("{}/d{}", self.dir(i), i)
    }
}

impl Workload for Micro {
    fn name(&self) -> String {
        self.op.label().to_string()
    }

    fn setup(&self, fs: &dyn FileSystem, _rng: &mut SmallRng) -> FsResult<()> {
        for d in 0..self.dirs {
            fs.mkdir(&format!("/mdir{d}"))?;
        }
        match self.op {
            MicroOp::Delete => {
                let payload = vec![0xAB; self.file_size];
                for i in 0..self.objects {
                    fs.write_file(&self.file_path(i), &payload)?;
                }
            }
            MicroOp::Rmdir => {
                for i in 0..self.objects {
                    fs.mkdir(&self.dir_path(i))?;
                }
            }
            MicroOp::Create | MicroOp::Mkdir => {}
        }
        fs.sync()
    }

    fn run(&self, fs: &dyn FileSystem, rng: &mut SmallRng, rec: &mut Recorder) -> FsResult<()> {
        self.run_shard(fs, 0, 1, rng, rec)
    }

    /// Object `i` belongs to shard `i % shards`: every thread creates/deletes
    /// its own disjoint file subset, so a concurrent run performs exactly the
    /// same logical work as a sequential one.
    fn run_shard(
        &self,
        fs: &dyn FileSystem,
        shard: usize,
        shards: usize,
        _rng: &mut SmallRng,
        rec: &mut Recorder,
    ) -> FsResult<()> {
        let clock = fs.clock();
        let payload = vec![0x5A; self.file_size];
        for i in (shard..self.objects).step_by(shards.max(1)) {
            let sw = rec.start(&clock);
            match self.op {
                MicroOp::Create => {
                    let fd = fs.create(&self.file_path(i))?;
                    fs.write(fd, 0, &payload)?;
                    fs.fsync(fd)?;
                    fs.close(fd)?;
                    rec.finish(&clock, sw, OpClass::Write, self.file_size);
                    continue;
                }
                MicroOp::Delete => fs.unlink(&self.file_path(i))?,
                MicroOp::Mkdir => fs.mkdir(&self.dir_path(i))?,
                MicroOp::Rmdir => fs.rmdir(&self.dir_path(i))?,
            }
            rec.finish(&clock, sw, OpClass::Meta, 0);
            // Dirty-metadata writeback pressure: the kernel flush daemon does
            // not let unsynced namespace changes accumulate forever.
            if i % 16 == 15 {
                fs.sync()?;
            }
        }
        let sw = rec.start(&clock);
        fs.sync()?;
        rec.finish(&clock, sw, OpClass::Write, 0);
        Ok(())
    }

    /// The genuinely awaiting twin of `run_shard`: every file-system call
    /// yields to the executor, so thousands of client shards interleave per
    /// operation instead of per shard.
    fn run_shard_async<'a>(
        &'a self,
        fs: &'a dyn AsyncFileSystem,
        shard: usize,
        shards: usize,
        _rng: &'a mut SmallRng,
        rec: &'a mut Recorder,
    ) -> BoxFuture<'a, FsResult<()>> {
        Box::pin(async move {
            let clock = fs.device().clock();
            let payload = vec![0x5A; self.file_size];
            for i in (shard..self.objects).step_by(shards.max(1)) {
                let sw = rec.start(&clock);
                match self.op {
                    MicroOp::Create => {
                        let fd = fs.create(&self.file_path(i)).await?;
                        fs.write(fd, 0, &payload).await?;
                        fs.fsync(fd).await?;
                        fs.close(fd).await?;
                        rec.finish(&clock, sw, OpClass::Write, self.file_size);
                        continue;
                    }
                    MicroOp::Delete => fs.unlink(&self.file_path(i)).await?,
                    MicroOp::Mkdir => fs.mkdir(&self.dir_path(i)).await?,
                    MicroOp::Rmdir => fs.rmdir(&self.dir_path(i)).await?,
                }
                rec.finish(&clock, sw, OpClass::Meta, 0);
                if i % 16 == 15 {
                    fs.sync().await?;
                }
            }
            let sw = rec.start(&clock);
            fs.sync().await?;
            rec.finish(&clock, sw, OpClass::Write, 0);
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_workload;
    use crate::fsfactory::FsKind;
    use mssd::MssdConfig;

    #[test]
    fn all_micro_benchmarks_run_on_bytefs() {
        for op in MicroOp::ALL {
            let w = Micro::new(op, Scale::tiny());
            let result = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &w, 1).unwrap();
            assert!(result.ops > 0, "{op:?}");
            assert!(result.elapsed_ns > 0);
            assert!(result.kops_per_sec > 0.0);
        }
    }

    #[test]
    fn create_produces_write_traffic_on_every_fs() {
        for kind in FsKind::MAIN {
            let w = Micro::new(MicroOp::Create, Scale::tiny());
            let result = run_workload(kind, MssdConfig::small_test(), &w, 2).unwrap();
            assert!(result.traffic.host_write_bytes() > 0, "{kind} should write to the device");
            assert!(result.write.count > 0);
        }
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(MicroOp::Create.label(), "create");
        assert_eq!(MicroOp::Rmdir.label(), "rmdir");
        let w = Micro::new(MicroOp::Mkdir, Scale::default());
        assert_eq!(w.name(), "mkdir");
        assert_eq!(w.objects, 2_000);
    }
}
