//! The replay scenario corpus: small, fully deterministic workloads shaped
//! after traffic patterns the Table-5 benchmarks do not cover, each meant to
//! be **recorded once** ([`record_corpus`]) and then re-driven by
//! [`mod@crate::replay`] — against other file systems, at other speeds, or
//! through the crash enumerator.
//!
//! Every generator derives its op stream purely from its parameters and the
//! shard index (no RNG state escapes a shard), so the same seed records the
//! same trace byte for byte. Two of the generators attribute their clients
//! to distinct trace tenants (via [`mssd::CtxScope`]), giving the replayer's
//! concurrency modes real multi-tenant streams to spread over threads:
//!
//! * [`CorpusKind::DiurnalBurst`] — bursty diurnal traffic: clients
//!   alternate busy windows (many appends and reads) with quiet windows
//!   whose idle gaps are modeled as explicit virtual-clock advances, so a
//!   timeline-faithful replay reproduces the bursts *and* the silences;
//! * [`CorpusKind::MailStorm`] — a mail-server fsync storm: per-mailbox
//!   message delivery, every message fsynced, with periodic mailbox
//!   compaction (rename over the old spool);
//! * [`CorpusKind::CiChurn`] — small-file CI-runner churn: rounds of
//!   check out (create many small files), build (read them, write
//!   artifacts), clean (unlink everything), per runner directory;
//! * [`CorpusKind::BackupScan`] — a backup pass: walk the tree with
//!   readdir/stat and read every file sequentially in fixed-size chunks —
//!   the read-mostly scan that evicts everyone else's cache.

use fskit::{FileSystem, FileSystemExt, FsResult, OpenFlags};
use mssd::MssdConfig;
use rand::rngs::SmallRng;

use crate::fsfactory::FsKind;
use crate::metrics::{OpClass, Recorder};
use crate::replay::{record_workload, Recorded};
use crate::spec::Scale;
use crate::Workload;

/// The replay scenario corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusKind {
    /// Bursty diurnal traffic with explicit idle windows.
    DiurnalBurst,
    /// Mail-server fsync storm.
    MailStorm,
    /// Small-file CI-runner churn.
    CiChurn,
    /// Sequential backup scan.
    BackupScan,
}

impl CorpusKind {
    /// Every corpus scenario, in a stable order.
    pub const ALL: [CorpusKind; 4] = [
        CorpusKind::DiurnalBurst,
        CorpusKind::MailStorm,
        CorpusKind::CiChurn,
        CorpusKind::BackupScan,
    ];

    /// Report / trace label.
    pub fn label(self) -> &'static str {
        match self {
            CorpusKind::DiurnalBurst => "diurnal",
            CorpusKind::MailStorm => "mailstorm",
            CorpusKind::CiChurn => "cichurn",
            CorpusKind::BackupScan => "backupscan",
        }
    }

    /// Builds the scenario's workload at `scale`.
    pub fn workload(self, scale: Scale) -> Box<dyn Workload> {
        match self {
            CorpusKind::DiurnalBurst => Box::new(DiurnalBurst::new(scale)),
            CorpusKind::MailStorm => Box::new(MailStorm::new(scale)),
            CorpusKind::CiChurn => Box::new(CiChurn::new(scale)),
            CorpusKind::BackupScan => Box::new(BackupScan::new(scale)),
        }
    }
}

impl std::fmt::Display for CorpusKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Records `kind`'s reference trace on a fresh `fs_kind` file system —
/// the one-call entry point the bench bin and CI use.
///
/// # Errors
///
/// Propagates file-system errors from the generator.
pub fn record_corpus(
    kind: CorpusKind,
    fs_kind: FsKind,
    cfg: MssdConfig,
    scale: Scale,
    seed: u64,
) -> FsResult<Recorded> {
    record_workload(fs_kind, cfg, kind.workload(scale).as_ref(), seed)
}

/// Enters tenant `t` for the current scope so the recorded ops attribute to
/// that client's trace stream.
fn tenant_scope(t: usize) -> mssd::CtxScope {
    mssd::CtxScope::enter(mssd::trace::ctx().with_tenant(t as u16))
}

// ---------------------------------------------------------------------------
// DiurnalBurst
// ---------------------------------------------------------------------------

/// Bursty diurnal traffic: each client cycles busy/quiet windows over its own
/// append log, with the quiet windows' idle time modeled as virtual-clock
/// advances.
#[derive(Debug, Clone)]
pub struct DiurnalBurst {
    /// Number of clients (each a trace tenant).
    pub clients: usize,
    /// Busy/quiet window pairs per client.
    pub windows: usize,
    /// Appends per busy window.
    pub busy_ops: usize,
    /// Appends per quiet window.
    pub quiet_ops: usize,
    /// Idle gap inserted before each quiet-window op, in virtual ns.
    pub idle_gap_ns: u64,
    /// Payload of each append.
    pub record_bytes: usize,
}

impl DiurnalBurst {
    /// Scaled configuration: 8 clients × 3 window pairs.
    pub fn new(scale: Scale) -> Self {
        Self {
            clients: 8,
            windows: 3,
            busy_ops: scale.count(40),
            quiet_ops: scale.count(8),
            idle_gap_ns: 200_000,
            record_bytes: 512,
        }
    }

    fn log_path(client: usize) -> String {
        format!("/diurnal/c{client}.log")
    }
}

impl Workload for DiurnalBurst {
    fn name(&self) -> String {
        "diurnal".to_string()
    }

    fn setup(&self, fs: &dyn FileSystem, _rng: &mut SmallRng) -> FsResult<()> {
        fs.mkdir("/diurnal")?;
        for c in 0..self.clients {
            let fd = fs.create(&Self::log_path(c))?;
            fs.close(fd)?;
        }
        fs.sync()
    }

    fn run(&self, fs: &dyn FileSystem, rng: &mut SmallRng, rec: &mut Recorder) -> FsResult<()> {
        for c in 0..self.clients {
            self.run_shard(fs, c, self.clients, rng, rec)?;
        }
        Ok(())
    }

    fn run_shard(
        &self,
        fs: &dyn FileSystem,
        shard: usize,
        shards: usize,
        _rng: &mut SmallRng,
        rec: &mut Recorder,
    ) -> FsResult<()> {
        let clock = fs.clock();
        // Shards own whole clients: client c belongs to shard c % shards.
        for c in (shard..self.clients).step_by(shards.max(1)) {
            let _tenant = tenant_scope(c);
            let fd = fs.open(&Self::log_path(c), OpenFlags::read_write().with_append())?;
            for w in 0..self.windows {
                // Busy window: a tight burst of appends, one fsync at the end.
                for i in 0..self.busy_ops {
                    let sw = rec.start(&clock);
                    let payload = vec![(c * 31 + w * 7 + i) as u8; self.record_bytes];
                    fs.append(fd, &payload)?;
                    rec.finish(&clock, sw, OpClass::Write, self.record_bytes);
                }
                let sw = rec.start(&clock);
                fs.fsync(fd)?;
                rec.finish(&clock, sw, OpClass::Write, 0);
                // Quiet window: sparse appends with idle gaps between them.
                for i in 0..self.quiet_ops {
                    clock.advance(self.idle_gap_ns);
                    let sw = rec.start(&clock);
                    let payload = vec![(c * 13 + w * 5 + i) as u8; self.record_bytes];
                    fs.append(fd, &payload)?;
                    fs.fdatasync(fd)?;
                    rec.finish(&clock, sw, OpClass::Write, self.record_bytes);
                }
            }
            let sw = rec.start(&clock);
            fs.fsync(fd)?;
            fs.close(fd)?;
            rec.finish(&clock, sw, OpClass::Write, 0);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MailStorm
// ---------------------------------------------------------------------------

/// A mail-server fsync storm: per-mailbox message delivery with an fsync per
/// message, periodic reads, and a compaction (rewrite + rename) per mailbox.
#[derive(Debug, Clone)]
pub struct MailStorm {
    /// Number of mailboxes (each a trace tenant).
    pub mailboxes: usize,
    /// Messages delivered per mailbox.
    pub messages: usize,
    /// Size of each delivered message.
    pub message_bytes: usize,
}

impl MailStorm {
    /// Scaled configuration: 8 mailboxes.
    pub fn new(scale: Scale) -> Self {
        Self { mailboxes: 8, messages: scale.count(20), message_bytes: 2048 }
    }

    fn spool(m: usize) -> String {
        format!("/mail/box{m}/spool")
    }
}

impl Workload for MailStorm {
    fn name(&self) -> String {
        "mailstorm".to_string()
    }

    fn setup(&self, fs: &dyn FileSystem, _rng: &mut SmallRng) -> FsResult<()> {
        fs.mkdir("/mail")?;
        for m in 0..self.mailboxes {
            fs.mkdir(&format!("/mail/box{m}"))?;
            let fd = fs.create(&Self::spool(m))?;
            fs.close(fd)?;
        }
        fs.sync()
    }

    fn run(&self, fs: &dyn FileSystem, rng: &mut SmallRng, rec: &mut Recorder) -> FsResult<()> {
        for m in 0..self.mailboxes {
            self.run_shard(fs, m, self.mailboxes, rng, rec)?;
        }
        Ok(())
    }

    fn run_shard(
        &self,
        fs: &dyn FileSystem,
        shard: usize,
        shards: usize,
        _rng: &mut SmallRng,
        rec: &mut Recorder,
    ) -> FsResult<()> {
        let clock = fs.clock();
        for m in (shard..self.mailboxes).step_by(shards.max(1)) {
            let _tenant = tenant_scope(m);
            let spool = Self::spool(m);
            let fd = fs.open(&spool, OpenFlags::read_write().with_append())?;
            for i in 0..self.messages {
                // Delivery: append + fsync — the storm's signature pattern.
                let sw = rec.start(&clock);
                let payload = vec![(m * 17 + i) as u8; self.message_bytes];
                fs.append(fd, &payload)?;
                fs.fsync(fd)?;
                rec.finish(&clock, sw, OpClass::Write, self.message_bytes);
                // An IMAP client polls the mailbox every few deliveries.
                if i % 4 == 3 {
                    let sw = rec.start(&clock);
                    let size = fs.fstat(fd)?.size;
                    let off = size.saturating_sub(self.message_bytes as u64);
                    fs.read(fd, off, self.message_bytes)?;
                    rec.finish(&clock, sw, OpClass::Read, self.message_bytes);
                }
            }
            fs.close(fd)?;
            // Compaction: rewrite the spool at half size, rename over it.
            let sw = rec.start(&clock);
            let compacted = format!("{spool}.new");
            let cfd = fs.create(&compacted)?;
            let keep = (self.messages / 2).max(1) * self.message_bytes;
            fs.write(cfd, 0, &vec![(m * 29) as u8; keep])?;
            fs.fsync(cfd)?;
            fs.close(cfd)?;
            fs.unlink(&spool)?;
            fs.rename(&compacted, &spool)?;
            rec.finish(&clock, sw, OpClass::Write, keep);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// CiChurn
// ---------------------------------------------------------------------------

/// Small-file CI-runner churn: each runner repeatedly checks out a tree of
/// small files, reads them back ("build"), writes an artifact, then unlinks
/// everything.
#[derive(Debug, Clone)]
pub struct CiChurn {
    /// Number of runners (directories).
    pub runners: usize,
    /// Checkout/build/clean rounds per runner.
    pub rounds: usize,
    /// Source files per checkout.
    pub files: usize,
    /// Size of each source file.
    pub file_bytes: usize,
}

impl CiChurn {
    /// Scaled configuration: 4 runners × 2 rounds.
    pub fn new(scale: Scale) -> Self {
        Self { runners: 4, rounds: 2, files: scale.count(24), file_bytes: 1024 }
    }

    fn src(r: usize, i: usize) -> String {
        format!("/ci/r{r}/src{i}")
    }
}

impl Workload for CiChurn {
    fn name(&self) -> String {
        "cichurn".to_string()
    }

    fn setup(&self, fs: &dyn FileSystem, _rng: &mut SmallRng) -> FsResult<()> {
        fs.mkdir("/ci")?;
        for r in 0..self.runners {
            fs.mkdir(&format!("/ci/r{r}"))?;
        }
        fs.sync()
    }

    fn run(&self, fs: &dyn FileSystem, rng: &mut SmallRng, rec: &mut Recorder) -> FsResult<()> {
        for r in 0..self.runners {
            self.run_shard(fs, r, self.runners, rng, rec)?;
        }
        Ok(())
    }

    fn run_shard(
        &self,
        fs: &dyn FileSystem,
        shard: usize,
        shards: usize,
        _rng: &mut SmallRng,
        rec: &mut Recorder,
    ) -> FsResult<()> {
        let clock = fs.clock();
        for r in (shard..self.runners).step_by(shards.max(1)) {
            let _tenant = tenant_scope(r);
            for round in 0..self.rounds {
                // Checkout: create the small-file tree.
                for i in 0..self.files {
                    let sw = rec.start(&clock);
                    let fd = fs.create(&Self::src(r, i))?;
                    fs.write(fd, 0, &vec![(r * 7 + round * 3 + i) as u8; self.file_bytes])?;
                    fs.close(fd)?;
                    rec.finish(&clock, sw, OpClass::Write, self.file_bytes);
                }
                let sw = rec.start(&clock);
                fs.sync()?;
                rec.finish(&clock, sw, OpClass::Write, 0);
                // Build: read every source, emit one artifact.
                for i in 0..self.files {
                    let sw = rec.start(&clock);
                    let fd = fs.open(&Self::src(r, i), OpenFlags::read_only())?;
                    fs.read(fd, 0, self.file_bytes)?;
                    fs.close(fd)?;
                    rec.finish(&clock, sw, OpClass::Read, self.file_bytes);
                }
                let sw = rec.start(&clock);
                let art = format!("/ci/r{r}/artifact{round}");
                let fd = fs.create(&art)?;
                fs.write(fd, 0, &vec![0xA0 | (round as u8); self.file_bytes * 4])?;
                fs.fsync(fd)?;
                fs.close(fd)?;
                rec.finish(&clock, sw, OpClass::Write, self.file_bytes * 4);
                // Clean: unlink the checkout (artifacts are kept).
                for i in 0..self.files {
                    let sw = rec.start(&clock);
                    fs.unlink(&Self::src(r, i))?;
                    rec.finish(&clock, sw, OpClass::Meta, 0);
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// BackupScan
// ---------------------------------------------------------------------------

/// A backup pass over a pre-created tree: readdir each directory, stat each
/// file, read it sequentially in fixed-size chunks.
#[derive(Debug, Clone)]
pub struct BackupScan {
    /// Directories in the tree.
    pub dirs: usize,
    /// Files per directory.
    pub files_per_dir: usize,
    /// Size of each file.
    pub file_bytes: usize,
    /// Read chunk size.
    pub chunk: usize,
}

impl BackupScan {
    /// Scaled configuration: 4 directories of 8 KB files.
    pub fn new(scale: Scale) -> Self {
        Self { dirs: 4, files_per_dir: scale.count(16), file_bytes: 8192, chunk: 4096 }
    }

    fn file(d: usize, i: usize) -> String {
        format!("/data/d{d}/f{i}")
    }
}

impl Workload for BackupScan {
    fn name(&self) -> String {
        "backupscan".to_string()
    }

    fn setup(&self, fs: &dyn FileSystem, _rng: &mut SmallRng) -> FsResult<()> {
        fs.mkdir("/data")?;
        for d in 0..self.dirs {
            fs.mkdir(&format!("/data/d{d}"))?;
            for i in 0..self.files_per_dir {
                fs.write_file(&Self::file(d, i), &vec![(d * 11 + i) as u8; self.file_bytes])?;
            }
        }
        fs.sync()
    }

    fn run(&self, fs: &dyn FileSystem, rng: &mut SmallRng, rec: &mut Recorder) -> FsResult<()> {
        for d in 0..self.dirs {
            self.run_shard(fs, d, self.dirs, rng, rec)?;
        }
        Ok(())
    }

    fn run_shard(
        &self,
        fs: &dyn FileSystem,
        shard: usize,
        shards: usize,
        _rng: &mut SmallRng,
        rec: &mut Recorder,
    ) -> FsResult<()> {
        let clock = fs.clock();
        for d in (shard..self.dirs).step_by(shards.max(1)) {
            let sw = rec.start(&clock);
            fs.readdir(&format!("/data/d{d}"))?;
            rec.finish(&clock, sw, OpClass::Meta, 0);
            for i in 0..self.files_per_dir {
                let path = Self::file(d, i);
                let sw = rec.start(&clock);
                let size = fs.stat(&path)?.size as usize;
                rec.finish(&clock, sw, OpClass::Meta, 0);
                let fd = fs.open(&path, OpenFlags::read_only())?;
                let mut off = 0usize;
                while off < size {
                    let n = self.chunk.min(size - off);
                    let sw = rec.start(&clock);
                    fs.read(fd, off as u64, n)?;
                    rec.finish(&clock, sw, OpClass::Read, n);
                    off += n;
                }
                fs.close(fd)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{replay, ReplayConfig, ReplaySpeed};

    fn small() -> MssdConfig {
        MssdConfig::small_test()
    }

    #[test]
    fn every_corpus_scenario_records_deterministically() {
        for kind in CorpusKind::ALL {
            let a = record_corpus(kind, FsKind::ByteFs, small(), Scale::tiny(), 3).unwrap();
            let b = record_corpus(kind, FsKind::ByteFs, small(), Scale::tiny(), 3).unwrap();
            assert_eq!(a.trace.to_text(), b.trace.to_text(), "{kind}");
            assert_eq!(a.remount_digest, b.remount_digest, "{kind}");
            assert!(a.trace.records.len() > 30, "{kind}: {} records", a.trace.records.len());
            assert_eq!(a.trace.meta.name, kind.label());
        }
    }

    #[test]
    fn corpus_traces_replay_exactly_on_the_recording_fs() {
        for kind in CorpusKind::ALL {
            let rec = record_corpus(kind, FsKind::ByteFs, small(), Scale::tiny(), 5).unwrap();
            let out = replay(&rec.trace, FsKind::ByteFs, small(), &ReplayConfig::default())
                .unwrap_or_else(|e| panic!("{kind}: {e:?}"));
            assert_eq!(out.divergences, 0, "{kind}");
            assert_eq!(out.remount_digest, rec.remount_digest, "{kind}");
        }
    }

    #[test]
    fn corpus_traces_replay_against_every_main_filesystem() {
        let rec =
            record_corpus(CorpusKind::CiChurn, FsKind::ByteFs, small(), Scale::tiny(), 7).unwrap();
        for fs_kind in FsKind::MAIN {
            let out = replay(&rec.trace, fs_kind, small(), &ReplayConfig::default())
                .unwrap_or_else(|e| panic!("{fs_kind}: {e:?}"));
            assert_eq!(out.divergences, 0, "{fs_kind}: the op stream is fs-neutral");
            assert!(out.result.ops > 0, "{fs_kind}");
        }
    }

    #[test]
    fn multi_tenant_scenarios_mark_their_clients() {
        let rec =
            record_corpus(CorpusKind::DiurnalBurst, FsKind::ByteFs, small(), Scale::tiny(), 1)
                .unwrap();
        let tenants = rec.trace.tenants();
        assert!(tenants.len() >= 8, "one tenant per client, got {tenants:?}");
        // A concurrent replay of the multi-tenant body stays divergence-free
        // (tenants touch disjoint files).
        let out = replay(
            &rec.trace,
            FsKind::ByteFs,
            small(),
            &ReplayConfig { speed: ReplaySpeed::Unthrottled, threads: 4 },
        )
        .unwrap();
        assert_eq!(out.divergences, 0);
        assert_eq!(out.replayed, rec.trace.records.len() as u64);
    }

    #[test]
    fn diurnal_idle_gaps_survive_exact_replay() {
        let rec =
            record_corpus(CorpusKind::DiurnalBurst, FsKind::ByteFs, small(), Scale::tiny(), 2)
                .unwrap();
        let exact = replay(&rec.trace, FsKind::ByteFs, small(), &ReplayConfig::default()).unwrap();
        let fast = replay(
            &rec.trace,
            FsKind::ByteFs,
            small(),
            &ReplayConfig { speed: ReplaySpeed::Unthrottled, threads: 1 },
        )
        .unwrap();
        // The recorded idle windows reappear at exact speed and vanish
        // unthrottled.
        let w = DiurnalBurst::new(Scale::tiny());
        let idle_total = (w.clients * w.windows * w.quiet_ops) as u64 * w.idle_gap_ns;
        assert!(
            exact.result.elapsed_ns >= fast.result.elapsed_ns + idle_total,
            "exact {} vs unthrottled {} (idle {})",
            exact.result.elapsed_ns,
            fast.result.elapsed_ns,
            idle_total
        );
    }
}
