//! YCSB workloads A–F over the [`kvstore`] LSM store (Table 5: 10 M 1000-byte
//! key-value pairs, 40 M operations, zipfian request distribution — scaled
//! down here).

use std::sync::Arc;

use fskit::{FileSystem, FsResult};
use kvstore::{Db, DbOptions};
use mssd::stats::TrafficCounter;
use mssd::Mssd;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{LatencyStats, OpClass, Recorder};
use crate::spec::Scale;

/// The six core YCSB workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbWorkload {
    /// 50 % read / 50 % update, zipfian.
    A,
    /// 95 % read / 5 % update, zipfian.
    B,
    /// 100 % read, zipfian.
    C,
    /// 95 % read / 5 % insert, latest distribution.
    D,
    /// 95 % scan / 5 % insert, uniform scan starts.
    E,
    /// 50 % read / 50 % read-modify-write, zipfian.
    F,
}

impl YcsbWorkload {
    /// All six workloads in order.
    pub const ALL: [YcsbWorkload; 6] = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ];

    /// Report label, e.g. `"ycsb-a"`.
    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "ycsb-a",
            YcsbWorkload::B => "ycsb-b",
            YcsbWorkload::C => "ycsb-c",
            YcsbWorkload::D => "ycsb-d",
            YcsbWorkload::E => "ycsb-e",
            YcsbWorkload::F => "ycsb-f",
        }
    }
}

/// Parameters of one YCSB run.
#[derive(Debug, Clone)]
pub struct YcsbSpec {
    /// Which workload mix.
    pub workload: YcsbWorkload,
    /// Number of records loaded before the measured phase.
    pub records: usize,
    /// Number of measured operations.
    pub operations: usize,
    /// Value size in bytes (1000 in the paper).
    pub value_size: usize,
    /// Maximum scan length for workload E.
    pub max_scan: usize,
}

impl YcsbSpec {
    /// The paper's shape scaled down (harness base: 2 000 records / 4 000
    /// operations).
    pub fn new(workload: YcsbWorkload, scale: Scale) -> Self {
        Self {
            workload,
            records: scale.count(2_000),
            operations: scale.count(4_000),
            value_size: 1_000,
            max_scan: 50,
        }
    }

    fn key(&self, i: usize) -> Vec<u8> {
        format!("user{i:012}").into_bytes()
    }
}

/// A zipfian integer generator over `[0, n)` (Gray et al.), the request
/// distribution YCSB uses for its skewed workloads.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Creates a generator over `[0, n)` with the YCSB default skew
    /// (theta = 0.99).
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, 0.99)
    }

    /// Creates a generator with a custom skew parameter.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a non-empty domain");
        let zeta = |count: u64, theta: f64| -> f64 {
            (1..=count).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        };
        let zetan = zeta(n, theta);
        let zeta2theta = zeta(2, theta);
        Self {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan),
            zeta2theta,
        }
    }

    /// Draws the next value in `[0, n)`; small values are the most popular.
    pub fn next(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let value = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        value.min(self.n - 1)
    }

    /// The size of the domain.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// The configured skew.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Internal normalization constant over two elements (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// How the insert-heavy workloads (D/E) sequence their insert keys and pick
/// "latest" read targets. The sequential runner appends to one global key
/// sequence; the concurrent runner gives every thread a disjoint arithmetic
/// sequence so inserts never collide.
trait InsertKeys {
    /// The next key to insert (advances the sequence).
    fn next_insert(&mut self, spec: &YcsbSpec) -> Vec<u8>;

    /// A latest-skewed read target; `draw` is a zipfian sample (small values
    /// = most recent).
    fn latest_read(&mut self, spec: &YcsbSpec, draw: u64) -> Vec<u8>;
}

/// One global contiguous sequence, `records, records+1, ...` (sequential).
struct GlobalKeys {
    inserted: usize,
}

impl InsertKeys for GlobalKeys {
    fn next_insert(&mut self, spec: &YcsbSpec) -> Vec<u8> {
        let key = spec.key(self.inserted);
        self.inserted += 1;
        key
    }

    fn latest_read(&mut self, spec: &YcsbSpec, draw: u64) -> Vec<u8> {
        spec.key(self.inserted - 1 - (draw as usize).min(self.inserted - 1))
    }
}

/// Thread `thread`'s disjoint sequence `records + thread + k*threads`
/// (concurrent). Latest reads prefer this thread's own inserts and fall back
/// to the preloaded set before any insert happened.
struct ShardKeys {
    thread: usize,
    threads: usize,
    own: usize,
}

impl InsertKeys for ShardKeys {
    fn next_insert(&mut self, spec: &YcsbSpec) -> Vec<u8> {
        let key = spec.key(spec.records + self.thread + self.own * self.threads);
        self.own += 1;
        key
    }

    fn latest_read(&mut self, spec: &YcsbSpec, draw: u64) -> Vec<u8> {
        if self.own == 0 {
            return spec.key(draw as usize);
        }
        let back = (draw as usize).min(self.own - 1);
        spec.key(spec.records + self.thread + (self.own - 1 - back) * self.threads)
    }
}

/// Executes one YCSB request — the op mix shared verbatim by [`run_ycsb`]
/// and [`run_ycsb_concurrent`]; only the key sequencing (`keys`) differs.
#[allow(clippy::too_many_arguments)]
fn ycsb_op(
    db: &Db,
    spec: &YcsbSpec,
    zipf: &Zipfian,
    clock: &mssd::Clock,
    value: &[u8],
    rng: &mut SmallRng,
    rec: &mut Recorder,
    keys: &mut dyn InsertKeys,
) -> FsResult<()> {
    let draw: f64 = rng.gen();
    match spec.workload {
        YcsbWorkload::A | YcsbWorkload::F if draw < 0.5 => {
            // Update (A) / read-modify-write (F).
            let key = spec.key(zipf.next(rng) as usize);
            let sw = rec.start(clock);
            if spec.workload == YcsbWorkload::F {
                let _ = db.get(&key)?;
            }
            db.put(&key, value)?;
            rec.finish(clock, sw, OpClass::Write, spec.value_size);
        }
        YcsbWorkload::B if draw < 0.05 => {
            let key = spec.key(zipf.next(rng) as usize);
            let sw = rec.start(clock);
            db.put(&key, value)?;
            rec.finish(clock, sw, OpClass::Write, spec.value_size);
        }
        YcsbWorkload::D if draw < 0.05 => {
            let key = keys.next_insert(spec);
            let sw = rec.start(clock);
            db.put(&key, value)?;
            rec.finish(clock, sw, OpClass::Write, spec.value_size);
        }
        YcsbWorkload::E => {
            if draw < 0.05 {
                let key = keys.next_insert(spec);
                let sw = rec.start(clock);
                db.put(&key, value)?;
                rec.finish(clock, sw, OpClass::Write, spec.value_size);
            } else {
                let start = rng.gen_range(0..spec.records);
                let len = rng.gen_range(1..=spec.max_scan);
                let sw = rec.start(clock);
                let rows = db.scan(&spec.key(start), len)?;
                rec.finish(clock, sw, OpClass::Read, rows.len() * spec.value_size);
            }
        }
        _ => {
            // Reads: zipfian for A/B/C/F, latest-skewed for D.
            let key = if spec.workload == YcsbWorkload::D {
                let draw = zipf.next(rng);
                keys.latest_read(spec, draw)
            } else {
                spec.key(zipf.next(rng) as usize)
            };
            let sw = rec.start(clock);
            let got = db.get(&key)?;
            rec.finish(clock, sw, OpClass::Read, got.map(|v| v.len()).unwrap_or(0));
        }
    }
    Ok(())
}

/// The result of one YCSB run.
#[derive(Debug, Clone)]
pub struct YcsbResult {
    /// Workload label.
    pub workload: String,
    /// File-system label.
    pub fs: String,
    /// Measured operations.
    pub ops: u64,
    /// Virtual time of the measured phase in nanoseconds.
    pub elapsed_ns: u64,
    /// Throughput in thousands of operations per second.
    pub kops_per_sec: f64,
    /// Read (get/scan) latency statistics.
    pub read: LatencyStats,
    /// Update/insert latency statistics.
    pub write: LatencyStats,
    /// Device traffic during the measured phase.
    pub traffic: TrafficCounter,
}

/// Loads the data set and runs one YCSB workload on a database stored on `fs`.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn run_ycsb(
    device: &Arc<Mssd>,
    fs: Arc<dyn FileSystem>,
    spec: &YcsbSpec,
    seed: u64,
) -> FsResult<YcsbResult> {
    let fs_name = fs.name().to_string();
    let db = Db::open(fs, "/ycsb", DbOptions::default())?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let value = vec![0xEEu8; spec.value_size];

    // Load phase (not measured).
    for i in 0..spec.records {
        db.put(&spec.key(i), &value)?;
    }
    db.flush()?;

    // Measured phase.
    let clock = device.clock();
    let before = device.traffic();
    let start_ns = clock.now_ns();
    let mut rec = Recorder::new();
    let zipf = Zipfian::new(spec.records as u64);
    let mut keys = GlobalKeys { inserted: spec.records };

    for _ in 0..spec.operations {
        ycsb_op(&db, spec, &zipf, &clock, &value, &mut rng, &mut rec, &mut keys)?;
    }
    db.close()?;

    let elapsed_ns = clock.now_ns().saturating_sub(start_ns).max(1);
    let traffic = device.traffic().delta_since(&before);
    Ok(YcsbResult {
        workload: spec.workload.label().to_string(),
        fs: fs_name,
        ops: rec.ops,
        elapsed_ns,
        kops_per_sec: rec.ops as f64 / (elapsed_ns as f64 / 1e9) / 1e3,
        read: rec.read_stats(),
        write: rec.write_stats(),
        traffic,
    })
}

/// Runs one YCSB workload from `threads` client threads over one shared
/// [`Db`] (and therefore one shared file system).
///
/// The op stream is partitioned: each thread runs `operations / threads`
/// (remainder to the low threads) requests with its own RNG, and the
/// insert-heavy workloads (D/E) give each thread a disjoint arithmetic key
/// sequence (`records + thread + k*threads`) so inserts never collide.
/// Reads may target any preloaded key — concurrent readers on one key are
/// part of the workload. Device traffic is snapshotted once around the
/// measured phase, never per thread.
///
/// # Errors
///
/// Propagates the first file-system error any thread hit.
///
/// # Panics
///
/// Panics if `threads` is zero or a client thread panics.
pub fn run_ycsb_concurrent(
    device: &Arc<Mssd>,
    fs: Arc<dyn FileSystem>,
    spec: &YcsbSpec,
    threads: usize,
    seed: u64,
) -> FsResult<YcsbResult> {
    assert!(threads > 0, "need at least one client thread");
    let fs_name = fs.name().to_string();
    let db = Db::open(fs, "/ycsb", DbOptions::default())?;
    let value = vec![0xEEu8; spec.value_size];

    // Load phase (not measured, single-threaded).
    for i in 0..spec.records {
        db.put(&spec.key(i), &value)?;
    }
    db.flush()?;

    // Measured phase: one traffic/clock snapshot around all threads.
    let clock = device.clock();
    let before = device.traffic();
    let start_ns = clock.now_ns();
    let zipf = Zipfian::new(spec.records as u64);
    let outcomes: Vec<FsResult<Recorder>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = &db;
                let zipf = &zipf;
                let value = &value;
                let clock = Arc::clone(&clock);
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed ^ ((t as u64 + 1) << 32));
                    let mut rec = Recorder::new();
                    let ops =
                        spec.operations / threads + usize::from(t < spec.operations % threads);
                    let mut keys = ShardKeys { thread: t, threads, own: 0 };
                    for _ in 0..ops {
                        ycsb_op(db, spec, zipf, &clock, value, &mut rng, &mut rec, &mut keys)?;
                    }
                    Ok(rec)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("ycsb thread panicked")).collect()
    });
    db.close()?;

    let mut rec = Recorder::new();
    for outcome in outcomes {
        rec.merge(outcome?);
    }
    let elapsed_ns = clock.now_ns().saturating_sub(start_ns).max(1);
    let traffic = device.traffic().delta_since(&before);
    Ok(YcsbResult {
        workload: spec.workload.label().to_string(),
        fs: fs_name,
        ops: rec.ops,
        elapsed_ns,
        kops_per_sec: rec.ops as f64 / (elapsed_ns as f64 / 1e9) / 1e3,
        read: rec.read_stats(),
        write: rec.write_stats(),
        traffic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsfactory::FsKind;
    use mssd::MssdConfig;

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let z = Zipfian::new(1000);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            let v = z.next(&mut rng) as usize;
            assert!(v < 1000);
            counts[v] += 1;
        }
        let top10: u32 = counts[..10].iter().sum();
        assert!(
            top10 as f64 / 20_000.0 > 0.2,
            "top-10 keys should absorb a large fraction of a zipfian draw ({top10})"
        );
        assert!(z.domain() == 1000 && z.theta() > 0.9 && z.zeta2() > 1.0);
    }

    fn tiny_spec(workload: YcsbWorkload) -> YcsbSpec {
        YcsbSpec { records: 150, operations: 200, value_size: 200, max_scan: 10, workload }
    }

    #[test]
    fn all_workloads_run_on_bytefs() {
        for w in YcsbWorkload::ALL {
            let (dev, fs) = FsKind::ByteFs.build(MssdConfig::small_test());
            let result = run_ycsb(&dev, fs, &tiny_spec(w), 3).unwrap();
            assert_eq!(result.ops, 200, "{w:?}");
            assert!(result.kops_per_sec > 0.0);
            match w {
                YcsbWorkload::C => assert_eq!(result.write.count, 0, "C is read-only"),
                YcsbWorkload::A | YcsbWorkload::F => {
                    assert!(result.write.count > 40, "{w:?} is write-heavy")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn concurrent_ycsb_partitions_ops_and_snapshots_traffic_once() {
        for w in [YcsbWorkload::A, YcsbWorkload::D] {
            let (dev, fs) = FsKind::ByteFs.build(MssdConfig::small_test());
            let before = dev.traffic();
            let result = run_ycsb_concurrent(&dev, fs, &tiny_spec(w), 4, 13).unwrap();
            assert_eq!(result.ops, 200, "{w:?}: partitioned ops add back up");
            let growth = dev.traffic().delta_since(&before);
            assert!(
                result.traffic.host_write_bytes() <= growth.host_write_bytes(),
                "{w:?}: traffic snapshot covers the measured phase only, once"
            );
            assert!(result.kops_per_sec > 0.0);
        }
    }

    #[test]
    fn runs_on_a_baseline_too() {
        let (dev, fs) = FsKind::F2fs.build(MssdConfig::small_test());
        let result = run_ycsb(&dev, fs, &tiny_spec(YcsbWorkload::A), 9).unwrap();
        assert!(result.read.count > 0 && result.write.count > 0);
        assert!(result.traffic.host_write_bytes() > 0);
    }
}
