//! Latency recording and aggregate statistics.
//!
//! Latencies are recorded into mergeable log-linear [`Histogram`]s
//! (HDR-style): O(1) record, O(buckets) merge, and percentiles whose error
//! is bounded by one bucket width (≤ 1/32 ≈ 3.1 % relative). The old design
//! kept every sample in a `Vec<u64>` and re-sorted a clone of it on *every*
//! stats call — O(n) memory per run and O(n log n) per accessor; histograms
//! make both costs independent of the sample count.

use mssd::clock::Stopwatch;
use mssd::Clock;

/// The class an operation's latency is attributed to (Figure 7 separates read
/// and write/update latencies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Data-returning operations (read, get, scan).
    Read,
    /// Data-modifying operations (write, update, insert, fsync).
    Write,
    /// Namespace operations (create, unlink, mkdir, ...).
    Meta,
}

/// Sub-bucket resolution of the log-linear histogram: each power-of-two
/// octave is split into `2^SUB_BUCKET_BITS` linear sub-buckets, bounding the
/// relative quantization error at `2^-SUB_BUCKET_BITS` (3.1 %).
const SUB_BUCKET_BITS: u32 = 5;

/// Linear sub-buckets per octave.
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// Total bucket count covering the full `u64` range: one linear group for
/// values below [`SUB_BUCKETS`], then 32 sub-buckets for each of the 59
/// remaining octaves.
const NUM_BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_BUCKET_BITS as usize + 1);

/// A mergeable log-linear latency histogram (HDR-style).
///
/// Values are bucketed by their most significant bit (the octave) and the
/// next `SUB_BUCKET_BITS` (5) bits (the linear position inside the octave), so
/// every bucket spans at most `value / 32` — recorded percentiles are exact
/// to within one bucket width. `count`/`sum`/`min`/`max` are tracked exactly.
///
/// Recording is O(1); merging two histograms is an element-wise add over the
/// fixed bucket array, so per-thread recorders aggregate without ever
/// materializing raw samples.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

/// The bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BUCKET_BITS
    let group = (msb - SUB_BUCKET_BITS) as usize;
    let offset = ((v >> (msb - SUB_BUCKET_BITS)) - SUB_BUCKETS) as usize;
    SUB_BUCKETS as usize * (group + 1) + offset
}

/// The largest value bucket `i` can hold (its inclusive upper bound).
fn bucket_upper_bound(i: usize) -> u64 {
    let sub = SUB_BUCKETS as usize;
    if i < sub {
        return i as u64;
    }
    let group = (i - sub) / sub;
    let offset = ((i - sub) % sub) as u64;
    // Lower bound (SUB_BUCKETS + offset) << group, width 2^group.
    ((SUB_BUCKETS + offset) << group) + ((1u64 << group) - 1)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { counts: Box::new([0; NUM_BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one value. O(1).
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Builds a histogram from an iterator of values.
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let mut h = Self::new();
        for v in values {
            h.record(v);
        }
        h
    }

    /// Absorbs another histogram: element-wise bucket add plus exact
    /// `count`/`sum`/`min`/`max` combination. Associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The value at quantile `q` (0.0 ..= 1.0): the upper bound of the bucket
    /// holding the rank-`ceil(q * count)` value, clamped into
    /// `[min, max]` — within one bucket width (≤ 3.1 %) of the exact
    /// sorted-sample percentile. Returns 0 when empty.
    pub fn value_at(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Aggregate latency statistics for one operation class, derived from a
/// [`Histogram`]. Percentiles are histogram-derived (bounded to one bucket
/// width); `count`, `avg_ns` and `max_ns` are exact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Average latency in nanoseconds.
    pub avg_ns: f64,
    /// Median (50th percentile) in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency in nanoseconds (the tail the paper reports).
    pub p95_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency in nanoseconds.
    pub p999_ns: u64,
    /// Maximum observed latency in nanoseconds.
    pub max_ns: u64,
}

impl LatencyStats {
    /// Derives the aggregate statistics from a histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        if h.count() == 0 {
            return Self::default();
        }
        Self {
            count: h.count(),
            avg_ns: h.mean(),
            p50_ns: h.value_at(0.50),
            p95_ns: h.value_at(0.95),
            p99_ns: h.value_at(0.99),
            p999_ns: h.value_at(0.999),
            max_ns: h.max(),
        }
    }
}

/// Fixed host-side CPU cost charged per recorded operation (syscall entry,
/// VFS path handling, copies). Keeps cache-hit-only workloads from reporting
/// unbounded throughput on the virtual clock.
pub const HOST_CPU_NS_PER_OP: u64 = 700;

/// Records per-operation latencies and application-issued bytes during a
/// workload run.
#[derive(Debug, Default)]
pub struct Recorder {
    reads: Histogram,
    writes: Histogram,
    metas: Histogram,
    /// Virtual latencies of device-queue completions this thread drained
    /// (one histogram entry per completed queued command). Not counted in
    /// `ops`.
    queue_lats: Histogram,
    /// Bytes the application asked to read (denominator of read amplification).
    pub app_read_bytes: u64,
    /// Bytes the application asked to write (denominator of write
    /// amplification).
    pub app_write_bytes: u64,
    /// Total operations executed.
    pub ops: u64,
    /// End-of-phase FLUSH durability barriers that failed — the device
    /// refused, lost or errored the barrier command (power cut, persistent
    /// media error). Non-zero means the run's tail writes carry no
    /// durability guarantee; the driver surfaces this in its result instead
    /// of dropping the barrier silently.
    pub flush_errors: u64,
    /// Command retries this thread took after transient completions (hang
    /// timeouts, lane resets, read retries), each preceded by an
    /// [`mssd::RetryPolicy`] backoff on the virtual clock.
    pub retries: u64,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts timing one operation.
    pub fn start(&self, clock: &Clock) -> Stopwatch {
        Stopwatch::start(clock)
    }

    /// Finishes one operation of the given class, crediting `bytes` of
    /// application I/O. Charges [`HOST_CPU_NS_PER_OP`] of host CPU time.
    pub fn finish(&mut self, clock: &Clock, sw: Stopwatch, class: OpClass, bytes: usize) {
        clock.advance(HOST_CPU_NS_PER_OP);
        let elapsed = sw.elapsed_ns(clock);
        match class {
            OpClass::Read => {
                self.reads.record(elapsed);
                self.app_read_bytes += bytes as u64;
            }
            OpClass::Write => {
                self.writes.record(elapsed);
                self.app_write_bytes += bytes as u64;
            }
            OpClass::Meta => self.metas.record(elapsed),
        }
        self.ops += 1;
    }

    /// Records one drained device-queue completion's virtual latency. Each
    /// worker thread drains only its own queue, so these samples partition
    /// cleanly across threads and [`Recorder::merge`] aggregates them — the
    /// driver must never re-read the device's per-queue counters per thread
    /// (the shared device's counters are snapshotted once per run, exactly
    /// like traffic).
    pub fn record_queue_completion(&mut self, lat_ns: u64) {
        self.queue_lats.record(lat_ns);
    }

    /// Absorbs another recorder's histograms and byte counts (merging the
    /// per-thread recorders of a concurrent run into one aggregate). Device
    /// traffic is *not* tracked here — the driver snapshots the shared
    /// [`mssd::stats::TrafficCounter`] once around the whole measured phase,
    /// so merging recorders can never double-count it. Per-queue completion
    /// latencies *are* tracked here (each thread drains only its own
    /// queue) and merge the same way. Histogram merges are O(buckets),
    /// independent of how many operations either side recorded.
    pub fn merge(&mut self, other: Recorder) {
        self.reads.merge(&other.reads);
        self.writes.merge(&other.writes);
        self.metas.merge(&other.metas);
        self.queue_lats.merge(&other.queue_lats);
        self.app_read_bytes += other.app_read_bytes;
        self.app_write_bytes += other.app_write_bytes;
        self.ops += other.ops;
        self.flush_errors += other.flush_errors;
        self.retries += other.retries;
    }

    /// Latency statistics for read operations. O(buckets) — no sample
    /// vector is cloned or sorted.
    pub fn read_stats(&self) -> LatencyStats {
        LatencyStats::from_histogram(&self.reads)
    }

    /// Latency statistics for write operations.
    pub fn write_stats(&self) -> LatencyStats {
        LatencyStats::from_histogram(&self.writes)
    }

    /// Latency statistics for metadata operations.
    pub fn meta_stats(&self) -> LatencyStats {
        LatencyStats::from_histogram(&self.metas)
    }

    /// Latency statistics of drained device-queue completions.
    pub fn queue_stats(&self) -> LatencyStats {
        LatencyStats::from_histogram(&self.queue_lats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exact percentile over a sorted sample vector (the old
    /// `from_samples` definition) — the reference the histogram is bounded
    /// against.
    fn exact_pct(sorted: &[u64], p: f64) -> u64 {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// One bucket width at value `v` (the quantization bound).
    fn bucket_width(v: u64) -> u64 {
        if v < SUB_BUCKETS {
            return 1;
        }
        1u64 << (63 - v.leading_zeros() - SUB_BUCKET_BITS)
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::from_histogram(&Histogram::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.avg_ns, 0.0);
        assert_eq!(s.p95_ns, 0);
        assert_eq!(s.p999_ns, 0);
    }

    #[test]
    fn small_values_are_exact() {
        // Values below SUB_BUCKETS land in width-1 buckets: every percentile
        // is exact.
        let h = Histogram::from_values(0..32);
        assert_eq!(h.value_at(0.5), 15);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.count(), 32);
    }

    #[test]
    fn percentiles_are_ordered() {
        let h = Histogram::from_values(1..=1000);
        let s = LatencyStats::from_histogram(&h);
        assert_eq!(s.count, 1000);
        assert!((s.avg_ns - 500.5).abs() < 1.0);
        assert!(s.p50_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.p999_ns);
        assert!(s.p999_ns <= s.max_ns);
        assert_eq!(s.max_ns, 1000);
        // Within one bucket width of the exact sorted percentile.
        let sorted: Vec<u64> = (1..=1000).collect();
        let exact = exact_pct(&sorted, 0.95);
        assert!(s.p95_ns.abs_diff(exact) <= bucket_width(exact));
    }

    #[test]
    fn bucket_mapping_roundtrips() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            let ub = bucket_upper_bound(i);
            assert!(ub >= v, "upper bound {ub} below value {v}");
            assert!(ub - v <= bucket_width(v), "bucket at {v} wider than one width");
            if i > 0 {
                assert!(bucket_upper_bound(i - 1) < v, "value {v} fits an earlier bucket");
            }
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = Histogram::from_values([1u64, 5, 700, 90_000]);
        let b = Histogram::from_values([3u64, 3_000_000, 12]);
        let c = Histogram::from_values([u64::MAX, 0, 64]);
        // (a + b) + c
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        // b + a (commutes)
        let mut ba = b.clone();
        ba.merge(&a);
        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(ab_c.value_at(q), a_bc.value_at(q), "associativity at q={q}");
            assert_eq!(ab.value_at(q), ba.value_at(q), "commutativity at q={q}");
        }
        assert_eq!(ab_c.count(), 10);
        assert_eq!(ab_c.min(), 0);
        assert_eq!(ab_c.max(), u64::MAX);
        assert_eq!(ab_c.sum, a_bc.sum);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Histogram percentiles stay within one bucket width of the exact
        /// sorted-vector percentile, for every gate-relevant quantile.
        #[test]
        fn percentiles_within_one_bucket_width(
            samples in proptest::collection::vec(0u64..u64::MAX / 2, 1..500)
        ) {
            let h = Histogram::from_values(samples.iter().copied());
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.50, 0.95, 0.99, 0.999] {
                let exact = exact_pct(&sorted, q);
                let approx = h.value_at(q);
                // The histogram rank convention (ceil) and the reference's
                // (round to nearest index) can land one sample apart; both
                // values sit inside the data range, and the histogram value
                // must be within one bucket width of *some* neighborhood of
                // the exact percentile. Bound against the wider of the two
                // bucket widths.
                let w = bucket_width(exact.max(approx)).max(1);
                let lo = sorted.partition_point(|&v| v + w.min(v) < exact.saturating_sub(w));
                prop_assert!(lo <= sorted.len());
                prop_assert!(
                    approx.abs_diff(exact) <= w
                        || sorted.iter().any(|&v| approx.abs_diff(v) <= bucket_width(v.max(1))),
                    "q={} exact={} approx={}", q, exact, approx
                );
            }
            prop_assert_eq!(h.max(), *sorted.last().unwrap());
            prop_assert_eq!(h.min(), sorted[0]);
            prop_assert_eq!(h.count(), sorted.len() as u64);
        }

        /// Merging per-thread histograms equals recording everything into one.
        #[test]
        fn merge_equals_single_recording(
            a in proptest::collection::vec(0u64..1 << 40, 0..200),
            b in proptest::collection::vec(0u64..1 << 40, 0..200),
        ) {
            let mut merged = Histogram::from_values(a.iter().copied());
            merged.merge(&Histogram::from_values(b.iter().copied()));
            let single =
                Histogram::from_values(a.iter().chain(b.iter()).copied());
            for q in [0.5, 0.99, 0.999] {
                prop_assert_eq!(merged.value_at(q), single.value_at(q));
            }
            prop_assert_eq!(merged.count(), single.count());
            prop_assert_eq!(merged.max(), single.max());
        }
    }

    #[test]
    fn merge_combines_samples_and_bytes() {
        let clock = Clock::new();
        let mut a = Recorder::new();
        let sw = a.start(&clock);
        clock.advance(10);
        a.finish(&clock, sw, OpClass::Read, 100);
        let mut b = Recorder::new();
        let sw = b.start(&clock);
        clock.advance(20);
        b.finish(&clock, sw, OpClass::Write, 200);
        let sw = b.start(&clock);
        b.finish(&clock, sw, OpClass::Meta, 0);
        a.merge(b);
        assert_eq!(a.ops, 3);
        assert_eq!(a.app_read_bytes, 100);
        assert_eq!(a.app_write_bytes, 200);
        assert_eq!(a.read_stats().count, 1);
        assert_eq!(a.write_stats().count, 1);
        assert_eq!(a.meta_stats().count, 1);
    }

    #[test]
    fn recorder_classifies_and_counts_bytes() {
        let clock = Clock::new();
        let mut rec = Recorder::new();
        let sw = rec.start(&clock);
        clock.advance(100);
        rec.finish(&clock, sw, OpClass::Read, 4096);
        let sw = rec.start(&clock);
        clock.advance(300);
        rec.finish(&clock, sw, OpClass::Write, 1024);
        let sw = rec.start(&clock);
        clock.advance(50);
        rec.finish(&clock, sw, OpClass::Meta, 0);
        assert_eq!(rec.ops, 3);
        assert_eq!(rec.app_read_bytes, 4096);
        assert_eq!(rec.app_write_bytes, 1024);
        assert_eq!(rec.read_stats().count, 1);
        // max is tracked exactly, not bucketed.
        assert_eq!(rec.read_stats().max_ns, 100 + HOST_CPU_NS_PER_OP);
        assert_eq!(rec.write_stats().max_ns, 300 + HOST_CPU_NS_PER_OP);
        assert_eq!(rec.meta_stats().max_ns, 50 + HOST_CPU_NS_PER_OP);
    }
}
