//! Latency recording and aggregate statistics.

use mssd::clock::Stopwatch;
use mssd::Clock;

/// The class an operation's latency is attributed to (Figure 7 separates read
/// and write/update latencies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Data-returning operations (read, get, scan).
    Read,
    /// Data-modifying operations (write, update, insert, fsync).
    Write,
    /// Namespace operations (create, unlink, mkdir, ...).
    Meta,
}

/// Aggregate latency statistics for one operation class.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Average latency in nanoseconds.
    pub avg_ns: f64,
    /// Median (50th percentile) in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency in nanoseconds (the tail the paper reports).
    pub p95_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// Maximum observed latency in nanoseconds.
    pub max_ns: u64,
}

impl LatencyStats {
    fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u128 = samples.iter().map(|v| *v as u128).sum();
        let pct = |p: f64| -> u64 {
            let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
            samples[idx.min(samples.len() - 1)]
        };
        Self {
            count,
            avg_ns: sum as f64 / count as f64,
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            max_ns: *samples.last().expect("non-empty"),
        }
    }
}

/// Fixed host-side CPU cost charged per recorded operation (syscall entry,
/// VFS path handling, copies). Keeps cache-hit-only workloads from reporting
/// unbounded throughput on the virtual clock.
pub const HOST_CPU_NS_PER_OP: u64 = 700;

/// Records per-operation latencies and application-issued bytes during a
/// workload run.
#[derive(Debug, Default)]
pub struct Recorder {
    reads: Vec<u64>,
    writes: Vec<u64>,
    metas: Vec<u64>,
    /// Virtual latencies of device-queue completions this thread drained
    /// (one sample per completed queued command). Not counted in `ops`.
    queue_lats: Vec<u64>,
    /// Bytes the application asked to read (denominator of read amplification).
    pub app_read_bytes: u64,
    /// Bytes the application asked to write (denominator of write
    /// amplification).
    pub app_write_bytes: u64,
    /// Total operations executed.
    pub ops: u64,
    /// End-of-phase FLUSH durability barriers that failed — the device
    /// refused, lost or errored the barrier command (power cut, persistent
    /// media error). Non-zero means the run's tail writes carry no
    /// durability guarantee; the driver surfaces this in its result instead
    /// of dropping the barrier silently.
    pub flush_errors: u64,
    /// Command retries this thread took after transient completions (hang
    /// timeouts, lane resets, read retries), each preceded by an
    /// [`mssd::RetryPolicy`] backoff on the virtual clock.
    pub retries: u64,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts timing one operation.
    pub fn start(&self, clock: &Clock) -> Stopwatch {
        Stopwatch::start(clock)
    }

    /// Finishes one operation of the given class, crediting `bytes` of
    /// application I/O. Charges [`HOST_CPU_NS_PER_OP`] of host CPU time.
    pub fn finish(&mut self, clock: &Clock, sw: Stopwatch, class: OpClass, bytes: usize) {
        clock.advance(HOST_CPU_NS_PER_OP);
        let elapsed = sw.elapsed_ns(clock);
        match class {
            OpClass::Read => {
                self.reads.push(elapsed);
                self.app_read_bytes += bytes as u64;
            }
            OpClass::Write => {
                self.writes.push(elapsed);
                self.app_write_bytes += bytes as u64;
            }
            OpClass::Meta => self.metas.push(elapsed),
        }
        self.ops += 1;
    }

    /// Records one drained device-queue completion's virtual latency. Each
    /// worker thread drains only its own queue, so these samples partition
    /// cleanly across threads and [`Recorder::merge`] aggregates them — the
    /// driver must never re-read the device's per-queue counters per thread
    /// (the shared device's counters are snapshotted once per run, exactly
    /// like traffic).
    pub fn record_queue_completion(&mut self, lat_ns: u64) {
        self.queue_lats.push(lat_ns);
    }

    /// Absorbs another recorder's samples and byte counts (merging the
    /// per-thread recorders of a concurrent run into one aggregate). Device
    /// traffic is *not* tracked here — the driver snapshots the shared
    /// [`mssd::stats::TrafficCounter`] once around the whole measured phase,
    /// so merging recorders can never double-count it. Per-queue completion
    /// latencies *are* tracked here (each thread drains only its own
    /// queue) and merge the same way.
    pub fn merge(&mut self, other: Recorder) {
        self.reads.extend(other.reads);
        self.writes.extend(other.writes);
        self.metas.extend(other.metas);
        self.queue_lats.extend(other.queue_lats);
        self.app_read_bytes += other.app_read_bytes;
        self.app_write_bytes += other.app_write_bytes;
        self.ops += other.ops;
        self.flush_errors += other.flush_errors;
        self.retries += other.retries;
    }

    /// Latency statistics for read operations.
    pub fn read_stats(&self) -> LatencyStats {
        LatencyStats::from_samples(self.reads.clone())
    }

    /// Latency statistics for write operations.
    pub fn write_stats(&self) -> LatencyStats {
        LatencyStats::from_samples(self.writes.clone())
    }

    /// Latency statistics for metadata operations.
    pub fn meta_stats(&self) -> LatencyStats {
        LatencyStats::from_samples(self.metas.clone())
    }

    /// Latency statistics of drained device-queue completions.
    pub fn queue_stats(&self) -> LatencyStats {
        LatencyStats::from_samples(self.queue_lats.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::from_samples(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.avg_ns, 0.0);
        assert_eq!(s.p95_ns, 0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let samples: Vec<u64> = (1..=1000).collect();
        let s = LatencyStats::from_samples(samples);
        assert_eq!(s.count, 1000);
        assert!((s.avg_ns - 500.5).abs() < 1.0);
        assert!(s.p50_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.max_ns);
        assert_eq!(s.max_ns, 1000);
        assert!(s.p95_ns >= 940 && s.p95_ns <= 960);
    }

    #[test]
    fn merge_combines_samples_and_bytes() {
        let clock = Clock::new();
        let mut a = Recorder::new();
        let sw = a.start(&clock);
        clock.advance(10);
        a.finish(&clock, sw, OpClass::Read, 100);
        let mut b = Recorder::new();
        let sw = b.start(&clock);
        clock.advance(20);
        b.finish(&clock, sw, OpClass::Write, 200);
        let sw = b.start(&clock);
        b.finish(&clock, sw, OpClass::Meta, 0);
        a.merge(b);
        assert_eq!(a.ops, 3);
        assert_eq!(a.app_read_bytes, 100);
        assert_eq!(a.app_write_bytes, 200);
        assert_eq!(a.read_stats().count, 1);
        assert_eq!(a.write_stats().count, 1);
        assert_eq!(a.meta_stats().count, 1);
    }

    #[test]
    fn recorder_classifies_and_counts_bytes() {
        let clock = Clock::new();
        let mut rec = Recorder::new();
        let sw = rec.start(&clock);
        clock.advance(100);
        rec.finish(&clock, sw, OpClass::Read, 4096);
        let sw = rec.start(&clock);
        clock.advance(300);
        rec.finish(&clock, sw, OpClass::Write, 1024);
        let sw = rec.start(&clock);
        clock.advance(50);
        rec.finish(&clock, sw, OpClass::Meta, 0);
        assert_eq!(rec.ops, 3);
        assert_eq!(rec.app_read_bytes, 4096);
        assert_eq!(rec.app_write_bytes, 1024);
        assert_eq!(rec.read_stats().count, 1);
        assert_eq!(rec.read_stats().max_ns, 100 + HOST_CPU_NS_PER_OP);
        assert_eq!(rec.write_stats().max_ns, 300 + HOST_CPU_NS_PER_OP);
        assert_eq!(rec.meta_stats().max_ns, 50 + HOST_CPU_NS_PER_OP);
    }
}
