//! Construction of every file system under test.

use std::sync::Arc;

use baselines::{Ext4Like, F2fsLike, NovaLike, PmfsLike};
use bytefs::{ByteFs, ByteFsConfig};
use fskit::FileSystem;
use mssd::{DramMode, Mssd, MssdConfig};

/// The file systems compared in the evaluation, including the ByteFS ablation
/// variants of Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsKind {
    /// Ext4-like baseline (`E` in the figures).
    Ext4,
    /// F2FS-like baseline (`F`).
    F2fs,
    /// NOVA-like baseline (`N`).
    Nova,
    /// PMFS-like baseline (`P`).
    Pmfs,
    /// Full ByteFS (`B`).
    ByteFs,
    /// ByteFS with only the dual interface for metadata (Figure 12
    /// "ByteFS-Dual").
    ByteFsDual,
    /// ByteFS-Dual plus the firmware log (Figure 12 "ByteFS-Log").
    ByteFsLog,
}

impl FsKind {
    /// The five file systems of the main comparison (Figures 6–11).
    pub const MAIN: [FsKind; 5] =
        [FsKind::Ext4, FsKind::F2fs, FsKind::Nova, FsKind::Pmfs, FsKind::ByteFs];

    /// The ablation lineup of Figure 12.
    pub const ABLATION: [FsKind; 4] =
        [FsKind::Ext4, FsKind::ByteFsDual, FsKind::ByteFsLog, FsKind::ByteFs];

    /// The lineup of the multi-threaded `fs_scale` bench: the sharded ByteFS
    /// against one journaling and one log-structured baseline (both of which
    /// serialize every operation behind a single engine lock — the contrast
    /// case for host-side lock scaling).
    pub const SCALING: [FsKind; 3] = [FsKind::Ext4, FsKind::Nova, FsKind::ByteFs];

    /// Short label used in reports (matches the paper's single letters where
    /// applicable).
    pub fn label(self) -> &'static str {
        match self {
            FsKind::Ext4 => "ext4",
            FsKind::F2fs => "f2fs",
            FsKind::Nova => "nova",
            FsKind::Pmfs => "pmfs",
            FsKind::ByteFs => "bytefs",
            FsKind::ByteFsDual => "bytefs-dual",
            FsKind::ByteFsLog => "bytefs-log",
        }
    }

    /// The device firmware mode this file system runs on (§5.1: baselines run
    /// without firmware changes, i.e. page-granular device caching).
    pub fn dram_mode(self) -> DramMode {
        match self {
            FsKind::ByteFs | FsKind::ByteFsLog => DramMode::WriteLog,
            _ => DramMode::PageCache,
        }
    }

    /// Builds a freshly formatted file system of this kind on a new device
    /// with the given configuration. Returns the device (for stats access) and
    /// the mounted file system.
    ///
    /// # Panics
    ///
    /// Panics if formatting fails (the configurations produced by this crate
    /// are always valid).
    pub fn build(self, cfg: MssdConfig) -> (Arc<Mssd>, Arc<dyn FileSystem>) {
        let device = Mssd::new(cfg, self.dram_mode());
        let fs: Arc<dyn FileSystem> = match self {
            FsKind::Ext4 => Ext4Like::format(Arc::clone(&device)),
            FsKind::F2fs => F2fsLike::format(Arc::clone(&device)),
            FsKind::Nova => NovaLike::format(Arc::clone(&device)),
            FsKind::Pmfs => PmfsLike::format(Arc::clone(&device)),
            FsKind::ByteFs => ByteFs::format(Arc::clone(&device), ByteFsConfig::full())
                .expect("format full ByteFS"),
            FsKind::ByteFsDual => ByteFs::format(Arc::clone(&device), ByteFsConfig::dual_only())
                .expect("format ByteFS-Dual"),
            FsKind::ByteFsLog => ByteFs::format(Arc::clone(&device), ByteFsConfig::dual_plus_log())
                .expect("format ByteFS-Log"),
        };
        (device, fs)
    }
}

impl std::fmt::Display for FsKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fskit::FileSystemExt;

    #[test]
    fn every_kind_builds_and_serves_io() {
        for kind in [
            FsKind::Ext4,
            FsKind::F2fs,
            FsKind::Nova,
            FsKind::Pmfs,
            FsKind::ByteFs,
            FsKind::ByteFsDual,
            FsKind::ByteFsLog,
        ] {
            let (dev, fs) = kind.build(MssdConfig::small_test());
            assert_eq!(dev.dram_mode(), kind.dram_mode());
            fs.mkdir("/t").unwrap();
            fs.write_file("/t/f", &vec![0xA5u8; 5000]).unwrap();
            assert_eq!(fs.read_file("/t/f").unwrap(), vec![0xA5u8; 5000], "{kind}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = [
            FsKind::Ext4,
            FsKind::F2fs,
            FsKind::Nova,
            FsKind::Pmfs,
            FsKind::ByteFs,
            FsKind::ByteFsDual,
            FsKind::ByteFsLog,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn lineups_match_the_paper() {
        assert_eq!(FsKind::MAIN.len(), 5);
        assert_eq!(FsKind::ABLATION[0], FsKind::Ext4);
        assert_eq!(FsKind::ABLATION[3], FsKind::ByteFs);
    }
}
