//! The OLTP-style workload (Table 5: 1.6 K files of 10 MB, 200 threads, with
//! frequent `fdatasync`): small random overwrites of large database files plus
//! a sequential redo-log append, every transaction made durable.

use fskit::{FileSystem, FileSystemExt, FsResult, OpenFlags};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::metrics::{OpClass, Recorder};
use crate::spec::Scale;
use crate::Workload;

/// The OLTP workload.
#[derive(Debug, Clone)]
pub struct Oltp {
    /// Number of database files.
    pub files: usize,
    /// Size of each database file in bytes.
    pub file_size: usize,
    /// Number of transactions (each: one random overwrite + log append +
    /// fdatasync).
    pub transactions: usize,
    /// Size of one random overwrite in bytes.
    pub write_size: usize,
    /// Size of one redo-log append in bytes.
    pub log_size: usize,
}

impl Oltp {
    /// The paper's shape scaled down (harness base: 8 files of 512 KB,
    /// 600 transactions of 2 KB writes).
    pub fn new(scale: Scale) -> Self {
        Self {
            files: 8,
            file_size: 512 << 10,
            transactions: scale.count(600),
            write_size: 2 << 10,
            log_size: 512,
        }
    }

    fn table_path(i: usize) -> String {
        format!("/oltp/table{i}")
    }
}

impl Workload for Oltp {
    fn name(&self) -> String {
        "oltp".to_string()
    }

    fn setup(&self, fs: &dyn FileSystem, _rng: &mut SmallRng) -> FsResult<()> {
        fs.mkdir("/oltp")?;
        let payload = vec![0x44u8; self.file_size];
        for i in 0..self.files {
            fs.write_file(&Self::table_path(i), &payload)?;
        }
        fs.write_file("/oltp/redo.log", b"")?;
        fs.sync()
    }

    fn run(&self, fs: &dyn FileSystem, rng: &mut SmallRng, rec: &mut Recorder) -> FsResult<()> {
        let clock = fs.clock();
        let log_fd = fs.open("/oltp/redo.log", OpenFlags::read_write().with_append())?;
        let row = vec![0x99u8; self.write_size];
        let log_entry = vec![0x11u8; self.log_size];
        for _ in 0..self.transactions {
            let table = rng.gen_range(0..self.files);
            let offset = (rng.gen_range(0..self.file_size - self.write_size) / self.write_size
                * self.write_size) as u64;
            // Occasionally read the row first (SELECT before UPDATE).
            if rng.gen_bool(0.3) {
                let sw = rec.start(&clock);
                let fd = fs.open(&Self::table_path(table), OpenFlags::read_only())?;
                let data = fs.read(fd, offset, self.write_size)?;
                fs.close(fd)?;
                rec.finish(&clock, sw, OpClass::Read, data.len());
            }
            let sw = rec.start(&clock);
            let fd = fs.open(&Self::table_path(table), OpenFlags::read_write())?;
            fs.write(fd, offset, &row)?;
            fs.fdatasync(fd)?;
            fs.close(fd)?;
            rec.finish(&clock, sw, OpClass::Write, self.write_size);

            let sw = rec.start(&clock);
            fs.append(log_fd, &log_entry)?;
            fs.fdatasync(log_fd)?;
            rec.finish(&clock, sw, OpClass::Write, self.log_size);
        }
        fs.close(log_fd)?;
        let sw = rec.start(&clock);
        fs.sync()?;
        rec.finish(&clock, sw, OpClass::Write, 0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_workload;
    use crate::fsfactory::FsKind;
    use mssd::MssdConfig;

    #[test]
    fn oltp_runs_on_all_main_file_systems() {
        for kind in FsKind::MAIN {
            let w = Oltp { transactions: 20, file_size: 64 << 10, ..Oltp::new(Scale::tiny()) };
            let result = run_workload(kind, MssdConfig::small_test(), &w, 11).unwrap();
            assert!(result.write.count >= 40, "{kind}: two durable writes per transaction");
            assert!(result.traffic.host_write_bytes() > 0);
        }
    }

    #[test]
    fn small_sync_overwrites_favour_bytefs_over_ext4() {
        let mk = || Oltp { transactions: 50, file_size: 64 << 10, ..Oltp::new(Scale::tiny()) };
        let bytefs = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &mk(), 5).unwrap();
        let ext4 = run_workload(FsKind::Ext4, MssdConfig::small_test(), &mk(), 5).unwrap();
        assert!(
            bytefs.kops_per_sec > ext4.kops_per_sec,
            "ByteFS ({:.2} kops/s) should beat Ext4 ({:.2} kops/s) on sync-heavy OLTP",
            bytefs.kops_per_sec,
            ext4.kops_per_sec
        );
    }
}
