//! Running a workload against a file system and collecting the paper's
//! metrics.

use std::sync::Arc;

use fskit::{AsyncFs, FileSystem, FsResult};
use mssd::queue::{Command, HostQueue};
use mssd::stats::{Direction, TrafficCounter};
use mssd::{Clock, Mssd, MssdConfig, RetryPolicy, Runtime};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::fsfactory::FsKind;
use crate::metrics::{LatencyStats, Recorder};
use crate::Workload;

/// The outcome of one workload run on one file system.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// File-system label.
    pub fs: String,
    /// Workload label.
    pub workload: String,
    /// Measured operations.
    pub ops: u64,
    /// Virtual time the measured phase took.
    pub elapsed_ns: u64,
    /// Throughput in thousands of operations per second.
    pub kops_per_sec: f64,
    /// Read-operation latency statistics.
    pub read: LatencyStats,
    /// Write-operation latency statistics.
    pub write: LatencyStats,
    /// Metadata-operation latency statistics.
    pub meta: LatencyStats,
    /// Latency statistics of device-queue completions drained during the
    /// run (empty for sequential runs, which use the depth-1 sync shim).
    pub queue: LatencyStats,
    /// Device traffic during the measured phase.
    pub traffic: TrafficCounter,
    /// Bytes the application asked to read.
    pub app_read_bytes: u64,
    /// Bytes the application asked to write.
    pub app_write_bytes: u64,
    /// Device page size (for flash-byte conversions).
    pub page_size: usize,
    /// End-of-phase FLUSH durability barriers that failed (see
    /// [`Recorder::flush_errors`]). Non-zero means the run's tail writes
    /// carry no durability guarantee.
    pub flush_errors: u64,
    /// Host-side command retries after transient completions (see
    /// [`Recorder::retries`]): each was preceded by a seeded
    /// [`RetryPolicy`] backoff on the virtual clock, never a busy spin.
    pub retries: u64,
}

impl RunResult {
    /// Write amplification: host-to-SSD write bytes over application write
    /// bytes (Table 2).
    pub fn write_amplification(&self) -> f64 {
        if self.app_write_bytes == 0 {
            return 0.0;
        }
        self.traffic.host_write_bytes() as f64 / self.app_write_bytes as f64
    }

    /// Read amplification: host-from-SSD read bytes over application read
    /// bytes (Table 2).
    pub fn read_amplification(&self) -> f64 {
        if self.app_read_bytes == 0 {
            return 0.0;
        }
        self.traffic.host_read_bytes() as f64 / self.app_read_bytes as f64
    }

    /// Flash bytes written (including firmware-internal writes), Figures 10/11.
    pub fn flash_write_bytes(&self) -> u64 {
        self.traffic.flash_write_bytes(self.page_size)
    }

    /// Flash bytes read (including firmware-internal reads), Figures 10/11.
    pub fn flash_read_bytes(&self) -> u64 {
        self.traffic.flash_read_bytes(self.page_size)
    }

    /// Host metadata write bytes (Figures 8/9 stacked bars).
    pub fn metadata_write_bytes(&self) -> u64 {
        self.traffic.host_metadata_bytes(Direction::Write)
    }

    /// Host data write bytes.
    pub fn data_write_bytes(&self) -> u64 {
        self.traffic.host_data_bytes(Direction::Write)
    }
}

/// Builds a fresh file system of `kind` and runs `workload` on it.
///
/// # Errors
///
/// Propagates file-system errors from the workload.
pub fn run_workload(
    kind: FsKind,
    cfg: MssdConfig,
    workload: &dyn Workload,
    seed: u64,
) -> FsResult<RunResult> {
    let (device, fs) = kind.build(cfg);
    run_on(&device, fs.as_ref(), workload, seed)
}

/// Runs `workload` on an already-constructed file system (used by the
/// sensitivity studies that need custom device configurations).
///
/// # Errors
///
/// Propagates file-system errors from the workload.
pub fn run_on(
    device: &Arc<Mssd>,
    fs: &dyn FileSystem,
    workload: &dyn Workload,
    seed: u64,
) -> FsResult<RunResult> {
    let mut rng = SmallRng::seed_from_u64(seed);
    workload.setup(fs, &mut rng)?;
    // Cold caches at the start of the measured phase, as the paper's runs
    // (fresh mounts of multi-GB file sets) imply.
    fs.drop_caches();

    let clock = device.clock();
    let before_traffic = device.traffic();
    let start_ns = clock.now_ns();
    let mut rec = Recorder::new();
    workload.run(fs, &mut rng, &mut rec)?;
    let elapsed_ns = clock.now_ns().saturating_sub(start_ns).max(1);
    let traffic = device.traffic().delta_since(&before_traffic);

    let ops = rec.ops;
    Ok(RunResult {
        fs: fs.name().to_string(),
        workload: workload.name(),
        ops,
        elapsed_ns,
        kops_per_sec: ops as f64 / (elapsed_ns as f64 / 1e9) / 1e3,
        read: rec.read_stats(),
        write: rec.write_stats(),
        meta: rec.meta_stats(),
        queue: rec.queue_stats(),
        traffic,
        app_read_bytes: rec.app_read_bytes,
        app_write_bytes: rec.app_write_bytes,
        page_size: device.page_size(),
        flush_errors: rec.flush_errors,
        retries: rec.retries,
    })
}

/// Latency/byte statistics of one thread of a concurrent run.
#[derive(Debug, Clone)]
pub struct ThreadResult {
    /// Thread (shard) index.
    pub thread: usize,
    /// Operations this thread executed.
    pub ops: u64,
    /// Read-operation latency statistics.
    pub read: LatencyStats,
    /// Write-operation latency statistics.
    pub write: LatencyStats,
    /// Metadata-operation latency statistics.
    pub meta: LatencyStats,
    /// Latency statistics of this shard's device-queue completions.
    pub queue: LatencyStats,
    /// Bytes this thread asked to read.
    pub app_read_bytes: u64,
    /// Bytes this thread asked to write.
    pub app_write_bytes: u64,
    /// FLUSH durability barriers this thread lost (see
    /// [`Recorder::flush_errors`]).
    pub flush_errors: u64,
    /// Command retries this thread took (see [`Recorder::retries`]).
    pub retries: u64,
}

/// The outcome of one multi-threaded workload run.
#[derive(Debug, Clone)]
pub struct ConcurrentRunResult {
    /// Merged metrics over all threads; `traffic` is the device delta over
    /// the whole measured phase (snapshotted once, not per thread).
    pub aggregate: RunResult,
    /// Per-client slices of the aggregate (one per shard; for the threaded
    /// driver clients and threads coincide).
    pub per_thread: Vec<ThreadResult>,
    /// Number of OS worker threads driving the run. For
    /// [`run_concurrent_async`] this is the executor's worker count — many
    /// logical clients multiplex over it.
    pub threads: usize,
    /// Number of logical clients (shards) the op stream was partitioned
    /// into. Equals `threads` for [`run_concurrent`].
    pub clients: usize,
    /// Wall-clock (host) time of the measured phase in nanoseconds — the
    /// number that shows whether the file system's locking scales. Virtual
    /// time lives in `aggregate.elapsed_ns` as usual.
    pub wall_ns: u64,
}

impl ConcurrentRunResult {
    /// Wall-clock throughput in operations per second (the scaling metric of
    /// the `fs_scale` bench; virtual-time throughput is
    /// `aggregate.kops_per_sec`).
    pub fn wall_ops_per_sec(&self) -> f64 {
        self.aggregate.ops as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
}

/// The RNG seed thread `t` of a concurrent run derives from the run seed.
/// Public so differential tests can replay one shard's exact op stream
/// sequentially.
pub fn shard_seed(seed: u64, t: usize) -> u64 {
    seed ^ ((t as u64 + 1) << 32)
}

/// Issues one shard's end-of-phase FLUSH durability barrier through `queue`
/// as a batched doorbell, draining every completion into `rec`.
///
/// Bounded recovery, never a panic and never a silent drop:
///
/// * a full SQ gets one drain-and-resubmit;
/// * a barrier completion carrying a *transient* error status (hang-timeout
///   abort, uncorrectable-read retry) is resubmitted up to
///   [`RetryPolicy::max_retries`] times, each retry preceded by the
///   policy's seeded backoff charged to the **virtual** clock (the old
///   driver resubmitted immediately — a busy spin that devolves to
///   live-lock under a persisting transient) and counted in
///   [`Recorder::retries`];
/// * everything else — the device refusing the command even after a drain,
///   a persistent error status, retry exhaustion, or no completion at all
///   (a power cut or lane wedge left it unresolvable) — is counted in
///   [`Recorder::flush_errors`], which the driver propagates into
///   [`RunResult::flush_errors`]. The old driver `expect`ed the resubmit
///   and swallowed lost barriers, reporting a durability guarantee it no
///   longer had.
pub fn flush_barrier(
    queue: &mut HostQueue,
    rec: &mut Recorder,
    clock: &Clock,
    policy: &RetryPolicy,
) {
    let mut id = match queue.submit(Command::Flush) {
        Ok(id) => id,
        Err(_) => {
            queue.ring_doorbell();
            while let Some(c) = queue.poll() {
                rec.record_queue_completion(c.latency_ns);
            }
            match queue.submit(Command::Flush) {
                Ok(id) => id,
                Err(_) => {
                    // Even a doorbell could not drain the SQ: power is off
                    // and the barrier can never be accepted.
                    rec.flush_errors += 1;
                    return;
                }
            }
        }
    };
    let key = u64::from(queue.id());
    let mut attempt = 0u32;
    loop {
        queue.ring_doorbell();
        let mut barrier_status = None;
        while let Some(c) = queue.poll() {
            rec.record_queue_completion(c.latency_ns);
            if c.id == id {
                barrier_status = Some(c.status);
            }
        }
        match barrier_status {
            Some(Ok(())) => return,
            Some(Err(ref e)) if e.is_transient() && attempt < policy.max_retries => {
                clock.advance(policy.backoff_ns(key, attempt));
                attempt += 1;
                rec.retries += 1;
                match queue.submit(Command::Flush) {
                    Ok(new_id) => id = new_id,
                    Err(_) => {
                        rec.flush_errors += 1;
                        return;
                    }
                }
            }
            Some(Err(_)) | None => {
                rec.flush_errors += 1;
                return;
            }
        }
    }
}

/// Runs `workload` over one shared file system from `threads` worker threads:
/// the setup phase runs once (single-threaded), then each thread executes one
/// shard of the measured op stream via [`Workload::run_shard`].
///
/// Each shard drives **one device queue**: the thread opens a
/// submission/completion queue pair on the shared device, makes it the
/// thread's ambient queue (so the shard's file-system device calls are
/// attributed to that queue's accounting slot), and closes the measured
/// phase by issuing the shard's FLUSH barrier through it as a batched
/// doorbell.
///
/// Device traffic is snapshotted exactly **once** around the measured phase
/// and attached to the aggregate result; merging per-thread snapshots would
/// count the shared device's traffic once per thread. Per-thread recorders
/// carry latencies, application byte counts and the shard's drained queue
/// completions — all of which partition cleanly across threads and merge
/// via [`Recorder::merge`]; the driver never re-reads the device's
/// per-queue counters per thread.
///
/// # Errors
///
/// Propagates the first file-system error any thread hit.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
pub fn run_concurrent(
    device: &Arc<Mssd>,
    fs: &Arc<dyn FileSystem>,
    workload: &(dyn Workload + Sync),
    threads: usize,
    seed: u64,
) -> FsResult<ConcurrentRunResult> {
    assert!(threads > 0, "need at least one worker thread");
    let mut rng = SmallRng::seed_from_u64(seed);
    workload.setup(fs.as_ref(), &mut rng)?;
    fs.drop_caches();

    let clock = device.clock();
    let before_traffic = device.traffic();
    let start_ns = clock.now_ns();
    let wall_start = std::time::Instant::now();
    let outcomes: Vec<FsResult<Recorder>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let fs = Arc::clone(fs);
                let device = Arc::clone(device);
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(shard_seed(seed, t));
                    let mut rec = Recorder::new();
                    // Attribute this shard's trace events to tenant `t` for
                    // the thread's lifetime (no-op while tracing is off).
                    let _tenant = mssd::CtxScope::enter(mssd::trace::ctx().with_tenant(t as u16));
                    // One queue per shard; ambient while the shard runs.
                    let mut queue = device.open_queue(16);
                    let ambient = queue.make_ambient();
                    workload.run_shard(fs.as_ref(), t, threads, &mut rng, &mut rec)?;
                    drop(ambient);
                    // One retry schedule for the whole run, seeded by the
                    // run seed — the same policy the async driver hands to
                    // the reactor.
                    let policy = RetryPolicy::default().with_seed(seed);
                    flush_barrier(&mut queue, &mut rec, &device.clock(), &policy);
                    Ok(rec)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("workload thread panicked")).collect()
    });
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let elapsed_ns = clock.now_ns().saturating_sub(start_ns).max(1);
    // One traffic snapshot for the whole run (see the doc comment).
    let traffic = device.traffic().delta_since(&before_traffic);

    merge_outcomes(device, fs, workload, outcomes, threads, threads, elapsed_ns, wall_ns, traffic)
}

/// Merges per-shard recorder outcomes into a [`ConcurrentRunResult`]
/// (shared tail of [`run_concurrent`] and [`run_concurrent_async`]).
#[allow(clippy::too_many_arguments)]
fn merge_outcomes(
    device: &Arc<Mssd>,
    fs: &Arc<dyn FileSystem>,
    workload: &dyn Workload,
    outcomes: Vec<FsResult<Recorder>>,
    threads: usize,
    clients: usize,
    elapsed_ns: u64,
    wall_ns: u64,
    traffic: TrafficCounter,
) -> FsResult<ConcurrentRunResult> {
    let mut merged = Recorder::new();
    let mut per_thread = Vec::with_capacity(outcomes.len());
    for (t, outcome) in outcomes.into_iter().enumerate() {
        let rec = outcome?;
        per_thread.push(ThreadResult {
            thread: t,
            ops: rec.ops,
            read: rec.read_stats(),
            write: rec.write_stats(),
            meta: rec.meta_stats(),
            queue: rec.queue_stats(),
            app_read_bytes: rec.app_read_bytes,
            app_write_bytes: rec.app_write_bytes,
            flush_errors: rec.flush_errors,
            retries: rec.retries,
        });
        merged.merge(rec);
    }

    let ops = merged.ops;
    let aggregate = RunResult {
        fs: fs.name().to_string(),
        workload: workload.name(),
        ops,
        elapsed_ns,
        kops_per_sec: ops as f64 / (elapsed_ns as f64 / 1e9) / 1e3,
        read: merged.read_stats(),
        write: merged.write_stats(),
        meta: merged.meta_stats(),
        queue: merged.queue_stats(),
        traffic,
        app_read_bytes: merged.app_read_bytes,
        app_write_bytes: merged.app_write_bytes,
        page_size: device.page_size(),
        flush_errors: merged.flush_errors,
        retries: merged.retries,
    };
    Ok(ConcurrentRunResult { aggregate, per_thread, threads, clients, wall_ns })
}

/// SQ depth of each reactor lane the async driver opens. Deeper than the
/// threaded driver's per-shard queues: many clients share one lane, and a
/// deep SQ maximizes doorbell coalescing while the executor runs tasks.
const ASYNC_LANE_DEPTH: usize = 64;

/// Runs `workload` over one shared file system from `clients` *logical*
/// clients multiplexed over `workers` OS threads — the async twin of
/// [`run_concurrent`], where the shard count and the thread count decouple.
///
/// Each client is one spawned future: it drives its shard through
/// [`Workload::run_shard_async`] over an [`AsyncFs`] view, then closes its
/// measured phase with a FLUSH durability barrier awaited through its
/// [`mssd::Reactor`] lane. A lost or failed barrier is counted in the
/// result's `flush_errors` exactly like the threaded driver's. Clients
/// share `min(clients, 8)` reactor lanes; file-system device calls run
/// inline on worker threads (attributed to the sync-shim accounting slot),
/// while the barriers travel the lanes' queues.
///
/// `workers == 0` runs everything deterministically on the calling thread.
///
/// # Errors
///
/// Propagates the first file-system error any client hit.
///
/// # Panics
///
/// Panics if `clients` is zero.
pub fn run_concurrent_async(
    device: &Arc<Mssd>,
    fs: &Arc<dyn FileSystem>,
    workload: &Arc<dyn Workload>,
    clients: usize,
    workers: usize,
    seed: u64,
) -> FsResult<ConcurrentRunResult> {
    assert!(clients > 0, "need at least one client");
    let mut rng = SmallRng::seed_from_u64(seed);
    workload.setup(fs.as_ref(), &mut rng)?;
    fs.drop_caches();

    let rt = Runtime::new(device, workers, clients.min(8), ASYNC_LANE_DEPTH);
    let afs = Arc::new(AsyncFs::new(Arc::clone(fs)));

    let clock = device.clock();
    let before_traffic = device.traffic();
    let start_ns = clock.now_ns();
    let wall_start = std::time::Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let workload = Arc::clone(workload);
            let afs = Arc::clone(&afs);
            let reactor = Arc::clone(rt.reactor());
            rt.spawn(async move {
                let mut rng = SmallRng::seed_from_u64(shard_seed(seed, c));
                let mut rec = Recorder::new();
                workload.run_shard_async(afs.as_ref(), c, clients, &mut rng, &mut rec).await?;
                // The client's end-of-phase FLUSH barrier, awaited through
                // the reactor's retry wrapper: the same [`RetryPolicy`] as
                // the threaded driver's [`flush_barrier`], with lane
                // re-routing around quarantined lanes per attempt. Every
                // unresolvable failure (power cut, persistent status, retry
                // exhaustion) is counted — the reactor resolves lost and
                // wedged barriers as typed outcomes instead of hanging.
                let policy = RetryPolicy::default().with_seed(seed);
                let (out, retries) = reactor.submit_with_retry(c, Command::Flush, policy).await;
                rec.retries += u64::from(retries);
                match out {
                    Ok(comp) => {
                        rec.record_queue_completion(comp.latency_ns);
                        if comp.status.is_err() {
                            rec.flush_errors += 1;
                        }
                    }
                    Err(_) => {
                        rec.flush_errors += 1;
                    }
                }
                Ok(rec)
            })
        })
        .collect();
    let outcomes: Vec<FsResult<Recorder>> = rt.block_on(async move {
        let mut v = Vec::with_capacity(handles.len());
        for h in handles {
            v.push(h.await);
        }
        v
    });
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let elapsed_ns = clock.now_ns().saturating_sub(start_ns).max(1);
    let traffic = device.traffic().delta_since(&before_traffic);

    merge_outcomes(
        device,
        fs,
        workload.as_ref(),
        outcomes,
        workers,
        clients,
        elapsed_ns,
        wall_ns,
        traffic,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filebench::{Filebench, Personality};
    use crate::micro::{Micro, MicroOp};
    use crate::spec::Scale;
    use mssd::stats::Category;
    use mssd::{DramMode, FaultPlan};

    fn byte_write(addr: u64) -> Command {
        Command::ByteWrite { addr, data: vec![0xEE; 64], txid: None, cat: Category::Data }
    }

    #[test]
    fn flush_barrier_succeeds_on_a_healthy_queue() {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        let mut q = dev.open_queue(4);
        q.submit(byte_write(0)).unwrap();
        let mut rec = Recorder::new();
        flush_barrier(&mut q, &mut rec, &dev.clock(), &RetryPolicy::default());
        assert_eq!(rec.flush_errors, 0);
        // The barrier's doorbell drained the pending write and the FLUSH.
        assert_eq!(rec.queue_stats().count, 2);
    }

    #[test]
    fn flush_barrier_drains_a_full_queue_once_and_retries() {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        let mut q = dev.open_queue(1);
        q.submit(byte_write(0)).unwrap(); // SQ is now at depth
        let mut rec = Recorder::new();
        flush_barrier(&mut q, &mut rec, &dev.clock(), &RetryPolicy::default());
        assert_eq!(rec.flush_errors, 0);
        assert_eq!(rec.queue_stats().count, 2, "drained write, then the barrier itself");
    }

    #[test]
    fn flush_barrier_counts_a_power_cut_instead_of_dropping_the_barrier() {
        // Power fails inside the write group ahead of the barrier: the FLUSH
        // strands in the SQ and no completion ever arrives. The old driver
        // returned silently here, reporting durability it no longer had.
        let cfg = MssdConfig::small_test().with_fault_plan(FaultPlan::cut_at(1));
        let dev = Mssd::new(cfg, DramMode::WriteLog);
        let mut q = dev.open_queue(4);
        q.submit(byte_write(0)).unwrap();
        let mut rec = Recorder::new();
        flush_barrier(&mut q, &mut rec, &dev.clock(), &RetryPolicy::default());
        assert!(dev.fault_tripped());
        assert_eq!(rec.flush_errors, 1, "the lost barrier must be counted");
        assert_eq!(rec.queue_stats().count, 0, "nothing completed after the cut");
    }

    #[test]
    fn flush_barrier_counts_a_cut_that_jams_the_submission_queue() {
        // Depth-1 SQ jammed by a write the cut strands: even the bounded
        // drain cannot make room for the barrier.
        let cfg = MssdConfig::small_test().with_fault_plan(FaultPlan::cut_at(1));
        let dev = Mssd::new(cfg, DramMode::WriteLog);
        let mut q = dev.open_queue(1);
        q.submit(byte_write(0)).unwrap();
        q.ring_doorbell(); // trips the fault; the write is consumed in doubt
        q.submit(byte_write(4096)).unwrap(); // re-jams the now-dead queue
        let mut rec = Recorder::new();
        flush_barrier(&mut q, &mut rec, &dev.clock(), &RetryPolicy::default());
        assert_eq!(rec.flush_errors, 1);
    }

    #[test]
    fn run_result_metrics_are_consistent() {
        let w = Micro::new(MicroOp::Create, Scale::tiny());
        let r = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &w, 42).unwrap();
        assert_eq!(r.fs, "bytefs");
        assert_eq!(r.workload, "create");
        assert!(r.kops_per_sec > 0.0);
        assert!(r.write_amplification() > 0.0);
        assert!(r.metadata_write_bytes() > 0);
        assert_eq!(r.traffic.host_write_bytes(), r.metadata_write_bytes() + r.data_write_bytes());
    }

    #[test]
    fn same_seed_gives_identical_virtual_timing() {
        let w = Filebench::new(Personality::Varmail, Scale::tiny());
        let a = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &w, 9).unwrap();
        let b = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &w, 9).unwrap();
        assert_eq!(a.elapsed_ns, b.elapsed_ns, "simulation must be deterministic");
        assert_eq!(a.traffic.host_write_bytes(), b.traffic.host_write_bytes());
    }

    #[test]
    fn concurrent_run_matches_sequential_work() {
        let w = Micro::new(MicroOp::Create, Scale::tiny());
        let (dev, fs) = FsKind::ByteFs.build(MssdConfig::small_test());
        let c = run_concurrent(&dev, &fs, &w, 4, 11).unwrap();
        assert_eq!(c.threads, 4);
        assert_eq!(c.per_thread.len(), 4);
        // Every object is created exactly once across the four shards, plus
        // one final sync per shard.
        let objects = w.objects as u64;
        assert_eq!(c.aggregate.ops, objects + 4);
        let shard_ops: u64 = c.per_thread.iter().map(|t| t.ops).sum();
        assert_eq!(shard_ops, c.aggregate.ops, "per-thread slices partition the aggregate");
        assert!(c.wall_ns > 0);
        assert!(c.wall_ops_per_sec() > 0.0);
        // The single-shard run is byte-for-byte the old sequential driver.
        let seq = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &w, 11).unwrap();
        assert_eq!(seq.ops, objects + 1);
    }

    #[test]
    fn concurrent_traffic_is_snapshotted_once_not_per_thread() {
        // Regression test: merging per-thread recorders must not multiply the
        // shared device's traffic. The aggregate's traffic delta has to equal
        // the device-side growth over the measured phase exactly.
        let w = Micro::new(MicroOp::Create, Scale::tiny());
        let (dev, fs) = FsKind::ByteFs.build(MssdConfig::small_test());
        let before_all = dev.traffic();
        let c = run_concurrent(&dev, &fs, &w, 4, 5).unwrap();
        let total_growth = dev.traffic().delta_since(&before_all);
        assert!(
            c.aggregate.traffic.host_write_bytes() <= total_growth.host_write_bytes(),
            "measured-phase traffic cannot exceed the whole run's traffic"
        );
        assert!(c.aggregate.traffic.host_write_bytes() > 0);
        // The application wrote each object's payload exactly once; if the
        // driver multiplied the traffic by the thread count, amplification
        // would be ~4x the sequential run's.
        let seq = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &w, 5).unwrap();
        let seq_wa = seq.write_amplification();
        let conc_wa = c.aggregate.write_amplification();
        assert!(
            conc_wa < seq_wa * 2.0,
            "concurrent WA {conc_wa:.2} vs sequential {seq_wa:.2}: traffic was double-counted"
        );
    }

    #[test]
    fn concurrent_run_drives_one_queue_per_shard() {
        let w = Micro::new(MicroOp::Create, Scale::tiny());
        let (dev, fs) = FsKind::ByteFs.build(MssdConfig::small_test());
        let c = run_concurrent(&dev, &fs, &w, 3, 13).unwrap();
        // Every shard drained exactly its own FLUSH completion; the
        // aggregate gets them via Recorder::merge, never by re-reading the
        // device's per-queue counters per thread.
        assert_eq!(c.aggregate.queue.count, 3);
        for t in &c.per_thread {
            assert_eq!(t.queue.count, 1, "shard {} drains its own queue", t.thread);
        }
        // Ambient attribution: the shards' device traffic lands on queue
        // slots other than the sync-shim slot 0.
        let queued_ops: u64 =
            c.aggregate.traffic.queues.iter().filter(|(id, _)| **id != 0).map(|(_, q)| q.ops).sum();
        assert!(queued_ops >= 3, "per-shard queues saw {queued_ops} ops");
    }

    #[test]
    fn concurrent_filebench_partitions_cleanly() {
        for p in [Personality::Varmail, Personality::Fileserver, Personality::Webserver] {
            let w = Filebench::new(p, Scale::tiny());
            let (dev, fs) = FsKind::ByteFs.build(MssdConfig::small_test());
            let c = run_concurrent(&dev, &fs, &w, 3, 7).unwrap();
            assert!(c.aggregate.ops > 0, "{p:?}");
            assert!(
                c.per_thread.iter().filter(|t| t.ops > 0).count() >= 2,
                "{p:?}: work lands on several shards"
            );
        }
    }

    #[test]
    fn default_run_shard_runs_everything_on_shard_zero() {
        struct Probe;
        impl crate::Workload for Probe {
            fn name(&self) -> String {
                "probe".into()
            }
            fn setup(&self, _fs: &dyn FileSystem, _rng: &mut SmallRng) -> FsResult<()> {
                Ok(())
            }
            fn run(
                &self,
                fs: &dyn FileSystem,
                _rng: &mut SmallRng,
                rec: &mut Recorder,
            ) -> FsResult<()> {
                let clock = fs.clock();
                let sw = rec.start(&clock);
                rec.finish(&clock, sw, crate::OpClass::Meta, 0);
                Ok(())
            }
        }
        let (dev, fs) = FsKind::ByteFs.build(MssdConfig::small_test());
        let c = run_concurrent(&dev, &fs, &Probe, 4, 1).unwrap();
        assert_eq!(c.aggregate.ops, 1, "unpartitioned workloads fall back to shard 0");
        assert_eq!(c.per_thread[0].ops, 1);
        assert!(c.per_thread[1..].iter().all(|t| t.ops == 0));
    }

    #[test]
    fn async_run_multiplexes_clients_over_few_workers() {
        let w = Micro::new(MicroOp::Create, Scale::tiny());
        let objects = w.objects as u64;
        let w: Arc<dyn Workload> = Arc::new(w);
        let (dev, fs) = FsKind::ByteFs.build(MssdConfig::small_test());
        let c = run_concurrent_async(&dev, &fs, &w, 6, 2, 11).unwrap();
        assert_eq!(c.clients, 6);
        assert_eq!(c.threads, 2, "six clients ran over two worker threads");
        assert_eq!(c.per_thread.len(), 6, "one result slice per logical client");
        // Every object is created exactly once across the six shards, plus
        // one final sync per shard — identical logical work to the threaded
        // driver and the sequential run.
        assert_eq!(c.aggregate.ops, objects + 6);
        assert_eq!(c.aggregate.flush_errors, 0);
        assert_eq!(c.aggregate.queue.count, 6, "one FLUSH barrier per client, via the reactor");
        let shard_ops: u64 = c.per_thread.iter().map(|t| t.ops).sum();
        assert_eq!(shard_ops, c.aggregate.ops);
        assert!(c.aggregate.traffic.host_write_bytes() > 0);
    }

    #[test]
    fn async_run_is_deterministic_with_zero_workers() {
        // workers == 0 drives every client future from the calling thread:
        // two runs must agree on the virtual clock exactly.
        let w: Arc<dyn Workload> = Arc::new(Micro::new(MicroOp::Create, Scale::tiny()));
        let run = || {
            let (dev, fs) = FsKind::ByteFs.build(MssdConfig::small_test());
            run_concurrent_async(&dev, &fs, &w, 4, 0, 9).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.aggregate.ops, b.aggregate.ops);
        assert_eq!(a.aggregate.elapsed_ns, b.aggregate.elapsed_ns);
        assert_eq!(a.aggregate.traffic.host_write_bytes(), b.aggregate.traffic.host_write_bytes());
    }

    #[test]
    fn default_async_shard_falls_back_to_the_sync_body() {
        struct Probe;
        impl crate::Workload for Probe {
            fn name(&self) -> String {
                "probe".into()
            }
            fn setup(&self, _fs: &dyn FileSystem, _rng: &mut SmallRng) -> FsResult<()> {
                Ok(())
            }
            fn run(
                &self,
                fs: &dyn FileSystem,
                _rng: &mut SmallRng,
                rec: &mut Recorder,
            ) -> FsResult<()> {
                let clock = fs.clock();
                let sw = rec.start(&clock);
                rec.finish(&clock, sw, crate::OpClass::Meta, 0);
                Ok(())
            }
        }
        let (dev, fs) = FsKind::ByteFs.build(MssdConfig::small_test());
        let w: Arc<dyn Workload> = Arc::new(Probe);
        let c = run_concurrent_async(&dev, &fs, &w, 3, 0, 1).unwrap();
        assert_eq!(c.aggregate.ops, 1, "unpartitioned workloads fall back to shard 0");
        assert_eq!(c.per_thread[0].ops, 1);
        assert_eq!(c.aggregate.queue.count, 3, "every client still issues its barrier");
    }

    #[test]
    fn async_barrier_retries_through_the_shared_policy_after_a_hang() {
        use mssd::{HangFaultConfig, HangFaultPlan};
        // Only explicit doorbells draw hang ordinals (the sync shim the
        // file-system ops ride bypasses them), so with one client the FLUSH
        // barrier is lane-group ordinal 1: force its completion lost and
        // the reactor must time out, abort and retry it — backed off on the
        // virtual clock, counted in the result, with full durability.
        let w: Arc<dyn Workload> = Arc::new(Micro::new(MicroOp::Create, Scale::tiny()));
        let cfg =
            MssdConfig::small_test().with_hang_fault_plan(HangFaultPlan::new(HangFaultConfig {
                seed: 7,
                hang_loss_at: 1,
                ..Default::default()
            }));
        let (dev, fs) = FsKind::ByteFs.build(cfg);
        let c = run_concurrent_async(&dev, &fs, &w, 1, 0, 3).unwrap();
        assert_eq!(c.aggregate.flush_errors, 0, "the retried barrier succeeded");
        assert_eq!(c.aggregate.retries, 1, "exactly one retry, surfaced in the result");
        assert_eq!(c.per_thread[0].retries, 1);
        let t = dev.traffic();
        assert_eq!(t.hang_timeouts, 1);
        assert_eq!(t.aborts, 1);
        assert_eq!(t.retries, 1, "the reactor's RAS counter agrees with the recorder");
        // Same logical work as a fault-free run.
        let clean: Arc<dyn Workload> = Arc::new(Micro::new(MicroOp::Create, Scale::tiny()));
        let (dev2, fs2) = FsKind::ByteFs.build(MssdConfig::small_test());
        let c2 = run_concurrent_async(&dev2, &fs2, &clean, 1, 0, 3).unwrap();
        assert_eq!(c.aggregate.ops, c2.aggregate.ops);
    }

    #[test]
    fn ext4_has_higher_write_amplification_than_bytefs_on_varmail() {
        let w = Filebench::new(Personality::Varmail, Scale::tiny());
        let bytefs = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &w, 1).unwrap();
        let ext4 = run_workload(FsKind::Ext4, MssdConfig::small_test(), &w, 1).unwrap();
        assert!(
            ext4.write_amplification() > bytefs.write_amplification(),
            "ext4 {:.2}x vs bytefs {:.2}x",
            ext4.write_amplification(),
            bytefs.write_amplification()
        );
    }
}
