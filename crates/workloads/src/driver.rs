//! Running a workload against a file system and collecting the paper's
//! metrics.

use std::sync::Arc;

use fskit::{FileSystem, FsResult};
use mssd::stats::{Direction, TrafficCounter};
use mssd::{Mssd, MssdConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::fsfactory::FsKind;
use crate::metrics::{LatencyStats, Recorder};
use crate::Workload;

/// The outcome of one workload run on one file system.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// File-system label.
    pub fs: String,
    /// Workload label.
    pub workload: String,
    /// Measured operations.
    pub ops: u64,
    /// Virtual time the measured phase took.
    pub elapsed_ns: u64,
    /// Throughput in thousands of operations per second.
    pub kops_per_sec: f64,
    /// Read-operation latency statistics.
    pub read: LatencyStats,
    /// Write-operation latency statistics.
    pub write: LatencyStats,
    /// Metadata-operation latency statistics.
    pub meta: LatencyStats,
    /// Device traffic during the measured phase.
    pub traffic: TrafficCounter,
    /// Bytes the application asked to read.
    pub app_read_bytes: u64,
    /// Bytes the application asked to write.
    pub app_write_bytes: u64,
    /// Device page size (for flash-byte conversions).
    pub page_size: usize,
}

impl RunResult {
    /// Write amplification: host-to-SSD write bytes over application write
    /// bytes (Table 2).
    pub fn write_amplification(&self) -> f64 {
        if self.app_write_bytes == 0 {
            return 0.0;
        }
        self.traffic.host_write_bytes() as f64 / self.app_write_bytes as f64
    }

    /// Read amplification: host-from-SSD read bytes over application read
    /// bytes (Table 2).
    pub fn read_amplification(&self) -> f64 {
        if self.app_read_bytes == 0 {
            return 0.0;
        }
        self.traffic.host_read_bytes() as f64 / self.app_read_bytes as f64
    }

    /// Flash bytes written (including firmware-internal writes), Figures 10/11.
    pub fn flash_write_bytes(&self) -> u64 {
        self.traffic.flash_write_bytes(self.page_size)
    }

    /// Flash bytes read (including firmware-internal reads), Figures 10/11.
    pub fn flash_read_bytes(&self) -> u64 {
        self.traffic.flash_read_bytes(self.page_size)
    }

    /// Host metadata write bytes (Figures 8/9 stacked bars).
    pub fn metadata_write_bytes(&self) -> u64 {
        self.traffic.host_metadata_bytes(Direction::Write)
    }

    /// Host data write bytes.
    pub fn data_write_bytes(&self) -> u64 {
        self.traffic.host_data_bytes(Direction::Write)
    }
}

/// Builds a fresh file system of `kind` and runs `workload` on it.
///
/// # Errors
///
/// Propagates file-system errors from the workload.
pub fn run_workload(
    kind: FsKind,
    cfg: MssdConfig,
    workload: &dyn Workload,
    seed: u64,
) -> FsResult<RunResult> {
    let (device, fs) = kind.build(cfg);
    run_on(&device, fs.as_ref(), workload, seed)
}

/// Runs `workload` on an already-constructed file system (used by the
/// sensitivity studies that need custom device configurations).
///
/// # Errors
///
/// Propagates file-system errors from the workload.
pub fn run_on(
    device: &Arc<Mssd>,
    fs: &dyn FileSystem,
    workload: &dyn Workload,
    seed: u64,
) -> FsResult<RunResult> {
    let mut rng = SmallRng::seed_from_u64(seed);
    workload.setup(fs, &mut rng)?;
    // Cold caches at the start of the measured phase, as the paper's runs
    // (fresh mounts of multi-GB file sets) imply.
    fs.drop_caches();

    let clock = device.clock();
    let before_traffic = device.traffic();
    let start_ns = clock.now_ns();
    let mut rec = Recorder::new();
    workload.run(fs, &mut rng, &mut rec)?;
    let elapsed_ns = clock.now_ns().saturating_sub(start_ns).max(1);
    let traffic = device.traffic().delta_since(&before_traffic);

    let ops = rec.ops;
    Ok(RunResult {
        fs: fs.name().to_string(),
        workload: workload.name(),
        ops,
        elapsed_ns,
        kops_per_sec: ops as f64 / (elapsed_ns as f64 / 1e9) / 1e3,
        read: rec.read_stats(),
        write: rec.write_stats(),
        meta: rec.meta_stats(),
        traffic,
        app_read_bytes: rec.app_read_bytes,
        app_write_bytes: rec.app_write_bytes,
        page_size: device.page_size(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filebench::{Filebench, Personality};
    use crate::micro::{Micro, MicroOp};
    use crate::spec::Scale;

    #[test]
    fn run_result_metrics_are_consistent() {
        let w = Micro::new(MicroOp::Create, Scale::tiny());
        let r = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &w, 42).unwrap();
        assert_eq!(r.fs, "bytefs");
        assert_eq!(r.workload, "create");
        assert!(r.kops_per_sec > 0.0);
        assert!(r.write_amplification() > 0.0);
        assert!(r.metadata_write_bytes() > 0);
        assert_eq!(
            r.traffic.host_write_bytes(),
            r.metadata_write_bytes() + r.data_write_bytes()
        );
    }

    #[test]
    fn same_seed_gives_identical_virtual_timing() {
        let w = Filebench::new(Personality::Varmail, Scale::tiny());
        let a = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &w, 9).unwrap();
        let b = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &w, 9).unwrap();
        assert_eq!(a.elapsed_ns, b.elapsed_ns, "simulation must be deterministic");
        assert_eq!(a.traffic.host_write_bytes(), b.traffic.host_write_bytes());
    }

    #[test]
    fn ext4_has_higher_write_amplification_than_bytefs_on_varmail() {
        let w = Filebench::new(Personality::Varmail, Scale::tiny());
        let bytefs = run_workload(FsKind::ByteFs, MssdConfig::small_test(), &w, 1).unwrap();
        let ext4 = run_workload(FsKind::Ext4, MssdConfig::small_test(), &w, 1).unwrap();
        assert!(
            ext4.write_amplification() > bytefs.write_amplification(),
            "ext4 {:.2}x vs bytefs {:.2}x",
            ext4.write_amplification(),
            bytefs.write_amplification()
        );
    }
}
