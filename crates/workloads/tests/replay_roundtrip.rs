//! Property tests for the record→export→parse→replay pipeline: a random op
//! stream recorded on ByteFS must survive both serialization formats
//! unchanged, and an exact-speed replay of the parsed trace must reproduce
//! the recorded run — same op sequence (checked by re-recording the replay)
//! and bit-identical remounted device image.

use mssd::MssdConfig;
use proptest::prelude::*;
use workloads::replay::{record_workload, replay_on, RecordingFs, TraceMeta, FS_TRACE_SCHEMA};
use workloads::{FsKind, OpTrace, Recorder, ReplayConfig, ReplaySpeed, Workload};

/// One step of the random workload, phrased over a small universe of file
/// slots so streams alias (overwrites, re-creates, unlinks of live files).
#[derive(Debug, Clone)]
enum SimOp {
    Create { slot: u8 },
    Write { slot: u8, offset: u16, tag: u8, len: u16 },
    Append { slot: u8, tag: u8, len: u16 },
    Fsync { slot: u8 },
    Truncate { slot: u8, size: u16 },
    Read { slot: u8, offset: u16, len: u16 },
    Unlink { slot: u8 },
    Rename { from: u8, to: u8 },
    Mkdir { slot: u8 },
    Tenant { t: u8 },
    Sync,
}

fn sim_op_strategy() -> impl Strategy<Value = SimOp> {
    // The vendored proptest has no weighted prop_oneof; weight by
    // duplicating arms, like mssd's equivalence suites do.
    prop_oneof![
        any::<u8>().prop_map(|slot| SimOp::Create { slot }),
        any::<u8>().prop_map(|slot| SimOp::Create { slot }),
        (any::<u8>(), any::<u16>(), any::<u8>(), any::<u16>())
            .prop_map(|(slot, offset, tag, len)| SimOp::Write { slot, offset, tag, len }),
        (any::<u8>(), any::<u16>(), any::<u8>(), any::<u16>())
            .prop_map(|(slot, offset, tag, len)| SimOp::Write { slot, offset, tag, len }),
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(slot, tag, len)| SimOp::Append {
            slot,
            tag,
            len
        }),
        any::<u8>().prop_map(|slot| SimOp::Fsync { slot }),
        any::<u8>().prop_map(|slot| SimOp::Fsync { slot }),
        (any::<u8>(), any::<u16>()).prop_map(|(slot, size)| SimOp::Truncate { slot, size }),
        (any::<u8>(), any::<u16>(), any::<u16>()).prop_map(|(slot, offset, len)| SimOp::Read {
            slot,
            offset,
            len
        }),
        any::<u8>().prop_map(|slot| SimOp::Unlink { slot }),
        (any::<u8>(), any::<u8>()).prop_map(|(from, to)| SimOp::Rename { from, to }),
        any::<u8>().prop_map(|slot| SimOp::Mkdir { slot }),
        any::<u8>().prop_map(|t| SimOp::Tenant { t }),
        Just(SimOp::Sync),
    ]
}

/// Replays the generated op list through the `Workload` trait. Ops address
/// files by slot; a slot's fd is kept open between ops and closed at the
/// end, failures are recorded and ignored (the trace captures them too).
struct SimWorkload {
    ops: Vec<SimOp>,
}

const SLOTS: usize = 6;

impl Workload for SimWorkload {
    fn name(&self) -> String {
        "sim".to_string()
    }

    fn setup(
        &self,
        fs: &dyn fskit::FileSystem,
        _rng: &mut rand::rngs::SmallRng,
    ) -> fskit::FsResult<()> {
        fs.mkdir("/sim")
    }

    fn run(
        &self,
        fs: &dyn fskit::FileSystem,
        _rng: &mut rand::rngs::SmallRng,
        _rec: &mut Recorder,
    ) -> fskit::FsResult<()> {
        let mut fds: [Option<fskit::Fd>; SLOTS] = [None; SLOTS];
        let mut scope = None;
        for op in &self.ops {
            match op {
                SimOp::Create { slot } => {
                    let s = *slot as usize % SLOTS;
                    if let Some(fd) = fds[s].take() {
                        fs.close(fd).ok();
                    }
                    fds[s] = fs.create(&format!("/sim/f{s}")).ok();
                }
                SimOp::Write { slot, offset, tag, len } => {
                    let s = *slot as usize % SLOTS;
                    if let Some(fd) = fds[s] {
                        let data = vec![*tag; 1 + (*len as usize % 700)];
                        fs.write(fd, u64::from(*offset % 2048), &data).ok();
                    }
                }
                SimOp::Append { slot, tag, len } => {
                    let s = *slot as usize % SLOTS;
                    if let Some(fd) = fds[s] {
                        // A ramp payload defeats the fill compression, so
                        // both payload encodings are exercised.
                        let n = 1 + (*len as usize % 300);
                        let data: Vec<u8> = (0..n).map(|i| tag.wrapping_add(i as u8)).collect();
                        fs.append(fd, &data).ok();
                    }
                }
                SimOp::Fsync { slot } => {
                    let s = *slot as usize % SLOTS;
                    if let Some(fd) = fds[s] {
                        fs.fsync(fd).ok();
                    }
                }
                SimOp::Truncate { slot, size } => {
                    let s = *slot as usize % SLOTS;
                    if let Some(fd) = fds[s] {
                        fs.truncate(fd, u64::from(*size % 4096)).ok();
                    }
                }
                SimOp::Read { slot, offset, len } => {
                    let s = *slot as usize % SLOTS;
                    if let Some(fd) = fds[s] {
                        fs.read(fd, u64::from(*offset % 2048), 1 + (*len as usize % 512)).ok();
                    }
                }
                SimOp::Unlink { slot } => {
                    let s = *slot as usize % SLOTS;
                    if let Some(fd) = fds[s].take() {
                        fs.close(fd).ok();
                    }
                    fs.unlink(&format!("/sim/f{s}")).ok();
                }
                SimOp::Rename { from, to } => {
                    let f = *from as usize % SLOTS;
                    let t = *to as usize % SLOTS;
                    if f == t {
                        continue;
                    }
                    if let Some(fd) = fds[f].take() {
                        fs.close(fd).ok();
                    }
                    if let Some(fd) = fds[t].take() {
                        fs.close(fd).ok();
                    }
                    fs.unlink(&format!("/sim/f{t}")).ok();
                    fs.rename(&format!("/sim/f{f}"), &format!("/sim/f{t}")).ok();
                }
                SimOp::Mkdir { slot } => {
                    fs.mkdir(&format!("/sim/d{}", *slot as usize % SLOTS)).ok();
                }
                SimOp::Tenant { t } => {
                    // Handles belong to the tenant stream that opened them
                    // (the threaded replayer partitions fd maps by tenant),
                    // so close everything before switching clients.
                    for fd in fds.iter_mut().filter_map(Option::take) {
                        fs.close(fd).ok();
                    }
                    // Re-entering replaces the scope; drop order restores
                    // the outer ctx only at run end, which is fine here.
                    scope = Some(mssd::CtxScope::enter(
                        mssd::trace::ctx().with_tenant(u16::from(*t % 4)),
                    ));
                }
                SimOp::Sync => {
                    fs.sync().ok();
                }
            }
        }
        // Close inside the final tenant scope — handles belong to the
        // stream that opened them.
        for fd in fds.into_iter().flatten() {
            fs.close(fd).ok();
        }
        drop(scope);
        Ok(())
    }
}

/// Strips the fields an exact replay legitimately changes (issue timestamps
/// shift because replay does not re-charge host CPU between ops) so op
/// streams can be compared structurally.
fn shape(trace: &OpTrace) -> Vec<(u64, u16, bool, workloads::OpKind)> {
    trace.records.iter().map(|r| (r.seq, r.tenant, r.ok, r.op.clone())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn recorded_streams_round_trip_and_replay_bit_for_bit(
        ops in proptest::collection::vec(sim_op_strategy(), 1..30),
        seed in any::<u64>(),
    ) {
        let wl = SimWorkload { ops };
        let recorded = record_workload(FsKind::ByteFs, MssdConfig::small_test(), &wl, seed)
            .expect("recording the sim workload");

        // Both serializations are lossless.
        let text = recorded.trace.to_text();
        let parsed = OpTrace::from_text(&text).expect("text round-trip parses");
        prop_assert_eq!(&parsed, &recorded.trace);
        let parsed = OpTrace::from_binary(&recorded.trace.to_binary()).expect("binary round-trip");
        prop_assert_eq!(&parsed, &recorded.trace);
        prop_assert_eq!(parsed.meta.schema, FS_TRACE_SCHEMA);

        // Exact replay of the *parsed* trace through a second recorder: the
        // re-recorded op stream matches the original record for record
        // (same ops, same fds, same outcomes, same tenants) and the
        // remounted image digest is bit-identical.
        let (device, fs) = FsKind::ByteFs.build(MssdConfig::small_test());
        let rec_fs = RecordingFs::new(fs);
        let rcfg = ReplayConfig { speed: ReplaySpeed::Exact, threads: 1 };
        let out = replay_on(&device, &rec_fs, &parsed, &rcfg);
        prop_assert_eq!(out.divergences, 0, "same-fs replay must not diverge");
        prop_assert_eq!(out.remount_digest, recorded.remount_digest);
        let rerecorded = rec_fs.into_trace(TraceMeta {
            schema: FS_TRACE_SCHEMA,
            name: "sim".to_string(),
            seed,
            capacity_bytes: 0,
            page_size: 0,
        });
        prop_assert_eq!(shape(&rerecorded), shape(&recorded.trace));
    }
}
