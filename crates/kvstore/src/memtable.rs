//! The in-memory write buffer (memtable).

use std::collections::BTreeMap;
use std::ops::Bound;

/// A sorted in-memory buffer of recent writes. `None` values are tombstones
/// (deletions that must shadow older SSTable entries).
#[derive(Debug, Default)]
pub struct Memtable {
    entries: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    approx_bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Inserts or overwrites a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.insert(key.to_vec(), Some(value.to_vec()));
    }

    /// Records a deletion (tombstone).
    pub fn delete(&mut self, key: &[u8]) {
        self.insert(key.to_vec(), None);
    }

    fn insert(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        let add = key.len() + value.as_ref().map(|v| v.len()).unwrap_or(0) + 16;
        if let Some(old) = self.entries.insert(key, value) {
            let old_size = old.map(|v| v.len()).unwrap_or(0);
            self.approx_bytes = self.approx_bytes.saturating_sub(old_size);
            self.approx_bytes += add.saturating_sub(16);
        } else {
            self.approx_bytes += add;
        }
    }

    /// Looks up a key. `Some(None)` means "deleted here"; `None` means "not
    /// present in the memtable, check the SSTables".
    pub fn get(&self, key: &[u8]) -> Option<Option<Vec<u8>>> {
        self.entries.get(key).cloned()
    }

    /// Iterates over entries with keys `>= start`, in order.
    pub fn range_from<'a>(
        &'a self,
        start: &[u8],
    ) -> impl Iterator<Item = (&'a Vec<u8>, &'a Option<Vec<u8>>)> + 'a {
        self.entries.range::<Vec<u8>, _>((Bound::Included(start.to_vec()), Bound::Unbounded))
    }

    /// Drains the memtable into a sorted vector of `(key, value-or-tombstone)`.
    pub fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        self.approx_bytes = 0;
        std::mem::take(&mut self.entries).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut m = Memtable::new();
        assert!(m.is_empty());
        m.put(b"a", b"1");
        m.put(b"b", b"2");
        assert_eq!(m.get(b"a"), Some(Some(b"1".to_vec())));
        assert_eq!(m.get(b"c"), None);
        m.delete(b"a");
        assert_eq!(m.get(b"a"), Some(None));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overwrite_replaces_value() {
        let mut m = Memtable::new();
        m.put(b"k", b"old");
        m.put(b"k", b"newer");
        assert_eq!(m.get(b"k"), Some(Some(b"newer".to_vec())));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn size_accounting_grows_with_inserts() {
        let mut m = Memtable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.put(b"key1", &[0u8; 100]);
        let after_one = m.approx_bytes();
        assert!(after_one >= 100);
        m.put(b"key2", &[0u8; 100]);
        assert!(m.approx_bytes() > after_one);
    }

    #[test]
    fn drain_returns_sorted_entries_and_empties() {
        let mut m = Memtable::new();
        m.put(b"zebra", b"3");
        m.put(b"apple", b"1");
        m.delete(b"mango");
        let drained = m.drain_sorted();
        let keys: Vec<&[u8]> = drained.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"apple".as_slice(), b"mango".as_slice(), b"zebra".as_slice()]);
        assert!(m.is_empty());
        assert_eq!(m.approx_bytes(), 0);
    }

    #[test]
    fn range_from_starts_at_the_given_key() {
        let mut m = Memtable::new();
        for k in ["a", "c", "e", "g"] {
            m.put(k.as_bytes(), b"v");
        }
        let keys: Vec<&[u8]> = m.range_from(b"c").map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"c".as_slice(), b"e".as_slice(), b"g".as_slice()]);
    }
}
