//! The write-ahead log.
//!
//! Every `put`/`delete` is appended to the WAL before it enters the memtable,
//! so committed writes survive a crash of the process even before a memtable
//! flush. The append pattern — many small sequential writes followed by an
//! `fsync` — is exactly the file-system workload the paper's OLTP and YCSB
//! write paths stress.

use std::sync::Arc;

use fskit::{Fd, FileSystem, FsResult, OpenFlags};

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The key.
    pub key: Vec<u8>,
    /// The value; `None` encodes a deletion.
    pub value: Option<Vec<u8>>,
}

impl WalRecord {
    /// Serialized size of this record in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + 4 + 1 + self.key.len() + self.value.as_ref().map(|v| v.len()).unwrap_or(0)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        let vlen = self.value.as_ref().map(|v| v.len()).unwrap_or(0) as u32;
        out.extend_from_slice(&vlen.to_le_bytes());
        out.push(self.value.is_some() as u8);
        out.extend_from_slice(&self.key);
        if let Some(v) = &self.value {
            out.extend_from_slice(v);
        }
        out
    }

    fn decode(buf: &[u8]) -> Option<(WalRecord, usize)> {
        if buf.len() < 9 {
            return None;
        }
        let klen = u32::from_le_bytes(buf[0..4].try_into().ok()?) as usize;
        let vlen = u32::from_le_bytes(buf[4..8].try_into().ok()?) as usize;
        let has_value = buf[8] != 0;
        let total = 9 + klen + vlen;
        if klen == 0 || buf.len() < total {
            return None;
        }
        let key = buf[9..9 + klen].to_vec();
        let value = has_value.then(|| buf[9 + klen..total].to_vec());
        Some((WalRecord { key, value }, total))
    }
}

/// An append-only write-ahead log on one file.
pub struct Wal {
    fs: Arc<dyn FileSystem>,
    path: String,
    fd: Fd,
    offset: u64,
}

impl Wal {
    /// Opens (creating if necessary) the WAL at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open(fs: Arc<dyn FileSystem>, path: &str) -> FsResult<Self> {
        let fd = fs.open(path, OpenFlags::create_rw())?;
        let offset = fs.fstat(fd)?.size;
        Ok(Self { fs, path: path.to_string(), fd, offset })
    }

    /// Current size of the log in bytes.
    pub fn size(&self) -> u64 {
        self.offset
    }

    /// Appends a record (buffered; call [`Wal::sync`] to make it durable).
    pub fn append(&mut self, record: &WalRecord) -> FsResult<()> {
        let bytes = record.encode();
        self.fs.write(self.fd, self.offset, &bytes)?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Forces appended records to the device (`fdatasync`).
    pub fn sync(&self) -> FsResult<()> {
        self.fs.fdatasync(self.fd)
    }

    /// Truncates the log after a successful memtable flush.
    pub fn reset(&mut self) -> FsResult<()> {
        self.fs.truncate(self.fd, 0)?;
        self.offset = 0;
        Ok(())
    }

    /// Replays every complete record in the log (used at open after a crash).
    pub fn replay(&self) -> FsResult<Vec<WalRecord>> {
        let size = self.fs.fstat(self.fd)?.size as usize;
        let buf = self.fs.read(self.fd, 0, size)?;
        let mut out = Vec::new();
        let mut pos = 0;
        while let Some((rec, used)) = WalRecord::decode(&buf[pos..]) {
            out.push(rec);
            pos += used;
        }
        Ok(out)
    }

    /// The WAL file path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytefs::{ByteFs, ByteFsConfig};
    use mssd::{DramMode, Mssd, MssdConfig};

    fn test_fs() -> Arc<dyn FileSystem> {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        ByteFs::format(dev, ByteFsConfig::default()).unwrap()
    }

    #[test]
    fn record_roundtrip() {
        let rec = WalRecord { key: b"user1".to_vec(), value: Some(b"value".to_vec()) };
        let encoded = rec.encode();
        assert_eq!(encoded.len(), rec.encoded_len());
        let (back, used) = WalRecord::decode(&encoded).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, encoded.len());
        let tomb = WalRecord { key: b"gone".to_vec(), value: None };
        let (back, _) = WalRecord::decode(&tomb.encode()).unwrap();
        assert_eq!(back.value, None);
    }

    #[test]
    fn append_sync_replay() {
        let fs = test_fs();
        let mut wal = Wal::open(Arc::clone(&fs), "/wal").unwrap();
        for i in 0..20u32 {
            wal.append(&WalRecord {
                key: format!("key{i}").into_bytes(),
                value: (i % 3 != 0).then(|| format!("value{i}").into_bytes()),
            })
            .unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.size() > 0);
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 20);
        assert_eq!(records[1].key, b"key1");
        assert_eq!(records[0].value, None);
        assert_eq!(records[1].value, Some(b"value1".to_vec()));
    }

    #[test]
    fn reset_truncates() {
        let fs = test_fs();
        let mut wal = Wal::open(Arc::clone(&fs), "/wal").unwrap();
        wal.append(&WalRecord { key: b"k".to_vec(), value: Some(b"v".to_vec()) }).unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.size(), 0);
        assert!(wal.replay().unwrap().is_empty());
    }

    #[test]
    fn reopen_continues_at_the_end() {
        let fs = test_fs();
        {
            let mut wal = Wal::open(Arc::clone(&fs), "/wal").unwrap();
            wal.append(&WalRecord { key: b"a".to_vec(), value: Some(b"1".to_vec()) }).unwrap();
            wal.sync().unwrap();
        }
        let mut wal = Wal::open(Arc::clone(&fs), "/wal").unwrap();
        wal.append(&WalRecord { key: b"b".to_vec(), value: Some(b"2".to_vec()) }).unwrap();
        wal.sync().unwrap();
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn truncated_tail_is_ignored() {
        let fs = test_fs();
        let mut wal = Wal::open(Arc::clone(&fs), "/wal").unwrap();
        wal.append(&WalRecord { key: b"whole".to_vec(), value: Some(b"record".to_vec()) }).unwrap();
        wal.sync().unwrap();
        // Simulate a torn append: garbage partial header at the end.
        let fd = fs.open("/wal", fskit::OpenFlags::read_write()).unwrap();
        let size = fs.fstat(fd).unwrap().size;
        fs.write(fd, size, &[7u8; 3]).unwrap();
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 1);
    }
}
