//! The write-ahead log.
//!
//! Every `put`/`delete` is appended to the WAL before it enters the memtable,
//! so committed writes survive a crash of the process even before a memtable
//! flush. The append pattern — many small sequential writes followed by an
//! `fsync` — is exactly the file-system workload the paper's OLTP and YCSB
//! write paths stress.
//!
//! # Crash safety
//!
//! A power failure can tear the final record: the file-system write behind an
//! `append` spans multiple device chunks, and a crash between them leaves a
//! record whose header decodes but whose payload is partly old bytes. Every
//! record therefore carries a checksum over its header and payload.
//! [`Wal::open`] validates the log front to back and **truncates** everything
//! from the first invalid record on — a torn tail is an expected crash
//! artifact, not an error (records after a torn one cannot exist: the log is
//! append-only and synced in order). The crashkit `WalTailChecker` pins this
//! behaviour at every enumerated crash point.

use std::sync::Arc;

use fskit::check::{CrashConsistent, Violation};
use fskit::{Fd, FileSystem, FsResult, OpenFlags};

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The key.
    pub key: Vec<u8>,
    /// The value; `None` encodes a deletion.
    pub value: Option<Vec<u8>>,
}

/// Fixed bytes per record in addition to key and value: two length words,
/// the tombstone flag and the trailing checksum.
const RECORD_OVERHEAD: usize = 4 + 4 + 1 + 4;

/// FNV-1a over the record's header and payload; 32 bits is plenty to catch
/// torn-write corruption (this is an integrity check, not cryptography).
fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in bytes {
        h ^= u32::from(*b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl WalRecord {
    /// Serialized size of this record in bytes.
    pub fn encoded_len(&self) -> usize {
        RECORD_OVERHEAD + self.key.len() + self.value.as_ref().map(|v| v.len()).unwrap_or(0)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        let vlen = self.value.as_ref().map(|v| v.len()).unwrap_or(0) as u32;
        out.extend_from_slice(&vlen.to_le_bytes());
        out.push(self.value.is_some() as u8);
        out.extend_from_slice(&self.key);
        if let Some(v) = &self.value {
            out.extend_from_slice(v);
        }
        let crc = checksum(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes one record off the front of `buf`. Returns the record and its
    /// encoded size, or `None` when the bytes are incomplete **or fail the
    /// checksum** — the caller treats either as the (torn) end of the log.
    fn decode(buf: &[u8]) -> Option<(WalRecord, usize)> {
        if buf.len() < RECORD_OVERHEAD {
            return None;
        }
        let klen = u32::from_le_bytes(buf[0..4].try_into().ok()?) as usize;
        let vlen = u32::from_le_bytes(buf[4..8].try_into().ok()?) as usize;
        let has_value = buf[8] != 0;
        let total = RECORD_OVERHEAD + klen + vlen;
        if klen == 0 || buf.len() < total {
            return None;
        }
        let body_end = total - 4;
        let stored = u32::from_le_bytes(buf[body_end..total].try_into().ok()?);
        if checksum(&buf[..body_end]) != stored {
            return None;
        }
        let key = buf[9..9 + klen].to_vec();
        let value = has_value.then(|| buf[9 + klen..body_end].to_vec());
        Some((WalRecord { key, value }, total))
    }
}

/// Parses `buf` front to back; returns every valid record and the byte
/// length of the valid prefix.
fn parse_valid_prefix(buf: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some((rec, used)) = WalRecord::decode(&buf[pos..]) {
        out.push(rec);
        pos += used;
    }
    (out, pos)
}

/// An append-only write-ahead log on one file.
pub struct Wal {
    fs: Arc<dyn FileSystem>,
    path: String,
    fd: Fd,
    offset: u64,
    torn_tails_truncated: u64,
}

impl Wal {
    /// Opens (creating if necessary) the WAL at `path`.
    ///
    /// The log is validated front to back; a torn tail (incomplete or
    /// checksum-failing final record, the signature of a crash mid-append)
    /// is truncated away so the log ends at its last whole record and new
    /// appends continue from there.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open(fs: Arc<dyn FileSystem>, path: &str) -> FsResult<Self> {
        let fd = fs.open(path, OpenFlags::create_rw())?;
        let size = fs.fstat(fd)?.size;
        let buf = fs.read(fd, 0, size as usize)?;
        let (_, valid) = parse_valid_prefix(&buf);
        let valid = valid as u64;
        let mut torn_tails_truncated = 0;
        if valid < size {
            // Torn tail from a crash mid-append: recover by truncation.
            fs.truncate(fd, valid)?;
            torn_tails_truncated = 1;
        }
        Ok(Self { fs, path: path.to_string(), fd, offset: valid, torn_tails_truncated })
    }

    /// Number of torn tails this WAL truncated when it was opened (0 or 1;
    /// a counter so callers can sum it across reopens).
    pub fn torn_tails_truncated(&self) -> u64 {
        self.torn_tails_truncated
    }

    /// Current size of the log in bytes.
    pub fn size(&self) -> u64 {
        self.offset
    }

    /// Appends a record (buffered; call [`Wal::sync`] to make it durable).
    pub fn append(&mut self, record: &WalRecord) -> FsResult<()> {
        let bytes = record.encode();
        self.fs.write(self.fd, self.offset, &bytes)?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Forces appended records to the device (`fdatasync`).
    pub fn sync(&self) -> FsResult<()> {
        self.fs.fdatasync(self.fd)
    }

    /// Truncates the log after a successful memtable flush.
    pub fn reset(&mut self) -> FsResult<()> {
        self.fs.truncate(self.fd, 0)?;
        self.offset = 0;
        Ok(())
    }

    /// Replays every valid record in the log (used at open after a crash).
    /// Stops at the first invalid record — which [`Wal::open`] already
    /// truncated away, so under normal operation this reads the whole file.
    pub fn replay(&self) -> FsResult<Vec<WalRecord>> {
        let size = self.fs.fstat(self.fd)?.size as usize;
        let buf = self.fs.read(self.fd, 0, size)?;
        Ok(parse_valid_prefix(&buf).0)
    }

    /// Validates the on-device log: every byte up to the file size must
    /// parse as checksummed records. Returns the records, or a description
    /// of where validation stopped. (After [`Wal::open`]'s truncation this
    /// only fails if the file was corrupted *behind* the running WAL.)
    pub fn validate(&self) -> FsResult<Result<Vec<WalRecord>, String>> {
        let size = self.fs.fstat(self.fd)?.size as usize;
        let buf = self.fs.read(self.fd, 0, size)?;
        let (records, valid) = parse_valid_prefix(&buf);
        if valid < size {
            return Ok(Err(format!(
                "wal {}: {} trailing bytes after the last valid record (of {})",
                self.path,
                size - valid,
                size
            )));
        }
        Ok(Ok(records))
    }

    /// The WAL file path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

/// The kvstore side of the shared checker API: after a crash and reopen, the
/// WAL must be entirely valid (open truncated any torn tail) and the
/// memtable must contain exactly the WAL's surviving records.
impl CrashConsistent for crate::Db {
    fn check_invariants(&self) -> Vec<Violation> {
        let mut v = Vec::new();
        let (wal_check, memtable_view) = self.wal_and_memtable_view();
        match wal_check {
            Err(e) => v.push(Violation::new("wal-tail", format!("wal unreadable: {e}"))),
            Ok(Err(detail)) => v.push(Violation::new("wal-tail", detail)),
            Ok(Ok(records)) => {
                // Replaying the WAL yields the memtable's exact contents.
                let mut replayed = crate::memtable::Memtable::new();
                for rec in &records {
                    match &rec.value {
                        Some(val) => replayed.put(&rec.key, val),
                        None => replayed.delete(&rec.key),
                    }
                }
                let replayed_view: Vec<_> =
                    replayed.range_from(&[]).map(|(k, val)| (k.clone(), val.clone())).collect();
                if replayed_view != memtable_view {
                    v.push(Violation::new(
                        "wal-tail",
                        format!(
                            "memtable holds {} entries but the WAL replays to {}",
                            memtable_view.len(),
                            replayed_view.len()
                        ),
                    ));
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytefs::{ByteFs, ByteFsConfig};
    use mssd::{DramMode, Mssd, MssdConfig};

    fn test_fs() -> Arc<dyn FileSystem> {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        ByteFs::format(dev, ByteFsConfig::default()).unwrap()
    }

    #[test]
    fn record_roundtrip() {
        let rec = WalRecord { key: b"user1".to_vec(), value: Some(b"value".to_vec()) };
        let encoded = rec.encode();
        assert_eq!(encoded.len(), rec.encoded_len());
        let (back, used) = WalRecord::decode(&encoded).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, encoded.len());
        let tomb = WalRecord { key: b"gone".to_vec(), value: None };
        let (back, _) = WalRecord::decode(&tomb.encode()).unwrap();
        assert_eq!(back.value, None);
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let rec = WalRecord { key: b"key".to_vec(), value: Some(b"payload".to_vec()) };
        let mut encoded = rec.encode();
        // Flip one payload byte: header still decodes, checksum must not.
        encoded[10] ^= 0xFF;
        assert!(WalRecord::decode(&encoded).is_none());
    }

    #[test]
    fn append_sync_replay() {
        let fs = test_fs();
        let mut wal = Wal::open(Arc::clone(&fs), "/wal").unwrap();
        for i in 0..20u32 {
            wal.append(&WalRecord {
                key: format!("key{i}").into_bytes(),
                value: (i % 3 != 0).then(|| format!("value{i}").into_bytes()),
            })
            .unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.size() > 0);
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 20);
        assert_eq!(records[1].key, b"key1");
        assert_eq!(records[0].value, None);
        assert_eq!(records[1].value, Some(b"value1".to_vec()));
        assert!(wal.validate().unwrap().is_ok());
    }

    #[test]
    fn reset_truncates() {
        let fs = test_fs();
        let mut wal = Wal::open(Arc::clone(&fs), "/wal").unwrap();
        wal.append(&WalRecord { key: b"k".to_vec(), value: Some(b"v".to_vec()) }).unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.size(), 0);
        assert!(wal.replay().unwrap().is_empty());
    }

    #[test]
    fn reopen_continues_at_the_end() {
        let fs = test_fs();
        {
            let mut wal = Wal::open(Arc::clone(&fs), "/wal").unwrap();
            wal.append(&WalRecord { key: b"a".to_vec(), value: Some(b"1".to_vec()) }).unwrap();
            wal.sync().unwrap();
        }
        let mut wal = Wal::open(Arc::clone(&fs), "/wal").unwrap();
        wal.append(&WalRecord { key: b"b".to_vec(), value: Some(b"2".to_vec()) }).unwrap();
        wal.sync().unwrap();
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn truncated_tail_is_ignored_and_removed_at_open() {
        let fs = test_fs();
        {
            let mut wal = Wal::open(Arc::clone(&fs), "/wal").unwrap();
            wal.append(&WalRecord { key: b"whole".to_vec(), value: Some(b"record".to_vec()) })
                .unwrap();
            wal.sync().unwrap();
            // Simulate a torn append: garbage partial header at the end.
            let fd = fs.open("/wal", fskit::OpenFlags::read_write()).unwrap();
            let size = fs.fstat(fd).unwrap().size;
            fs.write(fd, size, &[7u8; 3]).unwrap();
            assert_eq!(wal.replay().unwrap().len(), 1);
        }
        // Reopening truncates the torn bytes and appends continue cleanly.
        let whole_len =
            WalRecord { key: b"whole".to_vec(), value: Some(b"record".to_vec()) }.encoded_len();
        let mut wal = Wal::open(Arc::clone(&fs), "/wal").unwrap();
        assert_eq!(wal.size(), whole_len as u64, "torn tail truncated at open");
        assert_eq!(wal.torn_tails_truncated(), 1, "truncation recorded in the counter");
        wal.append(&WalRecord { key: b"next".to_vec(), value: Some(b"rec".to_vec()) }).unwrap();
        wal.sync().unwrap();
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].key, b"next");
        assert!(wal.validate().unwrap().is_ok());
    }

    #[test]
    fn torn_final_record_with_valid_header_is_rejected_by_checksum() {
        let fs = test_fs();
        let mut wal = Wal::open(Arc::clone(&fs), "/wal").unwrap();
        wal.append(&WalRecord { key: b"good".to_vec(), value: Some(b"data".to_vec()) }).unwrap();
        wal.sync().unwrap();
        let good_len = wal.size();
        wal.append(&WalRecord { key: b"torn".to_vec(), value: Some(vec![0xAB; 100]) }).unwrap();
        wal.sync().unwrap();
        // Tear the final record's payload as a mid-record crash would: the
        // header and length fields stay intact, part of the payload reverts.
        let fd = fs.open("/wal", fskit::OpenFlags::read_write()).unwrap();
        fs.write(fd, good_len + 20, &[0u8; 40]).unwrap();
        // Without the checksum this would replay a corrupt record; with it,
        // the torn record is cut off and the first record survives.
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, b"good");
        let reopened = Wal::open(Arc::clone(&fs), "/wal").unwrap();
        assert_eq!(reopened.size(), good_len, "open truncates the torn record");
        assert_eq!(reopened.torn_tails_truncated(), 1, "truncation recorded in the counter");
    }
}
