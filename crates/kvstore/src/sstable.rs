//! Immutable sorted-string tables (SSTables).
//!
//! A memtable flush writes its sorted entries to one SSTable file with a
//! sparse index; lookups read only a small byte range of the file, scans read
//! it sequentially. Tombstones are stored so that compaction can shadow older
//! values.

use std::sync::Arc;

use fskit::{FileSystem, FsError, FsResult, OpenFlags};

/// One entry as stored in an SSTable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SstEntry {
    /// The key.
    pub key: Vec<u8>,
    /// The value; `None` is a tombstone.
    pub value: Option<Vec<u8>>,
}

fn encode_entry(out: &mut Vec<u8>, key: &[u8], value: &Option<Vec<u8>>) {
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    let vlen = value.as_ref().map(|v| v.len()).unwrap_or(0) as u32;
    out.extend_from_slice(&vlen.to_le_bytes());
    out.push(value.is_some() as u8);
    out.extend_from_slice(key);
    if let Some(v) = value {
        out.extend_from_slice(v);
    }
}

fn decode_entry(buf: &[u8]) -> Option<(SstEntry, usize)> {
    if buf.len() < 9 {
        return None;
    }
    let klen = u32::from_le_bytes(buf[0..4].try_into().ok()?) as usize;
    let vlen = u32::from_le_bytes(buf[4..8].try_into().ok()?) as usize;
    let has_value = buf[8] != 0;
    let total = 9 + klen + vlen;
    if klen == 0 || buf.len() < total {
        return None;
    }
    let key = buf[9..9 + klen].to_vec();
    let value = has_value.then(|| buf[9 + klen..total].to_vec());
    Some((SstEntry { key, value }, total))
}

/// Every how many entries a sparse-index anchor is kept in memory.
const INDEX_INTERVAL: usize = 16;

/// An immutable, sorted table backed by one file.
pub struct SsTable {
    fs: Arc<dyn FileSystem>,
    path: String,
    /// Sparse index: `(key, byte offset)` of every `INDEX_INTERVAL`-th entry.
    index: Vec<(Vec<u8>, u64)>,
    /// Smallest and largest key in the table.
    bounds: Option<(Vec<u8>, Vec<u8>)>,
    size_bytes: u64,
    entries: usize,
}

impl SsTable {
    /// Writes a new SSTable from sorted `(key, value)` entries and syncs it.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors; returns [`FsError::InvalidArgument`] if
    /// the entries are not strictly sorted by key.
    pub fn write(
        fs: Arc<dyn FileSystem>,
        path: &str,
        entries: &[(Vec<u8>, Option<Vec<u8>>)],
    ) -> FsResult<Self> {
        for pair in entries.windows(2) {
            if pair[0].0 >= pair[1].0 {
                return Err(FsError::InvalidArgument("sstable entries must be sorted".into()));
            }
        }
        let mut buf = Vec::new();
        let mut index = Vec::new();
        for (i, (key, value)) in entries.iter().enumerate() {
            if i % INDEX_INTERVAL == 0 {
                index.push((key.clone(), buf.len() as u64));
            }
            encode_entry(&mut buf, key, value);
        }
        let fd = fs.open(path, OpenFlags::create_truncate())?;
        fs.write(fd, 0, &buf)?;
        fs.fsync(fd)?;
        fs.close(fd)?;
        let bounds =
            entries.first().map(|(k, _)| (k.clone(), entries.last().expect("non-empty").0.clone()));
        Ok(Self {
            fs,
            path: path.to_string(),
            index,
            bounds,
            size_bytes: buf.len() as u64,
            entries: entries.len(),
        })
    }

    /// Opens an existing SSTable, rebuilding the sparse index by scanning the
    /// file once.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open(fs: Arc<dyn FileSystem>, path: &str) -> FsResult<Self> {
        let fd = fs.open(path, OpenFlags::read_only())?;
        let size = fs.fstat(fd)?.size as usize;
        let buf = fs.read(fd, 0, size)?;
        fs.close(fd)?;
        let mut index = Vec::new();
        let mut bounds: Option<(Vec<u8>, Vec<u8>)> = None;
        let mut pos = 0usize;
        let mut count = 0usize;
        while let Some((entry, used)) = decode_entry(&buf[pos..]) {
            if count.is_multiple_of(INDEX_INTERVAL) {
                index.push((entry.key.clone(), pos as u64));
            }
            bounds = Some(match bounds {
                None => (entry.key.clone(), entry.key.clone()),
                Some((lo, _)) => (lo, entry.key.clone()),
            });
            pos += used;
            count += 1;
        }
        Ok(Self {
            fs,
            path: path.to_string(),
            index,
            bounds,
            size_bytes: pos as u64,
            entries: count,
        })
    }

    /// The file path backing this table.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Number of entries in the table.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// `true` when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Size of the table file in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Whether `key` falls within this table's key range.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        match &self.bounds {
            Some((lo, hi)) => key >= lo.as_slice() && key <= hi.as_slice(),
            None => false,
        }
    }

    /// Point lookup. Reads only the index segment that may hold the key.
    ///
    /// Returns `Some(Some(v))` for a live value, `Some(None)` for a tombstone,
    /// and `None` if the key is not in this table.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn get(&self, key: &[u8]) -> FsResult<Option<Option<Vec<u8>>>> {
        if !self.may_contain(key) {
            return Ok(None);
        }
        // Find the index anchor at or before the key.
        let slot = match self.index.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => i,
            Err(0) => return Ok(None),
            Err(i) => i - 1,
        };
        let start = self.index[slot].1;
        let end = self.index.get(slot + 1).map(|(_, off)| *off).unwrap_or(self.size_bytes);
        let fd = self.fs.open(&self.path, OpenFlags::read_only())?;
        let buf = self.fs.read(fd, start, (end - start) as usize)?;
        self.fs.close(fd)?;
        let mut pos = 0;
        while let Some((entry, used)) = decode_entry(&buf[pos..]) {
            if entry.key.as_slice() == key {
                return Ok(Some(entry.value));
            }
            if entry.key.as_slice() > key {
                break;
            }
            pos += used;
        }
        Ok(None)
    }

    /// Reads every entry of the table in key order (used by scans and
    /// compaction).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn scan_all(&self) -> FsResult<Vec<SstEntry>> {
        let fd = self.fs.open(&self.path, OpenFlags::read_only())?;
        let buf = self.fs.read(fd, 0, self.size_bytes as usize)?;
        self.fs.close(fd)?;
        let mut out = Vec::with_capacity(self.entries);
        let mut pos = 0;
        while let Some((entry, used)) = decode_entry(&buf[pos..]) {
            out.push(entry);
            pos += used;
        }
        Ok(out)
    }

    /// Deletes the backing file.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn delete(self) -> FsResult<()> {
        self.fs.unlink(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytefs::{ByteFs, ByteFsConfig};
    use mssd::{DramMode, Mssd, MssdConfig};

    fn test_fs() -> Arc<dyn FileSystem> {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        ByteFs::format(dev, ByteFsConfig::default()).unwrap()
    }

    fn entries(n: usize) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        (0..n)
            .map(|i| {
                let key = format!("key{i:05}").into_bytes();
                let value = (i % 7 != 3).then(|| format!("value-{i}").into_bytes());
                (key, value)
            })
            .collect()
    }

    #[test]
    fn write_then_get() {
        let fs = test_fs();
        let table = SsTable::write(Arc::clone(&fs), "/sst1", &entries(100)).unwrap();
        assert_eq!(table.len(), 100);
        assert!(table.size_bytes() > 0);
        assert_eq!(table.get(b"key00042").unwrap(), Some(Some(b"value-42".to_vec())));
        assert_eq!(table.get(b"key00003").unwrap(), Some(None), "tombstone is found");
        assert_eq!(table.get(b"missing").unwrap(), None);
        assert_eq!(table.get(b"key99999").unwrap(), None);
    }

    #[test]
    fn open_rebuilds_the_index() {
        let fs = test_fs();
        SsTable::write(Arc::clone(&fs), "/sst2", &entries(64)).unwrap();
        let reopened = SsTable::open(Arc::clone(&fs), "/sst2").unwrap();
        assert_eq!(reopened.len(), 64);
        assert_eq!(reopened.get(b"key00012").unwrap(), Some(Some(b"value-12".to_vec())));
        assert_eq!(reopened.get(b"key00010").unwrap(), Some(None), "tombstone preserved");
        assert!(reopened.may_contain(b"key00000"));
        assert!(!reopened.may_contain(b"zzz"));
    }

    #[test]
    fn scan_all_returns_sorted_entries() {
        let fs = test_fs();
        let table = SsTable::write(Arc::clone(&fs), "/sst3", &entries(40)).unwrap();
        let all = table.scan_all().unwrap();
        assert_eq!(all.len(), 40);
        assert!(all.windows(2).all(|w| w[0].key < w[1].key));
    }

    #[test]
    fn unsorted_input_is_rejected() {
        let fs = test_fs();
        let bad = vec![(b"b".to_vec(), Some(b"1".to_vec())), (b"a".to_vec(), Some(b"2".to_vec()))];
        assert!(matches!(
            SsTable::write(Arc::clone(&fs), "/bad", &bad),
            Err(FsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn delete_removes_the_file() {
        let fs = test_fs();
        let table = SsTable::write(Arc::clone(&fs), "/sst4", &entries(8)).unwrap();
        table.delete().unwrap();
        assert!(!fs.exists("/sst4"));
    }

    #[test]
    fn point_lookups_read_only_part_of_the_file() {
        let fs = test_fs();
        let table = SsTable::write(Arc::clone(&fs), "/sst5", &entries(1000)).unwrap();
        let dev = fs.device();
        let before = dev.traffic().host_read_bytes();
        table.get(b"key00500").unwrap();
        let read = dev.traffic().host_read_bytes() - before;
        assert!(
            read < table.size_bytes(),
            "a point lookup must not read the whole table ({read} of {})",
            table.size_bytes()
        );
    }
}
