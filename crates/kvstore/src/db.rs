//! The LSM-tree database: WAL + memtable + SSTables + tiered compaction.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use fskit::{FileSystem, FileSystemExt, FsResult};

use crate::memtable::Memtable;
use crate::sstable::SsTable;
use crate::wal::{Wal, WalRecord};

/// When the write-ahead log is forced to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalSync {
    /// `fdatasync` after every write (safest, slowest).
    EveryWrite,
    /// `fdatasync` after every N writes (group commit, the default).
    Periodic(u32),
    /// Only when the memtable is flushed.
    OnFlush,
}

/// Database tuning options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbOptions {
    /// Memtable size that triggers a flush to an SSTable.
    pub memtable_bytes: usize,
    /// Number of level-0 SSTables that triggers a compaction.
    pub compaction_threshold: usize,
    /// WAL durability policy.
    pub wal_sync: WalSync,
}

impl Default for DbOptions {
    fn default() -> Self {
        Self { memtable_bytes: 1 << 20, compaction_threshold: 4, wal_sync: WalSync::Periodic(64) }
    }
}

impl DbOptions {
    /// Small limits so unit tests exercise flush and compaction quickly.
    pub fn small_test() -> Self {
        Self { memtable_bytes: 16 << 10, compaction_threshold: 3, wal_sync: WalSync::Periodic(8) }
    }
}

/// Operation counters of a [`Db`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Number of puts and deletes accepted.
    pub writes: u64,
    /// Number of point lookups served.
    pub reads: u64,
    /// Number of range scans served.
    pub scans: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Torn WAL tails truncated during recovery at open (the signature of a
    /// crash mid-append; see [`crate::wal::Wal::open`]).
    pub torn_tails_truncated: u64,
}

struct DbState {
    memtable: Memtable,
    wal: Wal,
    tables: Vec<SsTable>,
    next_table_id: u64,
    writes_since_sync: u32,
    stats: DbStats,
}

/// An LSM-tree key-value store on top of a [`FileSystem`].
pub struct Db {
    fs: Arc<dyn FileSystem>,
    dir: String,
    options: DbOptions,
    state: Mutex<DbState>,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db").field("dir", &self.dir).finish()
    }
}

impl Db {
    /// Opens (or creates) a database rooted at directory `dir`. Existing WAL
    /// records are replayed into the memtable.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open(fs: Arc<dyn FileSystem>, dir: &str, options: DbOptions) -> FsResult<Self> {
        fs.mkdir_all(dir)?;
        let wal_path = format!("{dir}/wal");
        let wal = Wal::open(Arc::clone(&fs), &wal_path)?;

        // Recover existing SSTables (files named sst-<id>) in creation order.
        let mut tables = Vec::new();
        let mut next_table_id = 0;
        let mut names: Vec<(u64, String)> = fs
            .readdir(dir)?
            .into_iter()
            .filter_map(|e| {
                e.name
                    .strip_prefix("sst-")
                    .and_then(|id| id.parse::<u64>().ok())
                    .map(|id| (id, format!("{dir}/{}", e.name)))
            })
            .collect();
        names.sort_unstable();
        for (id, path) in names {
            tables.push(SsTable::open(Arc::clone(&fs), &path)?);
            next_table_id = next_table_id.max(id + 1);
        }

        // Replay the WAL into a fresh memtable.
        let mut memtable = Memtable::new();
        for rec in wal.replay()? {
            match rec.value {
                Some(v) => memtable.put(&rec.key, &v),
                None => memtable.delete(&rec.key),
            }
        }

        let stats =
            DbStats { torn_tails_truncated: wal.torn_tails_truncated(), ..DbStats::default() };
        let state = DbState { memtable, wal, tables, next_table_id, writes_since_sync: 0, stats };
        Ok(Self { fs, dir: dir.to_string(), options, state: Mutex::new(state) })
    }

    /// The file system this database runs on.
    pub fn file_system(&self) -> &Arc<dyn FileSystem> {
        &self.fs
    }

    /// One consistent snapshot for the crash-consistency checker: the WAL
    /// validation result plus the memtable's current contents (see the
    /// [`fskit::check::CrashConsistent`] impl in [`crate::wal`]).
    #[allow(clippy::type_complexity)]
    pub(crate) fn wal_and_memtable_view(
        &self,
    ) -> (FsResult<Result<Vec<WalRecord>, String>>, Vec<(Vec<u8>, Option<Vec<u8>>)>) {
        let st = self.state.lock();
        let wal_check = st.wal.validate();
        let view = st.memtable.range_from(&[]).map(|(k, v)| (k.clone(), v.clone())).collect();
        (wal_check, view)
    }

    /// Operation counters.
    pub fn stats(&self) -> DbStats {
        self.state.lock().stats
    }

    /// Number of on-device SSTables.
    pub fn table_count(&self) -> usize {
        self.state.lock().tables.len()
    }

    /// Inserts or overwrites a key.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn put(&self, key: &[u8], value: &[u8]) -> FsResult<()> {
        self.write(key, Some(value))
    }

    /// Deletes a key.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn delete(&self, key: &[u8]) -> FsResult<()> {
        self.write(key, None)
    }

    fn write(&self, key: &[u8], value: Option<&[u8]>) -> FsResult<()> {
        let mut st = self.state.lock();
        st.wal.append(&WalRecord { key: key.to_vec(), value: value.map(|v| v.to_vec()) })?;
        st.writes_since_sync += 1;
        let should_sync = match self.options.wal_sync {
            WalSync::EveryWrite => true,
            WalSync::Periodic(n) => st.writes_since_sync >= n,
            WalSync::OnFlush => false,
        };
        if should_sync {
            st.wal.sync()?;
            st.writes_since_sync = 0;
        }
        match value {
            Some(v) => st.memtable.put(key, v),
            None => st.memtable.delete(key),
        }
        st.stats.writes += 1;
        if st.memtable.approx_bytes() >= self.options.memtable_bytes {
            self.flush_locked(&mut st)?;
        }
        Ok(())
    }

    /// Point lookup.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn get(&self, key: &[u8]) -> FsResult<Option<Vec<u8>>> {
        let mut st = self.state.lock();
        st.stats.reads += 1;
        if let Some(hit) = st.memtable.get(key) {
            return Ok(hit);
        }
        // Newest table first.
        for table in st.tables.iter().rev() {
            if let Some(found) = table.get(key)? {
                return Ok(found);
            }
        }
        Ok(None)
    }

    /// Range scan: up to `count` live entries with keys `>= start`, in order.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn scan(&self, start: &[u8], count: usize) -> FsResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut st = self.state.lock();
        st.stats.scans += 1;
        // Merge all sources, newest version wins.
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for table in st.tables.iter() {
            for entry in table.scan_all()? {
                if entry.key.as_slice() >= start {
                    merged.insert(entry.key, entry.value);
                }
            }
        }
        for (k, v) in st.memtable.range_from(start) {
            merged.insert(k.clone(), v.clone());
        }
        Ok(merged.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).take(count).collect())
    }

    /// Forces the memtable to an SSTable (also truncates the WAL).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn flush(&self) -> FsResult<()> {
        let mut st = self.state.lock();
        self.flush_locked(&mut st)
    }

    fn flush_locked(&self, st: &mut DbState) -> FsResult<()> {
        if st.memtable.is_empty() {
            return Ok(());
        }
        st.wal.sync()?;
        let entries = st.memtable.drain_sorted();
        let id = st.next_table_id;
        st.next_table_id += 1;
        let path = format!("{}/sst-{id}", self.dir);
        let table = SsTable::write(Arc::clone(&self.fs), &path, &entries)?;
        st.tables.push(table);
        st.wal.reset()?;
        st.writes_since_sync = 0;
        st.stats.flushes += 1;
        if st.tables.len() > self.options.compaction_threshold {
            self.compact_locked(st)?;
        }
        Ok(())
    }

    fn compact_locked(&self, st: &mut DbState) -> FsResult<()> {
        // Tiered compaction: merge every table into one, newest version wins,
        // dropping tombstones (full merge ⇒ nothing older can resurface).
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for table in st.tables.iter() {
            for entry in table.scan_all()? {
                merged.insert(entry.key, entry.value);
            }
        }
        let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            merged.into_iter().filter(|(_, v)| v.is_some()).collect();
        let id = st.next_table_id;
        st.next_table_id += 1;
        let path = format!("{}/sst-{id}", self.dir);
        let new_table = if entries.is_empty() {
            None
        } else {
            Some(SsTable::write(Arc::clone(&self.fs), &path, &entries)?)
        };
        for table in st.tables.drain(..) {
            table.delete()?;
        }
        st.tables.extend(new_table);
        st.stats.compactions += 1;
        Ok(())
    }

    /// Flushes everything and syncs the file system (graceful shutdown).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn close(&self) -> FsResult<()> {
        self.flush()?;
        self.fs.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::Ext4Like;
    use bytefs::{ByteFs, ByteFsConfig};
    use mssd::{DramMode, Mssd, MssdConfig};

    fn bytefs() -> Arc<dyn FileSystem> {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        ByteFs::format(dev, ByteFsConfig::default()).unwrap()
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let db = Db::open(bytefs(), "/db", DbOptions::small_test()).unwrap();
        db.put(b"alpha", b"1").unwrap();
        db.put(b"beta", b"2").unwrap();
        assert_eq!(db.get(b"alpha").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"gamma").unwrap(), None);
        db.delete(b"alpha").unwrap();
        assert_eq!(db.get(b"alpha").unwrap(), None);
        db.put(b"beta", b"22").unwrap();
        assert_eq!(db.get(b"beta").unwrap(), Some(b"22".to_vec()));
    }

    #[test]
    fn flush_and_read_from_sstables() {
        let db = Db::open(bytefs(), "/db", DbOptions::small_test()).unwrap();
        for i in 0..200u32 {
            db.put(format!("user{i:04}").as_bytes(), &[i as u8; 100]).unwrap();
        }
        db.flush().unwrap();
        assert!(db.table_count() >= 1);
        assert_eq!(db.get(b"user0150").unwrap(), Some(vec![150u8; 100]));
        assert_eq!(db.get(b"user9999").unwrap(), None);
        assert!(db.stats().flushes >= 1);
    }

    #[test]
    fn compaction_keeps_newest_versions_and_drops_tombstones() {
        let mut opts = DbOptions::small_test();
        opts.memtable_bytes = 2 << 10;
        opts.compaction_threshold = 2;
        let db = Db::open(bytefs(), "/db", opts).unwrap();
        for round in 0..6u32 {
            for i in 0..40u32 {
                db.put(format!("k{i:03}").as_bytes(), format!("v{round}-{i}").as_bytes()).unwrap();
            }
            db.delete(format!("k{:03}", round).as_bytes()).unwrap();
            db.flush().unwrap();
        }
        assert!(db.stats().compactions >= 1);
        assert!(db.table_count() <= 3, "compaction bounds the table count");
        // Newest version wins; deleted keys from the last round stay deleted.
        assert_eq!(db.get(b"k010").unwrap(), Some(b"v5-10".to_vec()));
        assert_eq!(db.get(b"k005").unwrap(), None);
    }

    #[test]
    fn scans_merge_memtable_and_tables() {
        let db = Db::open(bytefs(), "/db", DbOptions::small_test()).unwrap();
        for i in 0..50u32 {
            db.put(format!("key{i:03}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
        // Newer versions land in the memtable.
        db.put(b"key010", b"fresh").unwrap();
        db.delete(b"key011").unwrap();
        let rows = db.scan(b"key009", 5).unwrap();
        let keys: Vec<String> =
            rows.iter().map(|(k, _)| String::from_utf8_lossy(k).into()).collect();
        assert_eq!(keys, vec!["key009", "key010", "key012", "key013", "key014"]);
        assert_eq!(rows[1].1, b"fresh".to_vec());
    }

    #[test]
    fn reopen_recovers_from_wal_and_sstables() {
        let fs = bytefs();
        {
            let db = Db::open(Arc::clone(&fs), "/db", DbOptions::small_test()).unwrap();
            for i in 0..100u32 {
                db.put(format!("stable{i:03}").as_bytes(), b"on-disk").unwrap();
            }
            db.flush().unwrap();
            // These stay only in the WAL (no flush afterwards).
            db.put(b"wal-only", b"recovered").unwrap();
        }
        let db = Db::open(Arc::clone(&fs), "/db", DbOptions::small_test()).unwrap();
        assert_eq!(db.get(b"stable050").unwrap(), Some(b"on-disk".to_vec()));
        assert_eq!(db.get(b"wal-only").unwrap(), Some(b"recovered".to_vec()));
    }

    #[test]
    fn works_on_a_baseline_file_system_too() {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let fs: Arc<dyn FileSystem> = Ext4Like::format(dev);
        let db = Db::open(fs, "/rocks", DbOptions::small_test()).unwrap();
        for i in 0..100u32 {
            db.put(format!("k{i}").as_bytes(), &[7u8; 64]).unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.get(b"k42").unwrap(), Some(vec![7u8; 64]));
        assert_eq!(db.stats().writes, 100);
    }

    #[test]
    fn wal_sync_every_write_is_respected() {
        let fs = bytefs();
        let dev = Arc::clone(fs.device());
        let opts = DbOptions { wal_sync: WalSync::EveryWrite, ..DbOptions::small_test() };
        let db = Db::open(fs, "/db", opts).unwrap();
        let before = dev.traffic().tx_commits;
        for i in 0..10u32 {
            db.put(format!("s{i}").as_bytes(), b"x").unwrap();
        }
        let after = dev.traffic().tx_commits;
        assert!(after - before >= 10, "every write forces a durable WAL sync");
    }
}
