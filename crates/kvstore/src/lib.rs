//! # kvstore — a small LSM-tree key-value store over any `fskit::FileSystem`
//!
//! The ByteFS paper evaluates real-application behaviour with YCSB running on
//! RocksDB (§5.1, Table 5). RocksDB itself is out of scope for this
//! reproduction, so this crate provides the closest structural equivalent that
//! exercises the same file-system access pattern:
//!
//! * a **write-ahead log** that receives small appends and periodic `fsync`s,
//! * an in-memory **memtable** flushed to immutable, sorted **SSTables**,
//! * tiered **compaction** that rewrites SSTables with large sequential I/O,
//! * point lookups that read small ranges of SSTable files, and range scans
//!   that stream through them.
//!
//! The store is generic over [`fskit::FileSystem`], so the same YCSB workload
//! runs unmodified on ByteFS and every baseline.
//!
//! ```
//! use kvstore::{Db, DbOptions};
//! use bytefs::{ByteFs, ByteFsConfig};
//! use mssd::{Mssd, MssdConfig, DramMode};
//!
//! # fn main() -> fskit::FsResult<()> {
//! let device = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
//! let fs = ByteFs::format(device, ByteFsConfig::default())?;
//! let db = Db::open(fs, "/db", DbOptions::default())?;
//! db.put(b"user42", b"profile-data")?;
//! assert_eq!(db.get(b"user42")?, Some(b"profile-data".to_vec()));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod db;
pub mod memtable;
pub mod sstable;
pub mod wal;

pub use db::{Db, DbOptions, DbStats, WalSync};
