//! Criterion micro-benchmarks of the core data structures the paper's design
//! leans on: the write-log skip-list index, log append/merge, the XOR
//! dirty-chunk scan, the extent tree and the bitmap allocators.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bytefs::alloc::BitmapAllocator;
use bytefs::extent::ExtentTree;
use fskit::pagecache::{dirty_chunks, modified_ratio};
use mssd::log::WriteLog;
use mssd::skiplist::SkipList;
use mssd::MssdConfig;

fn bench_skiplist(c: &mut Criterion) {
    c.bench_function("skiplist_insert_1k", |b| {
        b.iter(|| {
            let mut list = SkipList::with_seed(7);
            for k in 0..1000u64 {
                list.insert(black_box(k * 37 % 1009), k);
            }
            list.len()
        })
    });
    let list: SkipList<u64> = (0..10_000u64).map(|k| (k, k)).collect();
    c.bench_function("skiplist_lookup", |b| b.iter(|| black_box(list.get(black_box(7_777)))));
}

fn bench_write_log(c: &mut Criterion) {
    c.bench_function("writelog_append_64B", |b| {
        let cfg = MssdConfig::default();
        let mut log = WriteLog::new(&cfg);
        let data = [0xAAu8; 64];
        let mut i = 0u64;
        b.iter(|| {
            if log.append(i % 4096, ((i * 64) % 4096) as usize, &data, None).is_err() {
                log.reset();
            }
            i += 1;
        })
    });
    c.bench_function("writelog_merge_page", |b| {
        let cfg = MssdConfig::default();
        let mut log = WriteLog::new(&cfg);
        for i in 0..32 {
            log.append(5, i * 64, &[i as u8; 64], None).unwrap();
        }
        let mut page = vec![0u8; 4096];
        b.iter(|| log.merge_into(5, black_box(&mut page)))
    });
}

fn bench_xor_diff(c: &mut Criterion) {
    let original = vec![0u8; 4096];
    let mut current = original.clone();
    for i in (0..4096).step_by(512) {
        current[i] = 1;
    }
    c.bench_function("xor_dirty_chunks_4k", |b| {
        b.iter(|| dirty_chunks(black_box(&original), black_box(&current), 64))
    });
    c.bench_function("xor_modified_ratio_4k", |b| {
        b.iter(|| modified_ratio(black_box(&original), black_box(&current), 64))
    });
}

fn bench_extents_and_bitmap(c: &mut Criterion) {
    c.bench_function("extent_tree_sequential_insert_1k", |b| {
        b.iter(|| {
            let mut tree = ExtentTree::new();
            for i in 0..1000u64 {
                tree.insert(i, 10_000 + i);
            }
            tree.len()
        })
    });
    let mut tree = ExtentTree::new();
    for i in 0..1000u64 {
        tree.insert(i * 2, 5_000 + i * 3);
    }
    c.bench_function("extent_tree_lookup", |b| b.iter(|| black_box(tree.lookup(black_box(998)))));
    c.bench_function("bitmap_allocate_free", |b| {
        let mut alloc = BitmapAllocator::new(1 << 20);
        b.iter(|| {
            let idx = alloc.allocate().expect("space available");
            alloc.free(idx);
        })
    });
}

criterion_group!(
    name = structures;
    config = Criterion::default().sample_size(20);
    targets = bench_skiplist, bench_write_log, bench_xor_diff, bench_extents_and_bitmap
);
criterion_main!(structures);
