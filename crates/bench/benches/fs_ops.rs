//! Criterion benchmarks of end-to-end file-system operations (simulation-code
//! cost, not virtual device latency): create/write/fsync/read on ByteFS and
//! the Ext4-like and NOVA-like baselines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use fskit::OpenFlags;
use mssd::MssdConfig;
use workloads::FsKind;

fn bench_fs(c: &mut Criterion, kind: FsKind) {
    let label = kind.label();
    c.bench_function(&format!("{label}_create_write_fsync"), |b| {
        let (_dev, fs) = kind.build(MssdConfig::small_test());
        let payload = vec![0x42u8; 4096];
        let mut i = 0u64;
        b.iter(|| {
            let path = format!("/bench{i}");
            i += 1;
            let fd = fs.create(&path).expect("create");
            fs.write(fd, 0, black_box(&payload)).expect("write");
            fs.fsync(fd).expect("fsync");
            fs.close(fd).expect("close");
            fs.unlink(&path).expect("unlink");
        })
    });
    c.bench_function(&format!("{label}_read_4k"), |b| {
        let (_dev, fs) = kind.build(MssdConfig::small_test());
        let fd = fs.create("/readable").expect("create");
        fs.write(fd, 0, &vec![7u8; 16 << 10]).expect("write");
        fs.fsync(fd).expect("fsync");
        b.iter(|| black_box(fs.read(fd, 4096, 4096).expect("read")))
    });
    c.bench_function(&format!("{label}_small_overwrite_fsync"), |b| {
        let (_dev, fs) = kind.build(MssdConfig::small_test());
        let fd = fs.create("/hot").expect("create");
        fs.write(fd, 0, &vec![1u8; 8192]).expect("write");
        fs.fsync(fd).expect("fsync");
        let fd = fs.open("/hot", OpenFlags::read_write()).expect("open");
        b.iter(|| {
            fs.write(fd, 128, black_box(&[9u8; 64])).expect("write");
            fs.fsync(fd).expect("fsync");
        })
    });
}

fn fs_ops(c: &mut Criterion) {
    bench_fs(c, FsKind::ByteFs);
    bench_fs(c, FsKind::Ext4);
    bench_fs(c, FsKind::Nova);
}

criterion_group!(
    name = ops;
    config = Criterion::default().sample_size(20);
    targets = fs_ops
);
criterion_main!(ops);
