//! The unified bench-report JSON schema shared by every benchmark binary
//! and consumed by the `bench_compare` CI gate.
//!
//! Every bench that commits a `BENCH_*.json` artifact writes a
//! [`BenchReport`]: a `schema_version` tag, the bench name, the scale
//! factor and host parallelism the run was produced under, a flat list of
//! [`BenchEntry`] rows keyed by a stable string (e.g. `"bytefs/t4"` or
//! `"qd16/t4"`), and a `summary` map of report-level scalars (e.g.
//! `p99_ratio_on_vs_off`). The two first-class metrics every comparator
//! understands are `throughput_ops_s` and `p99_ns`; a value of zero means
//! "not applicable to this bench" and is never gated on. Everything else
//! rides in the entry's `extra` map.
//!
//! The workspace has no JSON dependency (all deps are vendored offline
//! stand-ins), so this module carries its own writer and a minimal parser —
//! just enough for the schema it emits.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version tag of the unified schema. Bump when a field changes meaning.
/// `bench_compare` accepts the current version and version 2 (which lacked
/// the first-class `p999_ns` field — it parses as 0, meaning "not
/// applicable"), and refuses anything else.
pub const SCHEMA_VERSION: u64 = 3;

/// Oldest schema version `bench_compare` still reads.
pub const MIN_SCHEMA_VERSION: u64 = 2;

/// One measured configuration of a bench.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchEntry {
    /// Stable key, unique within a report (e.g. `"bytefs/t4"`).
    pub key: String,
    /// Wall-clock throughput in operations per second; 0 when the bench has
    /// no throughput notion for this row.
    pub throughput_ops_s: f64,
    /// 99th-percentile per-operation latency in nanoseconds; 0 when not
    /// applicable. Histogram-derived (bounded to one log-linear bucket
    /// width), not sampled.
    pub p99_ns: u64,
    /// 99.9th-percentile per-operation latency in nanoseconds; 0 when not
    /// applicable (schema v3; v2 reports parse as 0).
    pub p999_ns: u64,
    /// Bench-specific scalars (thread counts, speedups, byte counts, ...).
    pub extra: BTreeMap<String, f64>,
}

/// A full bench report in the unified schema.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] for freshly written reports).
    pub schema_version: u64,
    /// Bench name (`"mt_scale"`, `"fs_scale"`, `"gc_pause"`,
    /// `"recovery_time"`, `"qd_sweep"`).
    pub bench: String,
    /// Scale factor the run used.
    pub scale: f64,
    /// `std::thread::available_parallelism()` of the producing host —
    /// wall-clock numbers are only comparable between equal values.
    pub host_cpus: usize,
    /// Measured rows.
    pub entries: Vec<BenchEntry>,
    /// Report-level scalars (e.g. `"p99_ratio_on_vs_off"`).
    pub summary: BTreeMap<String, f64>,
}

impl BenchReport {
    /// Starts a report for `bench` at `scale`, stamping the current host's
    /// parallelism.
    pub fn new(bench: &str, scale: f64) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            bench: bench.to_string(),
            scale,
            host_cpus: host_cpus(),
            entries: Vec::new(),
            summary: BTreeMap::new(),
        }
    }

    /// Looks up an entry by key.
    pub fn entry(&self, key: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(s, "  \"bench\": {},", json_str(&self.bench));
        let _ = writeln!(s, "  \"scale\": {},", json_f64(self.scale));
        let _ = writeln!(s, "  \"host_cpus\": {},", self.host_cpus);
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"key\": {}, \"throughput_ops_s\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"extra\": {{",
                json_str(&e.key),
                json_f64(e.throughput_ops_s),
                e.p99_ns,
                e.p999_ns
            );
            for (j, (k, v)) in e.extra.iter().enumerate() {
                let _ =
                    write!(s, "{}{}: {}", if j > 0 { ", " } else { "" }, json_str(k), json_f64(*v));
            }
            s.push_str("}}");
            s.push_str(if i + 1 < self.entries.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"summary\": {");
        for (j, (k, v)) in self.summary.iter().enumerate() {
            let _ = write!(s, "{}{}: {}", if j > 0 { ", " } else { "" }, json_str(k), json_f64(*v));
        }
        s.push_str("}\n}\n");
        s
    }

    /// Writes the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Parses a report from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object().ok_or("top level is not an object")?;
        let mut report = BenchReport {
            schema_version: obj.get("schema_version").and_then(Json::as_u64).unwrap_or(0),
            bench: obj.get("bench").and_then(Json::as_str).ok_or("missing \"bench\"")?.to_string(),
            scale: obj.get("scale").and_then(Json::as_f64).unwrap_or(1.0),
            host_cpus: obj.get("host_cpus").and_then(Json::as_u64).unwrap_or(0) as usize,
            entries: Vec::new(),
            summary: BTreeMap::new(),
        };
        if let Some(Json::Array(entries)) = obj.get("entries") {
            for e in entries {
                let eo = e.as_object().ok_or("entry is not an object")?;
                let mut entry = BenchEntry {
                    key: eo
                        .get("key")
                        .and_then(Json::as_str)
                        .ok_or("entry missing \"key\"")?
                        .to_string(),
                    throughput_ops_s: eo
                        .get("throughput_ops_s")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0),
                    p99_ns: eo.get("p99_ns").and_then(Json::as_u64).unwrap_or(0),
                    p999_ns: eo.get("p999_ns").and_then(Json::as_u64).unwrap_or(0),
                    extra: BTreeMap::new(),
                };
                if let Some(Json::Object(extra)) = eo.get("extra") {
                    for (k, v) in extra {
                        if let Some(f) = v.as_f64() {
                            entry.extra.insert(k.clone(), f);
                        }
                    }
                }
                report.entries.push(entry);
            }
        }
        if let Some(Json::Object(summary)) = obj.get("summary") {
            for (k, v) in summary {
                if let Some(f) = v.as_f64() {
                    report.summary.insert(k.clone(), f);
                }
            }
        }
        Ok(report)
    }

    /// Loads a report from a file.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O, syntax or schema problem.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Self::from_json(&text).map_err(|e| format!("{path}: {e}"))
    }
}

/// Parallelism available to this process; wall-clock throughput is bounded
/// by it, so reports carry it for comparability.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A minimal JSON value: exactly what the unified schema needs, nothing
/// more (no surrogate-pair escapes, no exponents beyond `f64::from_str`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n == n.trunc() => Some(*n as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str, so
                    // the boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 inside string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(out));
                }
                other => return Err(format!("expected , or ] got {other:?} at {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(out));
                }
                other => return Err(format!("expected , or }} got {other:?} at {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let mut r = BenchReport::new("qd_sweep", 0.5);
        r.entries.push(BenchEntry {
            key: "qd16/t4".into(),
            throughput_ops_s: 123456.75,
            p99_ns: 9800,
            p999_ns: 12000,
            extra: BTreeMap::from([("threads".to_string(), 4.0), ("qd".to_string(), 16.0)]),
        });
        r.entries.push(BenchEntry {
            key: "qd1/t4".into(),
            throughput_ops_s: 60000.0,
            p99_ns: 15000,
            p999_ns: 0,
            extra: BTreeMap::new(),
        });
        r.summary.insert("qd16_vs_qd1_4t".into(), 2.057);
        let back = BenchReport::from_json(&r.to_json()).expect("parse");
        assert_eq!(back, r);
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.entry("qd16/t4").unwrap().p99_ns, 9800);
        assert_eq!(back.entry("qd16/t4").unwrap().p999_ns, 12000);
    }

    #[test]
    fn v2_reports_without_p999_still_parse() {
        let v2 = r#"{
  "schema_version": 2,
  "bench": "gc_pause",
  "scale": 1,
  "host_cpus": 1,
  "entries": [
    {"key": "on", "throughput_ops_s": 100, "p99_ns": 5000, "extra": {}}
  ],
  "summary": {}
}"#;
        let r = BenchReport::from_json(v2).expect("v2 parses");
        assert_eq!(r.schema_version, 2);
        assert_eq!(r.entry("on").unwrap().p99_ns, 5000);
        assert_eq!(r.entry("on").unwrap().p999_ns, 0, "missing p999 defaults to not-applicable");
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let v = Json::parse(
            "{\"a\": [1, -2.5, 1e3, true, false, null], \"s\": \"x\\\"y\\nz\", \"o\": {}}",
        )
        .expect("parse");
        let o = v.as_object().unwrap();
        assert_eq!(o.get("s").and_then(Json::as_str), Some("x\"y\nz"));
        let Some(Json::Array(a)) = o.get("a") else { panic!("array") };
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}
