//! Figure 10: internal flash traffic for the micro-benchmarks, normalized to
//! Ext4.

use bench::{bench_config, mib, print_table, scale_from_args};
use workloads::micro::{Micro, MicroOp};
use workloads::{run_workload, FsKind};

fn main() {
    let scale = scale_from_args();
    let mut rows = Vec::new();
    for op in MicroOp::ALL {
        let mut totals = Vec::new();
        for kind in FsKind::MAIN {
            let w = Micro::new(op, scale);
            let run = run_workload(kind, bench_config(), &w, 3).expect("workload runs");
            totals.push((kind, run.flash_read_bytes(), run.flash_write_bytes()));
        }
        let ext4_total = totals.first().map(|(_, r, w)| r + w).unwrap_or(1).max(1);
        for (kind, r, w) in totals {
            rows.push(vec![
                op.label().to_string(),
                kind.label().to_string(),
                mib(r),
                mib(w),
                format!("{:.2}x", (r + w) as f64 / ext4_total as f64),
            ]);
        }
    }
    print_table(
        "Figure 10 — SSD flash traffic on micro-benchmarks (normalized to Ext4)",
        &["workload", "fs", "flash read", "flash write", "total vs Ext4"],
        &rows,
    );
    println!("Paper reference: ByteFS reduces flash traffic by ~2.9x vs Ext4 on average by");
    println!("coalescing small writes in the in-device write log.");
}
