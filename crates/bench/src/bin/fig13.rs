//! Figure 13: macro-benchmark throughput under different flash latencies
//! (25/200, 40/60, 3/80 and the CXL variant 3/80*) for ByteFS, F2FS and NOVA.

use bench::{print_table, scale_from_args};
use mssd::{MssdConfig, TimingProfile};
use workloads::filebench::{Filebench, Personality};
use workloads::oltp::Oltp;
use workloads::{run_workload, FsKind, Workload};

fn config_for(profile: TimingProfile) -> MssdConfig {
    MssdConfig::with_profile(profile).with_capacity(1 << 30).with_dram_region(16 << 20)
}

fn main() {
    let scale = scale_from_args();
    let mut workloads: Vec<Box<dyn Workload>> = Vec::new();
    for p in Personality::ALL {
        workloads.push(Box::new(Filebench::new(p, scale)));
    }
    workloads.push(Box::new(Oltp::new(scale)));

    let fses = [FsKind::ByteFs, FsKind::F2fs, FsKind::Nova];
    let mut rows = Vec::new();
    for w in &workloads {
        for kind in fses {
            let mut row = vec![w.name(), kind.label().to_string()];
            // Normalize to this file system's throughput under the default profile,
            // as the figure plots relative throughput per latency point.
            let baseline = run_workload(kind, config_for(TimingProfile::Default), w.as_ref(), 29)
                .expect("workload runs")
                .kops_per_sec;
            for profile in TimingProfile::all() {
                let run =
                    run_workload(kind, config_for(profile), w.as_ref(), 29).expect("workload runs");
                row.push(format!("{}: {:.2}x", profile.label(), run.kops_per_sec / baseline));
            }
            rows.push(row);
        }
    }
    print_table(
        "Figure 13 — throughput vs flash latency (normalized to each FS at 40/60)",
        &["workload", "fs", "25/200", "40/60", "3/80", "3/80* (CXL)"],
        &rows,
    );
    println!("Paper reference: ByteFS keeps its advantage across flash latencies; the gap grows");
    println!("with slower flash programs because the write log hides program latency.");
}
