//! Figure 8: host–SSD I/O traffic breakdown (data/metadata × read/write) for
//! the micro-benchmarks, normalized to NOVA.

use bench::{bench_config, mib, print_table, scale_from_args};
use mssd::stats::Direction;
use workloads::micro::{Micro, MicroOp};
use workloads::{run_workload, FsKind};

fn main() {
    let scale = scale_from_args();
    let mut rows = Vec::new();
    for op in MicroOp::ALL {
        let mut totals = Vec::new();
        for kind in FsKind::MAIN {
            let w = Micro::new(op, scale);
            let run = run_workload(kind, bench_config(), &w, 5).expect("workload runs");
            let t = &run.traffic;
            totals.push((
                kind,
                t.host_data_bytes(Direction::Read),
                t.host_data_bytes(Direction::Write),
                t.host_metadata_bytes(Direction::Read),
                t.host_metadata_bytes(Direction::Write),
            ));
        }
        let nova_total: u64 = totals
            .iter()
            .find(|(k, ..)| *k == FsKind::Nova)
            .map(|(_, a, b, c, d)| a + b + c + d)
            .unwrap_or(1)
            .max(1);
        for (kind, dr, dw, mr, mw) in totals {
            rows.push(vec![
                op.label().to_string(),
                kind.label().to_string(),
                mib(dr),
                mib(dw),
                mib(mr),
                mib(mw),
                format!("{:.2}x", (dr + dw + mr + mw) as f64 / nova_total as f64),
            ]);
        }
    }
    print_table(
        "Figure 8 — host-SSD traffic on micro-benchmarks (normalized to NOVA)",
        &["workload", "fs", "data read", "data write", "meta read", "meta write", "total vs NOVA"],
        &rows,
    );
    println!("Paper reference: ByteFS cuts metadata traffic by 11.4x vs Ext4 and 6.1x vs F2FS");
    println!("on average, and also beats NOVA/PMFS by avoiding double writes.");
}
