//! Figure 11: internal flash traffic for the macro-benchmarks, normalized to
//! Ext4.

use bench::{bench_config, mib, print_table, scale_from_args};
use workloads::filebench::{Filebench, Personality};
use workloads::oltp::Oltp;
use workloads::{run_workload, FsKind, Workload};

fn main() {
    let scale = scale_from_args();
    let mut workloads: Vec<Box<dyn Workload>> = Vec::new();
    for p in Personality::ALL {
        workloads.push(Box::new(Filebench::new(p, scale)));
    }
    workloads.push(Box::new(Oltp::new(scale)));

    let mut rows = Vec::new();
    for w in &workloads {
        let mut totals = Vec::new();
        for kind in FsKind::MAIN {
            let run = run_workload(kind, bench_config(), w.as_ref(), 3).expect("workload runs");
            totals.push((kind, run.flash_read_bytes(), run.flash_write_bytes()));
        }
        let ext4_total = totals.first().map(|(_, r, w)| r + w).unwrap_or(1).max(1);
        for (kind, r, wbytes) in totals {
            rows.push(vec![
                w.name(),
                kind.label().to_string(),
                mib(r),
                mib(wbytes),
                format!("{:.2}x", (r + wbytes) as f64 / ext4_total as f64),
            ]);
        }
    }
    print_table(
        "Figure 11 — SSD flash traffic on macro-benchmarks (normalized to Ext4)",
        &["workload", "fs", "flash read", "flash write", "total vs Ext4"],
        &rows,
    );
}
