//! Multi-threaded throughput scaling of the M-SSD hot path (wall-clock).
//!
//! Unlike the fig*/table* binaries, which report *virtual* (modelled) time,
//! this benchmark measures how fast the simulation itself runs when several
//! host threads hammer one shared [`Mssd`]: the property the sharded write-log
//! index, lock-free traffic counters and per-unit locking were built for.
//!
//! Three engines run against one shared device, each thread inside its own
//! 16 MB partition — the paper's own first-layer key, so threads map to
//! distinct write-log shards:
//!
//! * `bytefs`    — the write-log firmware ([`DramMode::WriteLog`]) driven
//!   through the byte interface (byte-granular writes, periodic `COMMIT`s,
//!   byte reads of recently written ranges): appends take only the
//!   partition's shard lock, reads covered by the log never touch the FTL.
//! * `pagecache` — the baseline firmware ([`DramMode::PageCache`]) on the
//!   same byte mix: accesses go through the sharded device cache and the
//!   channel-parallel FTL.
//! * `blockio`   — the write-log firmware driven through the **block**
//!   interface (4 KB reads/writes + periodic FLUSH): exercises the
//!   channel-parallel flash path (lock-striped L2P + per-channel units);
//!   with the old single flash mutex this could not scale at all.
//!
//! Usage: `mt_scale [scale] [output.json]` — scale multiplies the per-thread
//! op count (default 1.0); results are printed as a table and written as JSON
//! (default `BENCH_mt_scale.json`).

use std::sync::{Arc, Barrier};
use std::time::Instant;

use bench::{host_cpus, print_table, BenchEntry, BenchReport};
use mssd::log::PARTITION_BYTES;
use mssd::{Category, DramMode, Mssd, MssdConfig, TxId};

/// Per-thread operations at scale 1.0. Sized so that even the 8-thread sweep
/// stays under the 85 % log-cleaning threshold of the 256 MB region — the
/// bench isolates hot-path scaling, not cleaning stalls (fig14 covers those).
const OPS_PER_THREAD: usize = 100_000;

/// Thread counts swept (the acceptance gate compares 4 threads vs 1).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Bytes of each thread's working window inside its partition (a few MB so
/// byte reads usually hit log-resident data).
const WINDOW_BYTES: u64 = 4 << 20;

/// One measured configuration.
struct Sample {
    engine: &'static str,
    threads: usize,
    total_ops: usize,
    wall_ms: f64,
    ops_per_sec: f64,
    virtual_ms: f64,
}

fn device_config() -> MssdConfig {
    // 1 GiB volume with the paper's default 256 MB device DRAM region: large
    // enough that the measured run never triggers a stop-the-world log
    // cleaning, so the numbers isolate hot-path scaling.
    MssdConfig::default().with_capacity(1 << 30)
}

/// Tiny deterministic generator so each thread's op stream is reproducible.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Block-interface mix inside partition `t`: populate, then 2:5 write:read
/// with a periodic FLUSH. Exercises the channel-parallel flash path.
fn drive_block_thread(dev: &Mssd, t: usize, ops: usize) {
    let pages = 512u64; // 2 MB working set per thread
    let base = t as u64 * (PARTITION_BYTES / 4096);
    let mut rng = XorShift(0x0051_CADE ^ (t as u64) << 32 | 1);
    let page_buf = vec![0xB5u8; 4096];
    for p in 0..pages {
        dev.block_write(base + p, &page_buf, Category::Data);
    }
    for i in 0..ops {
        match i % 8 {
            0 | 1 => {
                dev.block_write(base + rng.below(pages), &page_buf, Category::Data);
            }
            2 if i % 512 == 2 => dev.flush(),
            _ => {
                let lba = base + rng.below(pages);
                std::hint::black_box(dev.block_read(lba, 1, Category::Data));
            }
        }
    }
}

/// Runs the ByteFS-style op mix: `ops` operations inside partition `t`.
fn drive_thread(dev: &Mssd, t: usize, ops: usize, commits: bool) {
    let base = t as u64 * PARTITION_BYTES;
    let slots = WINDOW_BYTES / 64;
    let mut rng = XorShift(0x9E37_79B9 ^ (t as u64) << 32 | 1);
    let mut tx = TxId((t as u32) << 16 | 1);
    let payload = [0xA5u8; 512];
    for i in 0..ops {
        match i % 8 {
            // Byte-granular metadata updates: 1-4 cachelines.
            0..=4 => {
                let addr = base + rng.below(slots) * 64;
                let len = 64 * (1 + rng.below(4) as usize);
                let txid = commits.then_some(tx);
                dev.byte_write(addr, &payload[..len], txid, Category::Inode);
            }
            // A larger data write (half a KB).
            5 => {
                let addr = base + rng.below(slots / 8) * 512;
                dev.byte_write(addr, &payload[..512], None, Category::Data);
            }
            // Read back a recently writable range (usually log-resident).
            6 => {
                let addr = base + rng.below(slots) * 64;
                let len = 64 * (1 + rng.below(4) as usize);
                std::hint::black_box(dev.byte_read(addr, len, Category::Inode));
            }
            // Commit the running transaction (write-log firmware only).
            _ => {
                if commits {
                    dev.commit(tx);
                    tx = TxId(tx.0 + 1);
                }
            }
        }
    }
}

/// Timed repetitions per configuration; the best (fastest) one is reported,
/// which filters out scheduler and frequency-scaling noise on busy hosts.
const REPEATS: usize = 3;

/// Which op mix an engine drives against the shared device.
#[derive(Clone, Copy, PartialEq)]
enum Engine {
    /// Byte-interface mix on the write-log firmware.
    ByteLog,
    /// Byte-interface mix on the baseline page-cache firmware.
    BytePageCache,
    /// Block-interface mix on the write-log firmware.
    BlockIo,
}

impl Engine {
    fn mode(self) -> DramMode {
        match self {
            Engine::BytePageCache => DramMode::PageCache,
            _ => DramMode::WriteLog,
        }
    }

    fn drive(self, dev: &Mssd, t: usize, ops: usize) {
        match self {
            Engine::ByteLog => drive_thread(dev, t, ops, true),
            Engine::BytePageCache => drive_thread(dev, t, ops, false),
            Engine::BlockIo => drive_block_thread(dev, t, ops),
        }
    }
}

/// Times one measured run on a fresh device. Returns (wall seconds, virtual
/// device-busy ms).
fn timed_run(engine: Engine, threads: usize, ops: usize) -> (f64, f64) {
    let dev = Mssd::new(device_config(), engine.mode());
    // Warm up allocator, device maps and branch predictors outside the timed
    // region (in a partition no measured thread uses), then reset so the
    // measured run starts from identical state for every thread count.
    engine.drive(&dev, 60, (ops / 10).max(500));
    if engine.mode() == DramMode::WriteLog {
        dev.force_clean();
    }
    dev.reset_stats();
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let dev = Arc::clone(&dev);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                engine.drive(&dev, t, ops);
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    let wall = start.elapsed().as_secs_f64();
    (wall, dev.snapshot().traffic.device_busy_ns as f64 / 1e6)
}

/// Measures one engine at one thread count (best of [`REPEATS`] runs).
fn run_config(engine_name: &'static str, engine: Engine, threads: usize, ops: usize) -> Sample {
    let (mut best_wall, mut best_virtual) = timed_run(engine, threads, ops);
    for _ in 1..REPEATS {
        let (wall, virt) = timed_run(engine, threads, ops);
        if wall < best_wall {
            best_wall = wall;
            best_virtual = virt;
        }
    }
    let total_ops = ops * threads;
    Sample {
        engine: engine_name,
        threads,
        total_ops,
        wall_ms: best_wall * 1e3,
        ops_per_sec: total_ops as f64 / best_wall,
        virtual_ms: best_virtual,
    }
}

fn write_json(path: &str, scale: f64, samples: &[Sample]) -> std::io::Result<()> {
    let mut report = BenchReport::new("mt_scale", scale);
    report.summary.insert("ops_per_thread".into(), (OPS_PER_THREAD as f64 * scale).trunc());
    for s in samples {
        let base = samples
            .iter()
            .find(|b| b.engine == s.engine && b.threads == 1)
            .map(|b| b.ops_per_sec)
            .unwrap_or(s.ops_per_sec);
        report.entries.push(BenchEntry {
            key: format!("{}/t{}", s.engine, s.threads),
            throughput_ops_s: (s.ops_per_sec * 1000.0).round() / 1000.0,
            p99_ns: 0,
            p999_ns: 0,
            extra: std::collections::BTreeMap::from([
                ("threads".to_string(), s.threads as f64),
                ("total_ops".to_string(), s.total_ops as f64),
                ("wall_ms".to_string(), (s.wall_ms * 1000.0).round() / 1000.0),
                ("speedup_vs_1t".to_string(), (s.ops_per_sec / base * 1000.0).round() / 1000.0),
                ("virtual_device_ms".to_string(), (s.virtual_ms * 1000.0).round() / 1000.0),
            ]),
        });
    }
    report.write(path)
}

fn main() {
    let scale = std::env::args().nth(1).and_then(|a| a.parse::<f64>().ok()).unwrap_or(1.0);
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_mt_scale.json".to_string());
    let ops = ((OPS_PER_THREAD as f64 * scale) as usize).max(1_000);
    eprintln!("mt_scale: {ops} ops/thread, host parallelism {}", host_cpus());

    // Throwaway configuration: brings the CPU out of its idle frequency state
    // so the first measured configuration is not systematically penalized.
    let _ = run_config("warmup", Engine::ByteLog, 2, ops / 4);

    let mut samples = Vec::new();
    for (name, engine) in [
        ("bytefs", Engine::ByteLog),
        ("pagecache", Engine::BytePageCache),
        ("blockio", Engine::BlockIo),
    ] {
        // Block ops move 4 KB each; fewer of them take comparable time. The
        // floor keeps even smoke-scale runs long enough (tens of ms) that
        // the CI scaling gate measures work, not timer noise.
        let engine_ops = if engine == Engine::BlockIo { (ops / 4).max(10_000) } else { ops };
        for threads in THREADS {
            let s = run_config(name, engine, threads, engine_ops);
            eprintln!(
                "{name:>9} x{threads}: {:>10.0} ops/s  ({:.0} ms wall)",
                s.ops_per_sec, s.wall_ms
            );
            samples.push(s);
        }
    }

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            let base = samples
                .iter()
                .find(|b| b.engine == s.engine && b.threads == 1)
                .map(|b| b.ops_per_sec)
                .unwrap_or(s.ops_per_sec);
            vec![
                s.engine.to_string(),
                s.threads.to_string(),
                format!("{}", s.total_ops),
                format!("{:.0}", s.wall_ms),
                format!("{:.0}", s.ops_per_sec),
                format!("{:.2}x", s.ops_per_sec / base),
            ]
        })
        .collect();
    print_table(
        "mt_scale — wall-clock device throughput (shared Mssd)",
        &["engine", "threads", "ops", "wall ms", "ops/s", "speedup"],
        &rows,
    );

    if let Err(e) = write_json(&out_path, scale, &samples) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("results written to {out_path}");
}
