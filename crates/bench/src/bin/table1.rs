//! Table 1: characteristics of the modelled memory devices.
//!
//! Reports the M-SSD latencies and bandwidths as measured on the device model
//! (byte-interface cacheline accesses, block-interface 4 KB sequential
//! transfers), next to the configured NAND parameters.

use bench::{bench_config, print_table};
use mssd::{Category, DramMode, Mssd};

fn main() {
    let cfg = bench_config();
    let dev = Mssd::new(cfg.clone(), DramMode::WriteLog);
    let clock = dev.clock();

    // Cacheline write / read latency against device DRAM.
    let t0 = clock.now_ns();
    dev.byte_write(0, &[0u8; 64], None, Category::Other);
    let write_lat = clock.now_ns() - t0;
    let t0 = clock.now_ns();
    dev.byte_read(0, 64, Category::Other);
    let read_lat = clock.now_ns() - t0;

    // Sequential 4 KB block bandwidth over 32 MB.
    let pages = 8192usize;
    let buf = vec![0u8; 4096];
    let t0 = clock.now_ns();
    for i in 0..pages {
        dev.block_write(i as u64, &buf, Category::Other);
    }
    let write_elapsed = clock.now_ns() - t0;
    let t0 = clock.now_ns();
    for i in 0..pages {
        dev.block_read(i as u64, 1, Category::Other);
    }
    let read_elapsed = clock.now_ns() - t0;
    let gbs = |bytes: usize, ns: u64| bytes as f64 / (ns as f64 / 1e9) / 1e9;

    print_table(
        "Table 1 — modelled M-SSD characteristics",
        &["metric", "measured", "paper"],
        &[
            vec![
                "cacheline read latency".into(),
                format!("{:.1} us", read_lat as f64 / 1e3),
                "4.8 us".into(),
            ],
            vec![
                "cacheline write latency".into(),
                format!("{:.1} us", write_lat as f64 / 1e3),
                "0.6 us".into(),
            ],
            vec![
                "seq read bandwidth (4 KB)".into(),
                format!("{:.2} GB/s", gbs(pages * 4096, read_elapsed)),
                "3.5 GB/s".into(),
            ],
            vec![
                "seq write bandwidth (4 KB)".into(),
                format!("{:.2} GB/s", gbs(pages * 4096, write_elapsed)),
                "2.5 GB/s".into(),
            ],
            vec![
                "flash read latency".into(),
                format!("{} us", cfg.flash_read_ns / 1000),
                "40 us".into(),
            ],
            vec![
                "flash program latency".into(),
                format!("{} us", cfg.flash_write_ns / 1000),
                "60 us".into(),
            ],
        ],
    );
}
