//! Figure 1: host–SSD traffic breakdown of Ext4-like and F2FS-like by
//! file-system data structure, for the micro-benchmarks and the macro
//! workloads, in both directions.

use bench::{bench_config, print_table, scale_from_args};
use mssd::stats::Direction;
use workloads::amplification::TrafficBreakdown;
use workloads::filebench::{Filebench, Personality};
use workloads::micro::{Micro, MicroOp};
use workloads::oltp::Oltp;
use workloads::{run_workload, FsKind, Workload};

fn main() {
    let scale = scale_from_args();
    let mut workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Micro::new(MicroOp::Mkdir, scale)),
        Box::new(Micro::new(MicroOp::Rmdir, scale)),
        Box::new(Micro::new(MicroOp::Create, scale)),
        Box::new(Micro::new(MicroOp::Delete, scale)),
    ];
    for p in Personality::ALL {
        workloads.push(Box::new(Filebench::new(p, scale)));
    }
    workloads.push(Box::new(Oltp::new(scale)));

    for dir in [Direction::Write, Direction::Read] {
        let mut rows = Vec::new();
        for kind in [FsKind::Ext4, FsKind::F2fs] {
            for w in &workloads {
                let run = run_workload(kind, bench_config(), w.as_ref(), 7).expect("workload runs");
                let breakdown = TrafficBreakdown::new(&run.traffic, dir);
                rows.push(vec![
                    kind.label().to_string(),
                    run.workload.clone(),
                    breakdown.format_line(),
                ]);
            }
        }
        let title = match dir {
            Direction::Write => "Figure 1 (a,b) — write traffic breakdown",
            Direction::Read => "Figure 1 (c,d) — read traffic breakdown",
        };
        print_table(title, &["fs", "workload", "per-structure breakdown"], &rows);
    }
}
