//! Foreground write-latency impact of log cleaning (wall-clock).
//!
//! The double-buffered background cleaner exists so that log cleaning stays
//! off the host's critical path: writers flip to a fresh active region and
//! keep appending while sealed regions drain on the cleaner thread. This
//! benchmark measures exactly that property: the wall-clock latency
//! distribution (p50/p99/p99.9/max) of individual byte-interface writes on
//! one device where cleaning is **continuously active** (log region much
//! smaller than the working set) versus one where cleaning is **idle** (log
//! region big enough that the run never crosses the threshold).
//!
//! The acceptance target for the cleaning path is that active-cleaning p99
//! stays within 2x of the idle p99 — stop-the-world cleaning fails this by
//! orders of magnitude because every threshold crossing stalls a writer for
//! a full region drain.
//!
//! Usage: `gc_pause [scale] [output.json]` — scale multiplies the op count
//! (default 1.0); results are printed as a table and written as JSON
//! (default `BENCH_gc_pause.json`).

use std::time::Instant;

use bench::{host_cpus, print_table, BenchEntry, BenchReport};
use mssd::{Category, DramMode, Mssd, MssdConfig};
use workloads::Histogram;

/// Measured byte writes at scale 1.0.
const OPS: usize = 150_000;

/// Byte window the writer cycles through (8 MB: four times the active log
/// region in the cleaning-on configuration).
const WINDOW_BYTES: u64 = 8 << 20;

/// Tiny deterministic generator (xorshift64).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

struct Sample {
    config: &'static str,
    ops: usize,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
    log_cleanings: u64,
    fg_stalls: u64,
    bg_cleaned_pages: u64,
}

/// Runs `ops` byte writes against a fresh device and returns the per-op
/// latency distribution. `log_bytes` decides whether cleaning is active
/// (2 MB region under an 8 MB working window) or idle (64 MB region).
fn run(config: &'static str, log_bytes: usize, ops: usize) -> Sample {
    let cfg = MssdConfig::default().with_capacity(256 << 20).with_dram_region(log_bytes);
    let dev = Mssd::new(cfg, DramMode::WriteLog);
    let slots = WINDOW_BYTES / 64;
    let mut rng = XorShift(0x6C0F_FEE5);
    let payload = [0x5Au8; 256];
    // Warm up maps and the allocator outside the measured loop.
    for i in 0..(ops / 20).max(500) {
        let addr = (rng.next() % slots) * 64;
        dev.byte_write(addr, &payload[..64], None, Category::Data);
        std::hint::black_box(i);
    }
    dev.reset_stats();
    // O(1) histogram recording inside the measured loop — no per-op
    // allocation, no post-hoc sort.
    let mut lat = Histogram::new();
    for _ in 0..ops {
        let addr = (rng.next() % slots) * 64;
        let len = 64 * (1 + (rng.next() % 4) as usize);
        let t0 = Instant::now();
        dev.byte_write(addr, &payload[..len], None, Category::Data);
        lat.record(t0.elapsed().as_nanos() as u64);
    }
    // Quiesce before snapshotting so the cleaning counters include the pass
    // still in flight when the measured loop ended.
    dev.quiesce_cleaning();
    let t = dev.traffic();
    Sample {
        config,
        ops,
        p50_ns: lat.value_at(0.50),
        p99_ns: lat.value_at(0.99),
        p999_ns: lat.value_at(0.999),
        max_ns: lat.max(),
        log_cleanings: t.log_cleanings,
        fg_stalls: t.log_fg_stalls,
        bg_cleaned_pages: t.log_bg_cleaned_pages,
    }
}

fn write_json(path: &str, scale: f64, samples: &[Sample], ratio: f64) -> std::io::Result<()> {
    let mut report = BenchReport::new("gc_pause", scale);
    report.summary.insert("p99_ratio_on_vs_off".into(), (ratio * 1000.0).round() / 1000.0);
    for s in samples {
        report.entries.push(BenchEntry {
            key: s.config.to_string(),
            throughput_ops_s: 0.0,
            p99_ns: s.p99_ns,
            p999_ns: s.p999_ns,
            extra: std::collections::BTreeMap::from([
                ("ops".to_string(), s.ops as f64),
                ("p50_ns".to_string(), s.p50_ns as f64),
                ("max_ns".to_string(), s.max_ns as f64),
                ("log_cleanings".to_string(), s.log_cleanings as f64),
                ("fg_stalls".to_string(), s.fg_stalls as f64),
                ("bg_cleaned_pages".to_string(), s.bg_cleaned_pages as f64),
            ]),
        });
    }
    report.write(path)
}

fn main() {
    let scale = std::env::args().nth(1).and_then(|a| a.parse::<f64>().ok()).unwrap_or(1.0);
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_gc_pause.json".to_string());
    let ops = ((OPS as f64 * scale) as usize).max(5_000);
    eprintln!("gc_pause: {ops} byte writes per config, host parallelism {}", host_cpus());

    // Warm the CPU out of idle states so the first config is not penalized.
    let _ = run("warmup", 64 << 20, ops / 10);

    // Best of three per configuration (lowest p99): a single capture on a
    // busy or single-CPU host can invert the on/off comparison outright —
    // scheduler preemptions inside the measured loop dwarf the modelled
    // effect being measured.
    const REPEATS: usize = 3;
    let best = |config: &'static str, log_bytes: usize| {
        let mut best = run(config, log_bytes, ops);
        for _ in 1..REPEATS {
            let s = run(config, log_bytes, ops);
            if s.p99_ns < best.p99_ns {
                best = s;
            }
        }
        best
    };
    let on = best("cleaning_on", 2 << 20);
    let off = best("cleaning_off", 64 << 20);
    let ratio = on.p99_ns as f64 / off.p99_ns.max(1) as f64;

    let samples = [on, off];
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.config.to_string(),
                format!("{}", s.ops),
                format!("{}", s.p50_ns),
                format!("{}", s.p99_ns),
                format!("{}", s.p999_ns),
                format!("{}", s.max_ns),
                format!("{}", s.log_cleanings),
                format!("{}", s.fg_stalls),
            ]
        })
        .collect();
    print_table(
        "gc_pause — foreground byte-write latency vs log cleaning (wall-clock ns)",
        &["config", "ops", "p50", "p99", "p99.9", "max", "cleanings", "fg stalls"],
        &rows,
    );
    println!("p99 cleaning-on / cleaning-off: {ratio:.2}x (target <= 2x)");

    if let Err(e) = write_json(&out_path, scale, &samples, ratio) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("results written to {out_path}");
}
