//! Figure 6: overall throughput of Ext4/F2FS/NOVA/PMFS/ByteFS across the
//! micro-benchmarks, macro-benchmarks and YCSB, normalized to Ext4.

use bench::{bench_config, print_table, scale_from_args};
use workloads::filebench::{Filebench, Personality};
use workloads::micro::{Micro, MicroOp};
use workloads::oltp::Oltp;
use workloads::ycsb::{run_ycsb, YcsbSpec, YcsbWorkload};
use workloads::{run_workload, FsKind, Workload};

fn main() {
    let scale = scale_from_args();

    // File-system workloads.
    let mut fs_workloads: Vec<Box<dyn Workload>> = Vec::new();
    for op in MicroOp::ALL {
        fs_workloads.push(Box::new(Micro::new(op, scale)));
    }
    for p in Personality::ALL {
        fs_workloads.push(Box::new(Filebench::new(p, scale)));
    }
    fs_workloads.push(Box::new(Oltp::new(scale)));

    let mut rows = Vec::new();
    for w in &fs_workloads {
        let mut kops = Vec::new();
        for kind in FsKind::MAIN {
            let run = run_workload(kind, bench_config(), w.as_ref(), 13).expect("workload runs");
            kops.push((kind, run.kops_per_sec));
        }
        let ext4 = kops[0].1;
        let mut row = vec![w.name()];
        for (kind, v) in &kops {
            row.push(format!("{kind}: {:.2} kops/s ({:.2}x)", v, v / ext4));
        }
        rows.push(row);
    }

    // YCSB workloads.
    for ycsb in YcsbWorkload::ALL {
        let spec = YcsbSpec::new(ycsb, scale);
        let mut kops = Vec::new();
        for kind in FsKind::MAIN {
            let (dev, fs) = kind.build(bench_config());
            let result = run_ycsb(&dev, fs, &spec, 13).expect("ycsb runs");
            kops.push((kind, result.kops_per_sec));
        }
        let ext4 = kops[0].1;
        let mut row = vec![ycsb.label().to_string()];
        for (kind, v) in &kops {
            row.push(format!("{kind}: {:.2} kops/s ({:.2}x)", v, v / ext4));
        }
        rows.push(row);
    }

    print_table(
        "Figure 6 — throughput normalized to Ext4",
        &["workload", "E", "F", "N", "P", "B"],
        &rows,
    );
    println!("Paper reference: ByteFS outperforms Ext4 by up to 2.7x overall (6x on create),");
    println!("F2FS by up to 2.4x; NOVA/PMFS lag on read-heavy workloads.");
}
