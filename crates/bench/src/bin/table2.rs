//! Table 2: read/write I/O amplification of the block-interface file systems
//! (Ext4-like and F2FS-like) across the macro workloads.

use bench::{bench_config, print_table, scale_from_args};
use workloads::amplification::AmplificationRow;
use workloads::filebench::{Filebench, Personality};
use workloads::oltp::Oltp;
use workloads::{run_workload, FsKind, Workload};

fn main() {
    let scale = scale_from_args();
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Filebench::new(Personality::Varmail, scale)),
        Box::new(Filebench::new(Personality::Fileserver, scale)),
        Box::new(Filebench::new(Personality::Webproxy, scale)),
        Box::new(Filebench::new(Personality::Webserver, scale)),
        Box::new(Oltp::new(scale)),
    ];

    let mut rows = Vec::new();
    for kind in [FsKind::Ext4, FsKind::F2fs, FsKind::ByteFs] {
        for w in &workloads {
            let run =
                run_workload(kind, bench_config(), w.as_ref(), 42).expect("workload run succeeds");
            let amp = AmplificationRow::from_run(&run);
            rows.push(vec![
                kind.label().to_string(),
                run.workload.clone(),
                format!("{:.2}x", amp.write_amplification),
                format!("{:.2}x", amp.read_amplification),
            ]);
        }
    }
    print_table(
        "Table 2 — I/O amplification (host traffic / application traffic)",
        &["fs", "workload", "write amp", "read amp"],
        &rows,
    );
    println!("Paper reference: Ext4 write amplification 1.4-6.2x, read 1.1-1.7x; F2FS lower.");
}
