//! §5.5: recovery time of ByteFS after a crash.
//!
//! Runs a write-heavy YCSB-A phase on ByteFS, powers the system off without
//! unmounting, and measures the firmware `RECOVER()` pass plus remount on the
//! virtual clock.

use bench::{bench_config, print_table, scale_from_args};
use bytefs::{ByteFs, ByteFsConfig};
use workloads::ycsb::{run_ycsb, YcsbSpec, YcsbWorkload};
use workloads::FsKind;

fn main() {
    let scale = scale_from_args();
    let (dev, fs) = FsKind::ByteFs.build(bench_config());
    let spec = YcsbSpec::new(YcsbWorkload::A, scale);
    let result = run_ycsb(&dev, fs, &spec, 37).expect("ycsb runs");

    // Power failure: host state is gone, battery-backed device DRAM survives.
    dev.crash();
    let before_ns = dev.clock().now_ns();
    let snapshot = dev.snapshot();
    let remounted = ByteFs::mount(dev.clone(), ByteFsConfig::full()).expect("remount succeeds");
    let report = remounted.recover_after_crash();
    let total_ns = dev.clock().now_ns() - before_ns;

    print_table(
        "Recovery after crash (paper §5.5: 4.2 s on a 1 GB device DRAM image)",
        &["metric", "value"],
        &[
            vec!["YCSB-A ops before crash".into(), format!("{}", result.ops)],
            vec!["log entries at crash".into(), format!("{}", snapshot.log_entries)],
            vec!["log bytes at crash".into(), format!("{}", snapshot.log_used_bytes)],
            vec!["entries scanned".into(), format!("{}", report.scanned_entries)],
            vec!["uncommitted entries discarded".into(), format!("{}", report.discarded_entries)],
            vec!["flash pages flushed".into(), format!("{}", report.flushed_pages)],
            vec![
                "firmware recovery time".into(),
                format!("{:.2} ms", report.duration_ns as f64 / 1e6),
            ],
            vec![
                "total remount + recovery time".into(),
                format!("{:.2} ms", total_ns as f64 / 1e6),
            ],
        ],
    );
    println!("Note: the harness device DRAM region is 16 MB (vs 1 GB in the paper), so the");
    println!("absolute recovery time scales down proportionally.");
}
