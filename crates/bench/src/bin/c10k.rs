//! c10k — thousands of logical clients over a handful of OS threads.
//!
//! The synchronous multi-queue front end ties one OS thread to each SQ/CQ
//! pair, so "more clients" means "more threads" and concurrency caps out at
//! the host's core count. The async runtime ([`mssd::Runtime`]) breaks that
//! coupling: every logical client is a future, the reactor multiplexes them
//! over a fixed set of queue lanes, and `QueueFull` backpressure parks
//! submitters instead of erroring. This bench measures the claim: 1k/4k/10k
//! concurrent clients driven over at most 8 executor threads must sustain
//! the throughput the committed `qd_sweep` bench reports for batched qd=64
//! submission — the best the thread-per-queue design achieves.
//!
//! Wall-clock numbers are not portable between hosts, so the qd=64 reference
//! is re-measured *in this binary* with the same command generator and the
//! same op budget; the `cN_vs_qd64` summary ratios compare like with like.
//! The CI gate reads `best_vs_qd64` (skipped on hosts below 2 CPUs where an
//! extra worker thread cannot help).
//!
//! Each client's op stream is the `qd_sweep` shape — runs of adjacent
//! cacheline writes (the doorbell-coalescing sweet spot), every 8th command
//! a 128-byte read, every 4th run transactional with a COMMIT per 32 tx
//! writes — submitted in batches through [`mssd::Reactor::submit_batch`].
//! The reported p99 is the wall latency of a sampled batch from submission
//! to resolution, which *includes* time parked on a full SQ: tail latency
//! under fan-in is exactly what the gate bounds.
//!
//! Usage: `c10k [scale] [output.json]` — scale multiplies the total op
//! budget (default 1.0); results go to `BENCH_c10k.json`.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use bench::{host_cpus, print_table, BenchEntry, BenchReport};
use mssd::log::PARTITION_BYTES;
use mssd::queue::Command;
use mssd::{Category, DramMode, Mssd, MssdConfig, Runtime, TxId};
use workloads::Histogram;

/// Total commands per configuration at scale 1.0, split across clients.
const OPS_TOTAL: usize = 1_920_000;

/// Logical client counts swept.
const CLIENTS: [usize; 3] = [1000, 4000, 10_000];

/// Reactor queue lanes (clients hash onto these).
const LANES: usize = 32;

/// SQ depth per lane — deep enough that several client batches queue behind
/// one doorbell, shallow enough that 10k clients spend real time parked.
const DEPTH: usize = 256;

/// Commands per async submitted batch. A client future can fill a whole SQ
/// in one grant precisely because it does not block an OS thread while the
/// batch is in flight — deeper batches are the async design's advantage, and
/// the bench uses it.
const BATCH: usize = 64;

/// The synchronous reference's queue depth: the committed qd_sweep winner.
const REF_QD: usize = 64;

/// Timed repetitions per configuration; the best run is reported.
const REPEATS: usize = 3;

/// Every `LAT_SAMPLE`-th batch is wall-timed (submit → resolution).
const LAT_SAMPLE: usize = 8;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Bytes of each client's working window inside its lane's partition.
/// Smaller than qd_sweep's 4 MiB because a partition is shared by every
/// client on the lane; windows of co-resident clients may overlap, which is
/// harmless — the stream never verifies data, only drives the device.
const WINDOW_BYTES: u64 = 1 << 20;

/// Deterministic per-client command stream (the qd_sweep shape).
struct CmdGen {
    rng: XorShift,
    base: u64,
    slots: u64,
    cursor: u64,
    run_left: u64,
    tag: u8,
    tx: TxId,
    tx_writes: u32,
}

impl CmdGen {
    /// `stream` seeds the RNG and the transaction-id range (1024 ids per
    /// stream — far more commits than any stream issues), `base` anchors the
    /// window.
    fn new(stream: usize, base: u64) -> Self {
        Self {
            rng: XorShift((0x51DE_CADE ^ ((stream as u64) << 24)) | 1),
            base,
            slots: WINDOW_BYTES / 64,
            cursor: 0,
            run_left: 0,
            tag: 1,
            tx: TxId((stream as u32 + 1) << 10),
            tx_writes: 0,
        }
    }

    fn next_command(&mut self) -> Command {
        if self.tx_writes >= 32 {
            self.tx_writes = 0;
            let cmd = Command::Commit { txid: self.tx };
            self.tx = TxId(self.tx.0 + 1);
            return cmd;
        }
        if self.run_left == 0 {
            if self.rng.below(8) == 0 {
                let addr = self.base + self.rng.below(self.slots) * 64;
                return Command::ByteRead { addr, len: 128, cat: Category::Inode };
            }
            self.cursor = self.rng.below(self.slots - 32);
            self.run_left = 8 + self.rng.below(16);
            self.tag = self.tag.wrapping_add(1);
        }
        self.run_left -= 1;
        let addr = self.base + self.cursor * 64;
        self.cursor += 1;
        let transactional = self.tag.is_multiple_of(4);
        if transactional {
            self.tx_writes += 1;
        }
        Command::ByteWrite {
            addr,
            data: vec![self.tag; 64],
            txid: transactional.then_some(self.tx),
            cat: Category::Inode,
        }
    }
}

/// One logical client: submits `ops` commands in `BATCH`-sized chunks over
/// its reactor lane, awaiting each batch. Returns a histogram of sampled
/// batch wall latencies (ns) and the count of non-Ok outcomes (must be zero
/// — the bench runs no fault plan).
async fn drive_client(rt: Runtime, client: usize, ops: usize) -> (Histogram, u64) {
    let reactor = Arc::clone(rt.reactor());
    let lane = reactor.lane_for(client);
    let base = lane as u64 * PARTITION_BYTES
        + ((client / LANES) as u64 * WINDOW_BYTES) % (PARTITION_BYTES - WINDOW_BYTES);
    let mut gen = CmdGen::new(client, base);
    let mut lat = Histogram::new();
    let mut errors = 0u64;
    let mut issued = 0usize;
    let mut batch_no = 0usize;
    while issued < ops {
        let n = BATCH.min(ops - issued);
        let cmds: Vec<Command> = (0..n).map(|_| gen.next_command()).collect();
        issued += n;
        let sample = batch_no.is_multiple_of(LAT_SAMPLE);
        batch_no += 1;
        let t0 = sample.then(Instant::now);
        let outcomes = reactor.submit_batch(lane, cmds).await;
        if let Some(t0) = t0 {
            lat.record(t0.elapsed().as_nanos() as u64);
        }
        for o in outcomes {
            match o {
                Ok(c) if c.status.is_ok() => {}
                _ => errors += 1,
            }
        }
    }
    (lat, errors)
}

/// The in-bin reference: the committed-best synchronous shape, qd=64 batched
/// submission with one OS thread per queue (qd_sweep's drive loop).
fn drive_sync_thread(dev: &Arc<Mssd>, thread: usize, ops: usize) -> Histogram {
    // The reference gets qd_sweep's transaction-id spacing: at 240k ops per
    // thread it issues far more than 1024 commits.
    let mut gen = CmdGen::new(thread, thread as u64 * PARTITION_BYTES);
    gen.tx = TxId((thread as u32 + 1) << 20);
    let mut lat = Histogram::new();
    let mut q = dev.open_queue(REF_QD);
    let mut sampled: Vec<(usize, Instant)> = Vec::with_capacity(REF_QD / LAT_SAMPLE + 1);
    let mut issued = 0usize;
    while issued < ops {
        let batch = REF_QD.min(ops - issued);
        sampled.clear();
        for i in 0..batch {
            let cmd = gen.next_command();
            if issued.is_multiple_of(LAT_SAMPLE) {
                sampled.push((i, Instant::now()));
            }
            q.submit(cmd).expect("queue drained before each batch");
            issued += 1;
        }
        q.ring_doorbell();
        let mut next_sample = sampled.iter().peekable();
        let mut idx = 0usize;
        while q.poll().is_some() {
            if let Some((i, t0)) = next_sample.peek() {
                if *i == idx {
                    lat.record(t0.elapsed().as_nanos() as u64);
                    next_sample.next();
                }
            }
            idx += 1;
        }
    }
    lat
}

fn fresh_device(warm_ops: usize) -> Arc<Mssd> {
    let cfg = MssdConfig::default().with_capacity(1 << 30);
    let dev = Mssd::new(cfg, DramMode::WriteLog);
    // Warm up in a partition no measured client or thread uses.
    drive_sync_thread(&dev, 60, warm_ops.max(500));
    dev.force_clean();
    dev.reset_stats();
    dev
}

/// One timed async run: `clients` futures over `workers` executor threads.
/// Returns (wall seconds, sampled batch latency histogram).
fn timed_async(clients: usize, workers: usize, total_ops: usize) -> (f64, Histogram) {
    let ops_per_client = (total_ops / clients).max(16);
    let dev = fresh_device(total_ops / 10);
    let rt = Runtime::new(&dev, workers, LANES, DEPTH);
    let start = Instant::now();
    let handles: Vec<_> =
        (0..clients).map(|c| rt.spawn(drive_client(rt.clone(), c, ops_per_client))).collect();
    let (mut lat, mut errors) = (Histogram::new(), 0u64);
    rt.block_on(async {
        for h in handles {
            let (l, e) = h.await;
            lat.merge(&l);
            errors += e;
        }
    });
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(errors, 0, "fault-free run completed with errors");
    (wall, lat)
}

/// One timed sync-reference run: qd=64, one thread per queue.
fn timed_sync(threads: usize, total_ops: usize) -> (f64, Histogram) {
    let ops = (total_ops / threads).max(16);
    let dev = fresh_device(total_ops / 10);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let dev = Arc::clone(&dev);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                drive_sync_thread(&dev, t, ops)
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let mut lat = Histogram::new();
    for h in handles {
        lat.merge(&h.join().expect("bench thread panicked"));
    }
    let wall = start.elapsed().as_secs_f64();
    (wall, lat)
}

struct Sample {
    key: String,
    clients: usize,
    threads: usize,
    total_ops: usize,
    wall_ms: f64,
    ops_per_sec: f64,
    p99_ns: u64,
    p999_ns: u64,
}

fn best_of<F: Fn() -> (f64, Histogram)>(run: F) -> (f64, Histogram) {
    let (mut wall, mut lat) = run();
    for _ in 1..REPEATS {
        let (w, l) = run();
        if w < wall {
            wall = w;
            lat = l;
        }
    }
    (wall, lat)
}

fn main() {
    let scale = std::env::args().nth(1).and_then(|a| a.parse::<f64>().ok()).unwrap_or(1.0);
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_c10k.json".to_string());
    // The floor keeps smoke runs long enough to measure work, not timer
    // noise, while still giving every client at least one batch.
    let total_ops = ((OPS_TOTAL as f64 * scale) as usize).max(160_000);
    // On a single-CPU host a background worker thread only adds scheduler
    // thrash; caller-driven mode (the block_on thread doubles as the one
    // worker) is both the honest and the fast configuration there.
    let workers = if host_cpus() > 1 { host_cpus().min(8) } else { 0 };
    let ref_threads = host_cpus().min(8);
    eprintln!("c10k: {total_ops} total ops, {workers} workers, host parallelism {}", host_cpus());

    // Bring the CPU out of idle so the first configuration is not penalized.
    let _ = timed_async(64, workers, total_ops / 8);

    let mut samples = Vec::new();
    let (wall, lat) = best_of(|| timed_sync(ref_threads, total_ops));
    let ref_ops = (total_ops / ref_threads).max(16) * ref_threads;
    samples.push(Sample {
        key: format!("qd64/t{ref_threads}"),
        clients: ref_threads,
        threads: ref_threads,
        total_ops: ref_ops,
        wall_ms: wall * 1e3,
        ops_per_sec: ref_ops as f64 / wall,
        p99_ns: lat.value_at(0.99),
        p999_ns: lat.value_at(0.999),
    });
    for clients in CLIENTS {
        let (wall, lat) = best_of(|| timed_async(clients, workers, total_ops));
        let ops = (total_ops / clients).max(16) * clients;
        samples.push(Sample {
            key: format!("c{clients}"),
            clients,
            threads: workers,
            total_ops: ops,
            wall_ms: wall * 1e3,
            ops_per_sec: ops as f64 / wall,
            p99_ns: lat.value_at(0.99),
            p999_ns: lat.value_at(0.999),
        });
    }
    let reference = samples[0].ops_per_sec;
    for s in &samples {
        eprintln!(
            "{:>9}: {:>10.0} ops/s  p99 {:>9} ns  ({:.0} ms wall, {:.2}x ref)",
            s.key,
            s.ops_per_sec,
            s.p99_ns,
            s.wall_ms,
            s.ops_per_sec / reference
        );
    }

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.key.clone(),
                s.clients.to_string(),
                s.threads.to_string(),
                format!("{}", s.total_ops),
                format!("{:.0}", s.wall_ms),
                format!("{:.0}", s.ops_per_sec),
                format!("{}", s.p99_ns),
                format!("{}", s.p999_ns),
                format!("{:.2}x", s.ops_per_sec / reference),
            ]
        })
        .collect();
    print_table(
        "c10k — async client fan-in vs thread-per-queue qd=64 (shared Mssd)",
        &[
            "config", "clients", "threads", "ops", "wall ms", "ops/s", "p99 ns", "p99.9 ns",
            "vs qd64",
        ],
        &rows,
    );

    let mut report = BenchReport::new("c10k", scale);
    for s in &samples {
        report.entries.push(BenchEntry {
            key: s.key.clone(),
            throughput_ops_s: (s.ops_per_sec * 1000.0).round() / 1000.0,
            p99_ns: s.p99_ns,
            p999_ns: s.p999_ns,
            extra: std::collections::BTreeMap::from([
                ("clients".to_string(), s.clients as f64),
                ("threads".to_string(), s.threads as f64),
                ("total_ops".to_string(), s.total_ops as f64),
                ("wall_ms".to_string(), (s.wall_ms * 1000.0).round() / 1000.0),
                ("vs_qd64".to_string(), (s.ops_per_sec / reference * 1000.0).round() / 1000.0),
            ]),
        });
    }
    let mut best = 0.0f64;
    for s in samples.iter().skip(1) {
        let ratio = (s.ops_per_sec / reference * 1000.0).round() / 1000.0;
        report.summary.insert(format!("c{}_vs_qd64", s.clients), ratio);
        best = best.max(ratio);
    }
    report.summary.insert("best_vs_qd64".to_string(), best);
    if let Err(e) = report.write(&out_path) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("results written to {out_path}");
}
