//! Tail-latency cost of the host error-recovery layer under a realistic
//! fail-slow rate (virtual clock).
//!
//! The recovery layer (per-command deadlines, watchdog timeout → NVMe-style
//! abort, lane reset + quarantine, capped-backoff retry) sits on the async
//! submission path of every command. This bench measures what hang
//! *recovery* costs when hangs actually occur: the same seeded multi-client
//! command stream is driven through the runtime against a fault-free device
//! and against one whose [`mssd::HangFaultPlan`] injects stalls, lost
//! completions and lane wedges at a combined 1e-3 per-command rate — a
//! pessimistic fail-slow regime (real fleets see orders of magnitude less).
//! Each affected command rides the full path: deadline expiry on the
//! virtual clock, abort, seeded backoff, resubmission around quarantined
//! lanes.
//!
//! Latencies are **virtual-clock** nanoseconds measured per command from
//! submission to final resolution (including any timeout + backoff +
//! retry), so the numbers are host-independent and deterministic. The CI
//! acceptance gate reads the `p99_ratio_fault_vs_clean` summary: at the
//! 1e-3 rate the recovered stream's p99 must stay within 3x of fault-free —
//! recovery is rare enough and bounded enough that the tail survives.
//!
//! Usage: `hang_recovery [scale] [output.json]` — scale multiplies the
//! per-client command count (default 1.0); results go to
//! `BENCH_hang_recovery.json`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use bench::{host_cpus, print_table, BenchEntry, BenchReport};
use mssd::{
    Category, Command, DramMode, HangFaultConfig, HangFaultPlan, Mssd, MssdConfig, RetryPolicy,
    Runtime, TxId,
};
use workloads::Histogram;

/// Commands per client at scale 1.0.
const CMDS_PER_CLIENT: usize = 5_000;

/// Logical clients submitting as futures.
const CLIENTS: usize = 4;

/// Reactor lanes (queue pairs) the clients share.
const LANES: usize = 2;

/// SQ depth per lane.
const DEPTH: usize = 4;

/// 64-byte byte-interface slots per client (disjoint, partition 0).
const SLOTS: u64 = 64;

/// Block pages per client (disjoint, partition 1).
const PAGES: u64 = 8;

/// Timed repetitions per configuration; the best wall time is reported
/// (virtual metrics are deterministic and identical across repeats).
const REPEATS: usize = 3;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Everything one measured run produces.
struct RunResult {
    wall_s: f64,
    /// Per-command virtual submission-to-resolution latency histogram
    /// (log-linear; O(1) record, exact-bounded percentiles).
    lat: Histogram,
    /// Commands that took at least one retry to resolve.
    recovered: u64,
    /// Injected hangs across all kinds.
    injected: u64,
    /// Recovery-layer RAS counters after the run.
    hang_timeouts: u64,
    aborts: u64,
    lane_resets: u64,
    retries: u64,
}

/// The 1e-3 combined fail-slow regime: half stalls (a third of them
/// unbounded), the rest lost completions and the occasional lane wedge.
fn hang_plan() -> HangFaultPlan {
    HangFaultPlan::new(HangFaultConfig {
        seed: 0x4A6_5EED,
        stall_rate: 5e-4,
        stall_min_ns: 100_000,
        stall_max_ns: 5_000_000,
        unbounded_stall_rate: 0.34,
        loss_rate: 3e-4,
        wedge_rate: 2e-4,
        ..HangFaultConfig::default()
    })
}

/// Drives the seeded stream once through the zero-worker runtime (the
/// driving thread pumps the executor, so the run — and with it every
/// virtual-clock number — is deterministic).
fn timed_run(faulted: bool, cmds_per_client: usize) -> RunResult {
    let mut cfg = MssdConfig::small_test();
    // Partition 0 holds the clients' byte slots, partition 1 their pages.
    cfg.capacity_bytes = 32 << 20;
    cfg.background_cleaning = false;
    if faulted {
        cfg.hang = hang_plan();
    }
    let dev = Mssd::new(cfg, DramMode::WriteLog);
    let page_size = dev.page_size() as u64;
    let block_base = (16u64 << 20) / page_size;

    let start = Instant::now();
    let rt = Runtime::new(&dev, 0, LANES, DEPTH);
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let reactor = Arc::clone(rt.reactor());
            let clock = dev.clock();
            rt.spawn(async move {
                let mut rng = XorShift(0x4A6_0B17 ^ ((c as u64 + 1) << 32) | 1);
                let mut tx = TxId(((c as u32) + 1) << 16);
                let mut uncommitted = false;
                let policy = RetryPolicy::default().with_seed(0xBAC_0FF ^ (c as u64 + 1));
                let line_base = c as u64 * SLOTS;
                let page_base = block_base + c as u64 * PAGES;
                let mut lats = Histogram::new();
                let mut recovered = 0u64;
                for _ in 0..cmds_per_client {
                    let cmd = match rng.below(100) {
                        // Byte write of one cacheline (transactional 1 in 4).
                        0..=59 => {
                            let line = line_base + rng.below(SLOTS);
                            let transactional = rng.below(4) == 0;
                            if transactional {
                                uncommitted = true;
                            }
                            Command::ByteWrite {
                                addr: line * 64,
                                data: vec![rng.next() as u8; 64],
                                txid: transactional.then_some(tx),
                                cat: Category::Data,
                            }
                        }
                        // Commit the open transaction (or a plain flush).
                        60..=69 => {
                            if uncommitted {
                                let cmd = Command::Commit { txid: tx };
                                tx = TxId(tx.0 + 1);
                                uncommitted = false;
                                cmd
                            } else {
                                Command::Flush
                            }
                        }
                        // Block write of one page.
                        70..=89 => Command::BlockWrite {
                            lba: page_base + rng.below(PAGES),
                            data: vec![rng.next() as u8; page_size as usize],
                            cat: Category::Data,
                        },
                        // TRIM one page.
                        _ => Command::Trim { lba: page_base + rng.below(PAGES), count: 1 },
                    };
                    let t0 = clock.now_ns();
                    let (out, retries) = reactor.submit_with_retry(c, cmd, policy).await;
                    lats.record(clock.now_ns() - t0);
                    if retries > 0 {
                        recovered += 1;
                    }
                    assert!(
                        matches!(&out, Ok(c) if c.status.is_ok()),
                        "client {c}: a command failed to resolve: {out:?}"
                    );
                }
                (lats, recovered)
            })
        })
        .collect();
    let per_client = rt.block_on(async move {
        let mut v = Vec::with_capacity(handles.len());
        for h in handles {
            v.push(h.await);
        }
        v
    });
    let wall_s = start.elapsed().as_secs_f64();

    // Per-client histograms merge in O(buckets) — order-independent, so the
    // aggregate is deterministic regardless of client count.
    let mut lat = Histogram::new();
    let mut recovered = 0u64;
    for (lats, rec) in per_client {
        lat.merge(&lats);
        recovered += rec;
    }
    let snap = dev.snapshot();
    RunResult {
        wall_s,
        lat,
        recovered,
        injected: dev.config().hang.injected_total(),
        hang_timeouts: snap.traffic.hang_timeouts,
        aborts: snap.traffic.aborts,
        lane_resets: snap.traffic.lane_resets,
        retries: snap.traffic.retries,
    }
}

fn best_of(faulted: bool, cmds_per_client: usize) -> RunResult {
    let mut best = timed_run(faulted, cmds_per_client);
    for _ in 1..REPEATS {
        let r = timed_run(faulted, cmds_per_client);
        if r.wall_s < best.wall_s {
            best = r;
        }
    }
    best
}

fn main() {
    let scale = std::env::args().nth(1).and_then(|a| a.parse::<f64>().ok()).unwrap_or(1.0);
    let out_path =
        std::env::args().nth(2).unwrap_or_else(|| "BENCH_hang_recovery.json".to_string());
    // The floor keeps smoke-scale runs long enough that the 1e-3 regime
    // actually injects hangs for the gated ratio to measure.
    let cmds = ((CMDS_PER_CLIENT as f64 * scale) as usize).max(2_000);
    let ops = cmds * CLIENTS;
    eprintln!("hang_recovery: {ops} commands, host parallelism {}", host_cpus());

    // Bring the CPU out of idle so the first configuration is not penalized.
    let _ = timed_run(false, cmds / 10);

    let clean = best_of(false, cmds);
    let fault = best_of(true, cmds);
    assert_eq!(clean.injected, 0, "fault-free run must not inject hangs");
    assert_eq!(clean.recovered, 0, "fault-free run must not take retries");
    assert!(fault.injected > 0, "the armed 1e-3 hang plan injected nothing — grow the stream");

    let clean_p99 = clean.lat.value_at(0.99);
    let fault_p99 = fault.lat.value_at(0.99);
    let ratio = fault_p99 as f64 / clean_p99.max(1) as f64;
    let rows = vec![
        vec![
            "fault-free".to_string(),
            format!("{ops}"),
            format!("{}", clean.lat.value_at(0.50)),
            format!("{clean_p99}"),
            format!("{}", clean.lat.value_at(0.999)),
            format!("{}", clean.lat.max()),
            "0/0".to_string(),
            "1.00x".to_string(),
        ],
        vec![
            "1e-3 hangs".to_string(),
            format!("{ops}"),
            format!("{}", fault.lat.value_at(0.50)),
            format!("{fault_p99}"),
            format!("{}", fault.lat.value_at(0.999)),
            format!("{}", fault.lat.max()),
            format!("{}/{}", fault.injected, fault.recovered),
            format!("{ratio:.2}x"),
        ],
    ];
    print_table(
        "hang_recovery — recovery-layer tail cost under a 1e-3 fail-slow rate",
        &[
            "config",
            "cmds",
            "virt p50 ns",
            "virt p99 ns",
            "virt p99.9 ns",
            "virt max ns",
            "inj/recov",
            "p99 vs clean",
        ],
        &rows,
    );

    let mut report = BenchReport::new("hang_recovery", scale);
    for (key, r) in [("clean", &clean), ("hang_1e-3", &fault)] {
        report.entries.push(BenchEntry {
            key: key.to_string(),
            throughput_ops_s: (ops as f64 / r.wall_s * 1000.0).round() / 1000.0,
            p99_ns: r.lat.value_at(0.99),
            p999_ns: r.lat.value_at(0.999),
            extra: BTreeMap::from([
                ("cmds".to_string(), ops as f64),
                ("virtual_p50_ns".to_string(), r.lat.value_at(0.50) as f64),
                ("virtual_p99_ns".to_string(), r.lat.value_at(0.99) as f64),
                ("virtual_p999_ns".to_string(), r.lat.value_at(0.999) as f64),
                ("virtual_max_ns".to_string(), r.lat.max() as f64),
                ("injected_hangs".to_string(), r.injected as f64),
                ("recovered_cmds".to_string(), r.recovered as f64),
                ("hang_timeouts".to_string(), r.hang_timeouts as f64),
                ("aborts".to_string(), r.aborts as f64),
                ("lane_resets".to_string(), r.lane_resets as f64),
                ("retries".to_string(), r.retries as f64),
            ]),
        });
    }
    report
        .summary
        .insert("p99_ratio_fault_vs_clean".to_string(), (ratio * 1000.0).round() / 1000.0);
    if let Err(e) = report.write(&out_path) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("results written to {out_path}");
}
