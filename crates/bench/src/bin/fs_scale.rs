//! Multi-threaded throughput scaling of whole file systems (wall-clock).
//!
//! The FS-level companion of `mt_scale`: where `mt_scale` measures how fast
//! raw device operations scale across threads, `fs_scale` drives complete
//! *workloads* — partitioned micro/filebench op streams — through
//! [`workloads::run_concurrent`] over one shared file system per
//! configuration, measuring end-to-end host throughput with 1/2/4/8 worker
//! threads. This is the bench the host-side lock sharding was built for:
//!
//! * `bytefs` — sharded inode table + per-inode RwLocks + namespace RwLock +
//!   sharded page cache + atomic allocators over the sharded write-log
//!   device. Data-path-heavy workloads are expected to scale.
//! * `ext4` / `nova` — the baselines serialize every operation behind one
//!   engine mutex; they are the contrast and cannot scale, regardless of the
//!   (sharded) device underneath.
//!
//! Usage: `fs_scale [scale] [output.json]` — scale multiplies the workload
//! working sets (default 1.0); results are printed as a table and written as
//! JSON (default `BENCH_fs_scale.json`). Wall-clock speedup is bounded by
//! `host_cpus` (see `crates/bench/DESIGN.md`).

use std::sync::Arc;

use bench::{host_cpus, print_table, BenchEntry, BenchReport};
use fskit::FileSystem;
use mssd::{Mssd, MssdConfig};
use workloads::filebench::{Filebench, Personality};
use workloads::micro::{Micro, MicroOp};
use workloads::{run_concurrent, FsKind, Scale, Workload};

/// Thread counts swept (the acceptance gate compares 4 threads vs 1).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Timed repetitions per configuration; the best (fastest) one is reported,
/// filtering scheduler noise on busy hosts.
const REPEATS: usize = 2;

/// One measured configuration.
struct Sample {
    fs: &'static str,
    workload: String,
    threads: usize,
    ops: u64,
    wall_ms: f64,
    ops_per_sec: f64,
    virtual_kops: f64,
}

fn device_config() -> MssdConfig {
    // 1 GiB volume with the default 256 MB device DRAM region: the measured
    // runs never trigger a stop-the-world log cleaning, so the numbers
    // isolate host-lock scaling (cleaning stalls are fig14's subject).
    MssdConfig::default().with_capacity(1 << 30)
}

fn workloads_under_test(scale: Scale) -> Vec<Box<dyn Workload + Sync>> {
    vec![
        // Namespace-bound: every op holds the namespace write lock. The
        // honest contrast case — sharding cannot help pure metadata streams.
        Box::new(Micro::new(MicroOp::Create, scale)),
        // Mixed data/metadata over per-thread file subsets.
        Box::new(Filebench::new(Personality::Fileserver, scale)),
        // Read-heavy data path: per-inode read locks + sharded page cache.
        Box::new(Filebench::new(Personality::Webserver, scale)),
    ]
}

/// One timed run on a fresh file system. Returns (wall seconds, ops, virtual
/// kops/s).
fn timed_run(kind: FsKind, workload: &(dyn Workload + Sync), threads: usize) -> (f64, u64, f64) {
    let (device, fs): (Arc<Mssd>, Arc<dyn FileSystem>) = kind.build(device_config());
    let result = run_concurrent(&device, &fs, workload, threads, 42)
        .unwrap_or_else(|e| panic!("{kind} {} x{threads}: {e:?}", workload.name()));
    (result.wall_ns as f64 / 1e9, result.aggregate.ops, result.aggregate.kops_per_sec)
}

fn run_config(kind: FsKind, workload: &(dyn Workload + Sync), threads: usize) -> Sample {
    let mut best = timed_run(kind, workload, threads);
    for _ in 1..REPEATS {
        let run = timed_run(kind, workload, threads);
        if run.0 < best.0 {
            best = run;
        }
    }
    let (wall_secs, ops, virtual_kops) = best;
    Sample {
        fs: kind.label(),
        workload: workload.name(),
        threads,
        ops,
        wall_ms: wall_secs * 1e3,
        ops_per_sec: ops as f64 / wall_secs.max(1e-9),
        virtual_kops,
    }
}

fn base_ops_per_sec(samples: &[Sample], s: &Sample) -> f64 {
    samples
        .iter()
        .find(|b| b.fs == s.fs && b.workload == s.workload && b.threads == 1)
        .map(|b| b.ops_per_sec)
        .unwrap_or(s.ops_per_sec)
}

fn write_json(path: &str, scale: f64, samples: &[Sample]) -> std::io::Result<()> {
    let mut report = BenchReport::new("fs_scale", scale);
    for s in samples {
        report.entries.push(BenchEntry {
            key: format!("{}/{}/t{}", s.fs, s.workload, s.threads),
            throughput_ops_s: (s.ops_per_sec * 1000.0).round() / 1000.0,
            p99_ns: 0,
            p999_ns: 0,
            extra: std::collections::BTreeMap::from([
                ("threads".to_string(), s.threads as f64),
                ("ops".to_string(), s.ops as f64),
                ("wall_ms".to_string(), (s.wall_ms * 1000.0).round() / 1000.0),
                (
                    "speedup_vs_1t".to_string(),
                    (s.ops_per_sec / base_ops_per_sec(samples, s) * 1000.0).round() / 1000.0,
                ),
                ("virtual_kops_per_sec".to_string(), (s.virtual_kops * 1000.0).round() / 1000.0),
            ]),
        });
    }
    report.write(path)
}

fn main() {
    let scale_factor = std::env::args().nth(1).and_then(|a| a.parse::<f64>().ok()).unwrap_or(1.0);
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_fs_scale.json".to_string());
    let scale = Scale::new(scale_factor);
    eprintln!("fs_scale: scale {scale_factor}, host parallelism {}", host_cpus());

    // Warmup: brings the CPU out of its idle frequency state so the first
    // measured configuration is not systematically penalized.
    let warm = Micro::new(MicroOp::Create, Scale::tiny());
    let _ = timed_run(FsKind::ByteFs, &warm, 2);

    let workloads = workloads_under_test(scale);
    let mut samples = Vec::new();
    for kind in FsKind::SCALING {
        for workload in &workloads {
            for threads in THREADS {
                let s = run_config(kind, workload.as_ref(), threads);
                eprintln!(
                    "{:>7} {:>10} x{}: {:>9.0} ops/s  ({:.0} ms wall)",
                    s.fs, s.workload, s.threads, s.ops_per_sec, s.wall_ms
                );
                samples.push(s);
            }
        }
    }

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.fs.to_string(),
                s.workload.clone(),
                s.threads.to_string(),
                format!("{}", s.ops),
                format!("{:.0}", s.wall_ms),
                format!("{:.0}", s.ops_per_sec),
                format!("{:.2}x", s.ops_per_sec / base_ops_per_sec(&samples, s)),
            ]
        })
        .collect();
    print_table(
        "fs_scale — wall-clock file-system throughput (shared Mssd, run_concurrent)",
        &["fs", "workload", "threads", "ops", "wall ms", "ops/s", "speedup"],
        &rows,
    );

    if let Err(e) = write_json(&out_path, scale_factor, &samples) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("results written to {out_path}");
}
