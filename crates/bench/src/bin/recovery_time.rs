//! Remount latency as a function of dirty-log depth (§5.5 extended).
//!
//! The `recovery` binary reproduces the paper's single post-crash
//! `RECOVER()` measurement; this one sweeps the *depth* of the write log at
//! the moment of the crash — the recovery-time driver the paper identifies
//! (scan every entry, flush every committed page) — and reports both the
//! modelled (virtual-clock) recovery time and the harness wall-clock per
//! remount. crashkit's `recovery_time` data feeds capacity planning: how
//! long is a device unavailable after power loss, given how full its log
//! ran?
//!
//! Usage: `recovery_time [scale] [output.json]` — scale multiplies the
//! entry counts (default 1.0); results are printed as a table and written
//! as JSON (default `BENCH_recovery.json`).

use std::time::Instant;

use bench::{bench_config, print_table, BenchEntry, BenchReport};
use bytefs::{ByteFs, ByteFsConfig};
use fskit::FileSystemExt;
use mssd::{Category, DramMode, Mssd, MssdConfig, TxId};

/// Dirty-log depths (entries at crash) swept at scale 1.0.
const DEPTHS: [usize; 5] = [1_000, 8_000, 32_000, 96_000, 160_000];

/// Bytes per byte-interface entry written into the log (one cacheline).
const ENTRY_BYTES: usize = 64;

struct Sample {
    /// Unscaled depth from [`DEPTHS`] — the stable report key, so reports
    /// at different scales stay comparable entry-by-entry.
    depth: usize,
    entries_target: usize,
    entries_at_crash: usize,
    log_bytes: usize,
    scanned: usize,
    discarded: usize,
    flushed_pages: usize,
    firmware_ms: f64,
    wall_ms: f64,
}

fn run(cfg: &MssdConfig, depth: usize, entries: usize) -> Sample {
    let dev = Mssd::new(cfg.clone(), DramMode::WriteLog);
    let fs = ByteFs::format(dev.clone(), ByteFsConfig::full()).expect("format");
    fs.write_file("/anchor", b"survives every depth").expect("anchor file");
    drop(fs);
    dev.quiesce_cleaning();

    // Fill the log to the target depth with committed byte writes into the
    // data region (addresses far above the metadata tables), one cacheline
    // per entry, spread over many pages so recovery's read-modify-write
    // path is exercised. Every 64th entry is left uncommitted so recovery
    // also discards work at every depth.
    let data_base: u64 = cfg.capacity_bytes / 2;
    let lines_per_page = (cfg.page_size / ENTRY_BYTES) as u64;
    let mut tx = TxId(1);
    let mut batch = 0usize;
    for i in 0..entries as u64 {
        let page = i / lines_per_page;
        let line = i % lines_per_page;
        let addr = data_base + page * cfg.page_size as u64 + line * ENTRY_BYTES as u64;
        let uncommitted = i % 64 == 63;
        let txid = if uncommitted { TxId(u32::MAX) } else { tx };
        dev.byte_write(addr, &[i as u8; ENTRY_BYTES], Some(txid), Category::Data);
        batch += 1;
        if batch == 32 {
            dev.commit(tx);
            tx = TxId(tx.0 + 1);
            batch = 0;
        }
    }
    if batch > 0 {
        dev.commit(tx);
    }
    dev.quiesce_cleaning();
    let snap = dev.snapshot();

    // Power failure, then measure the remount: superblock read, RECOVER()
    // (scan + discard + flush), bitmap loads.
    dev.crash();
    let virtual_before = dev.clock().now_ns();
    let wall = Instant::now();
    let fs = ByteFs::mount(dev.clone(), ByteFsConfig::full()).expect("remount");
    let report = fs.recover_after_crash();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let virtual_ms = (dev.clock().now_ns() - virtual_before) as f64 / 1e6;
    assert_eq!(
        fs.read_file("/anchor").expect("anchor readable"),
        b"survives every depth",
        "recovery lost committed data"
    );

    Sample {
        depth,
        entries_target: entries,
        entries_at_crash: snap.log_entries,
        log_bytes: snap.log_used_bytes,
        scanned: report.scanned_entries,
        discarded: report.discarded_entries,
        flushed_pages: report.flushed_pages,
        firmware_ms: virtual_ms,
        wall_ms,
    }
}

fn main() {
    let scale = bench::scale_from_args();
    let out = std::env::args().nth(2).unwrap_or_else(|| "BENCH_recovery.json".into());
    let cfg = bench_config();

    let mut samples = Vec::new();
    for depth in DEPTHS {
        let entries = ((depth as f64 * scale.factor()) as usize).max(64);
        samples.push(run(&cfg, depth, entries));
    }

    print_table(
        "Remount + RECOVER() latency vs dirty-log depth (16 MB log region)",
        &[
            "entries at crash",
            "log bytes",
            "scanned",
            "discarded",
            "flushed pages",
            "recovery (virtual)",
            "remount wall-clock",
        ],
        &samples
            .iter()
            .map(|s| {
                vec![
                    format!("{}", s.entries_at_crash),
                    format!("{}", s.log_bytes),
                    format!("{}", s.scanned),
                    format!("{}", s.discarded),
                    format!("{}", s.flushed_pages),
                    format!("{:.2} ms", s.firmware_ms),
                    format!("{:.2} ms", s.wall_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let mut report = BenchReport::new("recovery_time", scale.factor());
    report.summary.insert("dram_region_bytes".into(), cfg.dram_region_bytes as f64);
    for s in &samples {
        report.entries.push(BenchEntry {
            key: format!("entries{}", s.depth),
            throughput_ops_s: 0.0,
            p99_ns: 0,
            p999_ns: 0,
            extra: std::collections::BTreeMap::from([
                ("entries_target".to_string(), s.entries_target as f64),
                ("entries_at_crash".to_string(), s.entries_at_crash as f64),
                ("log_bytes".to_string(), s.log_bytes as f64),
                ("scanned".to_string(), s.scanned as f64),
                ("discarded".to_string(), s.discarded as f64),
                ("flushed_pages".to_string(), s.flushed_pages as f64),
                ("recovery_virtual_ms".to_string(), (s.firmware_ms * 1000.0).round() / 1000.0),
                ("remount_wall_ms".to_string(), (s.wall_ms * 1000.0).round() / 1000.0),
            ]),
        });
    }
    report.write(&out).expect("write results json");
    println!("results written to {out}");
    println!("Note: recovery time scales with scanned entries + flushed pages; the paper's");
    println!("4.2 s figure is for a 1 GB device DRAM image (this harness models 16 MB).");
}
