//! Cost of the media-error RAS layer under a realistic raw bit-error rate
//! (wall-clock).
//!
//! The RAS layer (per-page ECC, read-retry, program-failure remap, bad-block
//! management) sits on the flash hot path of every read and program. This
//! bench measures what the fault *handling* costs when faults actually
//! occur: the same single-threaded, read-heavy op stream is driven against
//! a fault-free device and against one whose [`mssd::MediaFaultPlan`]
//! injects transient read errors at a 1e-4 per-read rate — a pessimistic
//! end-of-life raw bit-error regime. The injected faults exercise the full
//! ladder (ECC decode, bounded re-reads, the occasional UECC verdict) while
//! the stream keeps flowing.
//!
//! The CI acceptance gate reads the `cost_ratio_fault_vs_clean` summary:
//! running under the 1e-4 fault rate must cost no more than 1.25x the
//! fault-free wall time (skipped below 2 CPUs, where container time-slicing
//! makes small wall-clock ratios unreliable).
//!
//! Usage: `media_fault [scale] [output.json]` — scale multiplies the op
//! count (default 1.0); results go to `BENCH_media_fault.json`.

use std::collections::BTreeMap;
use std::time::Instant;

use bench::{host_cpus, print_table, BenchEntry, BenchReport};
use mssd::{Category, DramMode, MediaFaultPlan, Mssd, MssdConfig};

/// Ops in the measured stream at scale 1.0.
const OPS: usize = 120_000;

/// Timed repetitions per configuration; the best run is reported.
const REPEATS: usize = 5;

/// Whole pages of block traffic the stream cycles through.
const PAGES: u64 = 512;

/// 64-byte byte-interface slots (distinct pages from the block region).
const SLOTS: u64 = 2048;

/// First logical page of the block region (per the byte slots above:
/// 2048 * 64 B = 128 KB = 32 pages, rounded up generously).
const BLOCK_BASE: u64 = 64;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Drives the read-heavy stream once; returns (wall seconds, uecc count).
/// Reads dominate (70%) because the 1e-4 regime is a *read*-error regime:
/// program and erase failures at end of life are orders of magnitude rarer.
fn drive(dev: &Mssd, ops: usize) -> (f64, u64) {
    let mut rng = XorShift(0xEC0_5EED | 1);
    let mut uecc = 0u64;
    let start = Instant::now();
    for _ in 0..ops {
        match rng.below(100) {
            // Block read of 1-2 pages: the flash read path, ECC decode and
            // (under injection) the retry ladder.
            0..=49 => {
                let p = rng.below(PAGES - 1);
                let count = 1 + rng.below(2) as usize;
                if dev.try_block_read(BLOCK_BASE + p, count, Category::Data).is_err() {
                    uecc += 1;
                }
            }
            // Byte read through the log-then-flash path.
            50..=69 => {
                let slot = rng.below(SLOTS);
                if dev.try_byte_read(slot * 64, 64, Category::Data).is_err() {
                    uecc += 1;
                }
            }
            // Block write of one page.
            70..=84 => {
                let p = rng.below(PAGES);
                let tag = rng.next() as u8;
                let _ = dev.try_block_write(BLOCK_BASE + p, &vec![tag; 4096], Category::Data);
            }
            // Byte write of one cacheline.
            _ => {
                let slot = rng.below(SLOTS);
                let tag = rng.next() as u8;
                let _ = dev.try_byte_write(slot * 64, &[tag; 64], None, Category::Data);
            }
        }
    }
    (start.elapsed().as_secs_f64(), uecc)
}

/// Builds the device, pre-populates every page/slot the stream touches (so
/// reads hit programmed flash, not the zero fast path), and runs the stream.
fn timed_run(read_error_rate: f64, ops: usize) -> (f64, u64) {
    let mut cfg = MssdConfig::default().with_capacity(64 << 20);
    if read_error_rate > 0.0 {
        cfg.media = MediaFaultPlan::rates(0xEC0_FA17, read_error_rate, 0.0, 0.0);
    }
    let dev = Mssd::new(cfg, DramMode::WriteLog);
    for p in 0..PAGES {
        dev.block_write(BLOCK_BASE + p, &vec![(p % 251) as u8 + 1; 4096], Category::Data);
    }
    for slot in 0..SLOTS {
        dev.byte_write(slot * 64, &[(slot % 251) as u8 + 1; 64], None, Category::Data);
    }
    // Drain the write log so byte reads exercise flash, and exclude the
    // pre-population from the measurement.
    dev.seal_log_regions();
    dev.flush();
    dev.reset_stats();
    drive(&dev, ops)
}

fn best_of(read_error_rate: f64, ops: usize) -> (f64, u64) {
    let (mut wall, mut uecc) = timed_run(read_error_rate, ops);
    for _ in 1..REPEATS {
        let (w, u) = timed_run(read_error_rate, ops);
        if w < wall {
            wall = w;
            uecc = u;
        }
    }
    (wall, uecc)
}

fn main() {
    let scale = std::env::args().nth(1).and_then(|a| a.parse::<f64>().ok()).unwrap_or(1.0);
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_media_fault.json".to_string());
    // The floor keeps smoke-scale runs long enough that the gated ratio
    // measures work, not timer noise.
    let ops = ((OPS as f64 * scale) as usize).max(40_000);
    eprintln!("media_fault: {ops} ops, host parallelism {}", host_cpus());

    // Bring the CPU out of idle so the first configuration is not penalized.
    let _ = timed_run(0.0, ops / 10);

    let (clean_wall, clean_uecc) = best_of(0.0, ops);
    let (fault_wall, fault_uecc) = best_of(1e-4, ops);
    assert_eq!(clean_uecc, 0, "fault-free run must not report UECCs");

    let ratio = fault_wall / clean_wall;
    let rows = vec![
        vec![
            "fault-free".to_string(),
            format!("{ops}"),
            format!("{:.1}", clean_wall * 1e3),
            format!("{:.0}", ops as f64 / clean_wall),
            "0".to_string(),
            "1.00x".to_string(),
        ],
        vec![
            "1e-4 read errors".to_string(),
            format!("{ops}"),
            format!("{:.1}", fault_wall * 1e3),
            format!("{:.0}", ops as f64 / fault_wall),
            format!("{fault_uecc}"),
            format!("{ratio:.2}x"),
        ],
    ];
    print_table(
        "media_fault — RAS-layer cost under a 1e-4 transient read-error rate",
        &["config", "ops", "wall ms", "ops/s", "ueccs", "cost vs clean"],
        &rows,
    );

    let mut report = BenchReport::new("media_fault", scale);
    for (key, wall, uecc) in
        [("clean", clean_wall, clean_uecc), ("rber_1e-4", fault_wall, fault_uecc)]
    {
        report.entries.push(BenchEntry {
            key: key.to_string(),
            throughput_ops_s: (ops as f64 / wall * 1000.0).round() / 1000.0,
            p99_ns: 0,
            p999_ns: 0,
            extra: BTreeMap::from([
                ("ops".to_string(), ops as f64),
                ("wall_ms".to_string(), (wall * 1e3 * 1000.0).round() / 1000.0),
                ("ueccs".to_string(), uecc as f64),
            ]),
        });
    }
    report
        .summary
        .insert("cost_ratio_fault_vs_clean".to_string(), (ratio * 1000.0).round() / 1000.0);
    if let Err(e) = report.write(&out_path) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("results written to {out_path}");
}
