//! Figure 7: YCSB average and 95th-percentile latency for reads and
//! updates, per file system.

use bench::{bench_config, print_table, scale_from_args};
use workloads::ycsb::{run_ycsb, YcsbSpec, YcsbWorkload};
use workloads::FsKind;

fn main() {
    let scale = scale_from_args();
    let us = |ns: f64| format!("{:.1} us", ns / 1e3);

    let mut rows = Vec::new();
    for ycsb in YcsbWorkload::ALL {
        for kind in FsKind::MAIN {
            let (dev, fs) = kind.build(bench_config());
            let spec = YcsbSpec::new(ycsb, scale);
            let r = run_ycsb(&dev, fs, &spec, 21).expect("ycsb runs");
            rows.push(vec![
                ycsb.label().to_string(),
                kind.label().to_string(),
                us(r.read.avg_ns),
                us(r.read.p95_ns as f64),
                if r.write.count == 0 { "-".into() } else { us(r.write.avg_ns) },
                if r.write.count == 0 { "-".into() } else { us(r.write.p95_ns as f64) },
            ]);
        }
    }
    print_table(
        "Figure 7 — YCSB latency (read avg / read p95 / write avg / write p95)",
        &["workload", "fs", "read avg", "read p95", "write avg", "write p95"],
        &rows,
    );
    println!("Paper reference: ByteFS improves read avg/p95 by ~2.3x/2.0x and write by");
    println!("~1.3x/1.6x over F2FS on YCSB-A/F; YCSB-C (read-only) is similar across FSes.");
}
