//! Trace-pipeline smoke check for CI: drives a short traced workload,
//! exports the Chrome trace-event JSON (Perfetto-loadable) and the text
//! op-trace, then validates both ends of the pipeline in-process:
//!
//! * the JSON parses with the same minimal parser `bench_compare` uses
//!   (round-trip: our exporter must emit what our schema tooling reads),
//!   has a non-empty `traceEvents` array and at least one `"X"` complete
//!   span;
//! * one queued command's journey (SQ submit → doorbell → flash program →
//!   CQ completion) shares a single command track — the property that makes
//!   a write's life a single flame in the Perfetto UI;
//! * the op-trace has one line per completed command.
//!
//! Usage: `trace_smoke [trace_out.json] [optrace_out.txt]` — defaults
//! `trace_smoke.json` / `trace_smoke.txt`. Exits non-zero on any validation
//! failure, so CI can gate on it and upload the artifacts.

use std::collections::BTreeSet;

use bench::report::Json;
use mssd::queue::Command;
use mssd::{
    chrome_trace_json, op_trace_text, parse_op_trace, Category, DramMode, Mssd, MssdConfig,
    OpTraceMeta, TraceKind, PAGE_SIZE,
};

/// Drives a small mixed workload through a host queue with tracing on and
/// returns the drained dump. Mirrors the `trace_e2e` integration test's
/// shape: one multi-page block write (forces flash programs during its own
/// execution), a few single-page writes, a coalescible byte-write pair, and
/// some sync block writes for log/flash background activity.
fn traced_run() -> mssd::TraceDump {
    let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
    dev.set_tracing(true);
    let mut q = dev.open_queue(16);
    q.submit(Command::BlockWrite { lba: 0, data: vec![0xAB; 32 * PAGE_SIZE], cat: Category::Data })
        .expect("submit big block write");
    for i in 0..4u64 {
        q.submit(Command::BlockWrite {
            lba: 40 + i,
            data: vec![i as u8; PAGE_SIZE],
            cat: Category::Data,
        })
        .expect("submit block write");
    }
    q.submit(Command::ByteWrite { addr: 0, data: vec![7u8; 64], txid: None, cat: Category::Inode })
        .expect("submit byte write");
    q.submit(Command::ByteWrite {
        addr: 64,
        data: vec![8u8; 64],
        txid: None,
        cat: Category::Inode,
    })
    .expect("submit byte write");
    q.ring_doorbell();
    for i in 0..32u64 {
        dev.block_write(64 + i, &vec![(i % 251) as u8; PAGE_SIZE], Category::Data);
    }
    dev.quiesce_cleaning();
    dev.trace_sink().drain()
}

fn fail(msg: &str) -> ! {
    eprintln!("trace_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let json_path = std::env::args().nth(1).unwrap_or_else(|| "trace_smoke.json".to_string());
    let text_path = std::env::args().nth(2).unwrap_or_else(|| "trace_smoke.txt".to_string());

    let dump = traced_run();
    if dump.events.len() <= 10 {
        fail(&format!("expected a real event stream, got {} events", dump.events.len()));
    }

    // The single-track property, checked on the raw dump: the first queued
    // command's whole journey carries one (cmd, queue) identity.
    let first_cmd = dump
        .events
        .iter()
        .find(|e| e.kind == TraceKind::SqSubmit && e.cmd != 0)
        .map(|e| e.cmd)
        .unwrap_or_else(|| fail("no SQ submit event captured"));
    let track: Vec<_> = dump.events.iter().filter(|e| e.cmd == first_cmd).collect();
    let kinds: BTreeSet<TraceKind> = track.iter().map(|e| e.kind).collect();
    for need in
        [TraceKind::SqSubmit, TraceKind::Doorbell, TraceKind::FlashProgram, TraceKind::CqComplete]
    {
        if !kinds.contains(&need) {
            fail(&format!("cmd {first_cmd} track is missing {:?} (has {kinds:?})", need.name()));
        }
    }
    let queues: BTreeSet<u16> = track.iter().map(|e| e.queue).collect();
    if queues.len() != 1 {
        fail(&format!("cmd {first_cmd} track spans queues {queues:?}, expected one"));
    }

    // Export both formats and write the CI artifacts.
    let json = chrome_trace_json(&dump);
    let meta = OpTraceMeta::new(0, &MssdConfig::small_test());
    let text = op_trace_text(&dump, &meta);
    if let Err(e) = std::fs::write(&json_path, &json) {
        fail(&format!("writing {json_path}: {e}"));
    }
    if let Err(e) = std::fs::write(&text_path, &text) {
        fail(&format!("writing {text_path}: {e}"));
    }

    // Round-trip validation: the exported document must parse and contain a
    // non-empty traceEvents array with at least one complete span.
    let doc = match Json::parse(&json) {
        Ok(doc) => doc,
        Err(e) => fail(&format!("exported chrome trace does not parse: {e}")),
    };
    let Some(obj) = doc.as_object() else { fail("chrome trace root is not an object") };
    let Some(Json::Array(events)) = obj.get("traceEvents") else {
        fail("chrome trace has no traceEvents array")
    };
    if events.is_empty() {
        fail("traceEvents is empty");
    }
    fn phase(e: &Json) -> Option<&str> {
        e.as_object().and_then(|o| o.get("ph")).and_then(Json::as_str)
    }
    let spans = events.iter().filter(|e| phase(e) == Some("X")).count();
    if spans == 0 {
        fail("no complete (\"X\") spans in the export");
    }
    let span_name = format!("cmd {first_cmd}");
    if !events.iter().any(|e| {
        e.as_object().and_then(|o| o.get("name")).and_then(Json::as_str) == Some(&span_name)
    }) {
        fail(&format!("no span named {span_name:?} in the export"));
    }

    let completions = dump
        .events
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::CqComplete | TraceKind::Abort))
        .count();
    // The op trace must round-trip through the ingest parser: the header
    // carries the device geometry, and every completion is one entry.
    let parsed = match parse_op_trace(&text) {
        Ok(parsed) => parsed,
        Err(e) => fail(&format!("exported op trace does not parse: {e}")),
    };
    if parsed.meta != Some(meta) {
        fail("op-trace header metadata did not survive the round trip");
    }
    if parsed.entries.len() != completions {
        fail(&format!(
            "op-trace has {} entries for {completions} completions",
            parsed.entries.len()
        ));
    }

    println!(
        "trace_smoke: OK — {} events ({} dropped), {spans} spans, {completions} op-trace lines",
        dump.events.len(),
        dump.dropped
    );
    println!("trace_smoke: chrome trace -> {json_path}, op trace -> {text_path}");
}
