//! Record→replay→compare pipeline over the replay scenario corpus.
//!
//! For every corpus scenario (diurnal bursts, mail fsync storms, CI-runner
//! churn, backup scans) this binary:
//!
//! 1. **records** the workload on ByteFS, capturing the op trace and the
//!    remounted-image digest;
//! 2. **replays** the trace twice on a fresh ByteFS at exact speed and
//!    gates that both replays reproduce the recorded digest bit for bit
//!    with zero divergences — the determinism contract CI pins;
//! 3. **replays** the trace twice on the ext4-like baseline (same trace,
//!    different file system) and gates that the two ext4 replays agree
//!    with each other — cross-fs replay is deterministic too, it just
//!    lands on a different (self-consistent) image;
//! 4. emits a `BenchReport` with one entry per `<scenario>/<fs>` pair so
//!    `bench_compare` can diff two replay runs entry-for-entry, plus a
//!    markdown cross-fs delta table and the CI-churn trace text as
//!    uploadable artifacts.
//!
//! All metrics are virtual-clock (the device simulator's timeline), so the
//! committed numbers are host-independent and reproduce exactly.
//!
//! Usage: `replay [scale] [output.json] [report.md] [trace.txt]` — defaults
//! `1.0 BENCH_replay.json replay_report.md replay_trace_cichurn.txt`.
//! Exits non-zero when any determinism gate fails.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use bench::{bench_config, print_table, BenchEntry, BenchReport};
use workloads::replay::ReplayOutcome;
use workloads::{record_corpus, replay, CorpusKind, FsKind, Recorded, ReplayConfig, ReplaySpeed};

/// Seed every corpus recording uses — part of the pinned determinism
/// contract (same trace + same seed ⇒ same digest).
const SEED: u64 = 11;

struct Row {
    kind: CorpusKind,
    recorded: Recorded,
    bytefs: ReplayOutcome,
    ext4: ReplayOutcome,
}

fn fail(msg: &str) -> ! {
    eprintln!("replay: FAIL: {msg}");
    std::process::exit(1);
}

/// Replays `recorded` twice on `fs_kind` at exact speed, gates that the two
/// runs agree bit for bit with zero divergences (and, for the recording
/// fs, that they reproduce the recorded digest), and returns the first.
fn replay_twice(recorded: &Recorded, fs_kind: FsKind, same_fs: bool) -> ReplayOutcome {
    let cfg = ReplayConfig { speed: ReplaySpeed::Exact, threads: 1 };
    let label = fs_kind.label();
    let kind = &recorded.trace.meta.name;
    let a = replay(&recorded.trace, fs_kind, bench_config(), &cfg)
        .unwrap_or_else(|e| fail(&format!("{kind} on {label}: replay failed: {e}")));
    let b = replay(&recorded.trace, fs_kind, bench_config(), &cfg)
        .unwrap_or_else(|e| fail(&format!("{kind} on {label}: second replay failed: {e}")));
    if a.remount_digest != b.remount_digest {
        fail(&format!(
            "{kind} on {label}: replay is not deterministic ({:#018x} vs {:#018x})",
            a.remount_digest, b.remount_digest
        ));
    }
    if same_fs {
        if a.remount_digest != recorded.remount_digest {
            fail(&format!(
                "{kind} on {label}: replay diverged from the recording \
                 ({:#018x} replayed vs {:#018x} recorded)",
                a.remount_digest, recorded.remount_digest
            ));
        }
        if a.divergences != 0 {
            fail(&format!("{kind} on {label}: {} op outcomes diverged", a.divergences));
        }
    }
    a
}

fn entry(kind: CorpusKind, fs: &str, out: &ReplayOutcome) -> BenchEntry {
    let r = &out.result;
    let digest = out.remount_digest;
    BenchEntry {
        key: format!("{kind}/{fs}"),
        throughput_ops_s: (r.kops_per_sec * 1e3 * 1000.0).round() / 1000.0,
        p99_ns: r.write.p99_ns,
        p999_ns: r.write.p999_ns,
        extra: BTreeMap::from([
            ("ops".to_string(), r.ops as f64),
            ("replayed".to_string(), out.replayed as f64),
            ("divergences".to_string(), out.divergences as f64),
            ("digest_lo".to_string(), (digest & 0xFFFF_FFFF) as f64),
            ("digest_hi".to_string(), (digest >> 32) as f64),
            ("virtual_elapsed_ns".to_string(), r.elapsed_ns as f64),
            ("virtual_read_p99_ns".to_string(), r.read.p99_ns as f64),
            ("virtual_meta_p99_ns".to_string(), r.meta.p99_ns as f64),
        ]),
    }
}

/// Renders the cross-fs markdown delta report CI uploads as an artifact.
fn markdown(rows: &[Row]) -> String {
    let mut md = String::new();
    md.push_str("# Replay corpus: ByteFS vs ext4-like baseline\n\n");
    md.push_str(
        "Each recorded trace is re-driven at exact speed against both file \
         systems; ops and divergences come from the replayed op stream, \
         latencies and throughput from the device's virtual clock.\n\n",
    );
    md.push_str(
        "| scenario | records | bytefs kops/s | ext4 kops/s | delta | \
         bytefs write p99 (ns) | ext4 write p99 (ns) | ext4 divergences |\n",
    );
    md.push_str("|---|---|---|---|---|---|---|---|\n");
    for row in rows {
        let b = &row.bytefs.result;
        let e = &row.ext4.result;
        let delta = if e.kops_per_sec > 0.0 {
            format!("{:+.1}%", (b.kops_per_sec / e.kops_per_sec - 1.0) * 100.0)
        } else {
            "n/a".to_string()
        };
        let _ = writeln!(
            md,
            "| {} | {} | {:.2} | {:.2} | {} | {} | {} | {} |",
            row.kind,
            row.recorded.trace.records.len(),
            b.kops_per_sec,
            e.kops_per_sec,
            delta,
            b.write.p99_ns,
            e.write.p99_ns,
            row.ext4.divergences,
        );
    }
    md.push_str("\nDigests (remounted image after replay):\n\n");
    md.push_str("| scenario | recorded (bytefs) | replayed (bytefs) | replayed (ext4) |\n");
    md.push_str("|---|---|---|---|\n");
    for row in rows {
        let _ = writeln!(
            md,
            "| {} | {:#018x} | {:#018x} | {:#018x} |",
            row.kind,
            row.recorded.remount_digest,
            row.bytefs.remount_digest,
            row.ext4.remount_digest,
        );
    }
    md
}

fn main() {
    let scale = bench::scale_from_args();
    let json_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_replay.json".to_string());
    let md_path = std::env::args().nth(3).unwrap_or_else(|| "replay_report.md".to_string());
    let trace_path =
        std::env::args().nth(4).unwrap_or_else(|| "replay_trace_cichurn.txt".to_string());

    let mut rows = Vec::new();
    for kind in CorpusKind::ALL {
        let recorded = record_corpus(kind, FsKind::ByteFs, bench_config(), scale, SEED)
            .unwrap_or_else(|e| fail(&format!("recording {kind}: {e}")));
        let bytefs = replay_twice(&recorded, FsKind::ByteFs, true);
        let ext4 = replay_twice(&recorded, FsKind::Ext4, false);
        rows.push(Row { kind, recorded, bytefs, ext4 });
    }

    let mut report = BenchReport::new("replay", scale.factor());
    for row in &rows {
        report.entries.push(entry(row.kind, "bytefs", &row.bytefs));
        report.entries.push(entry(row.kind, "ext4", &row.ext4));
    }
    // Every gate above passed to get here; the pinned scalar lets a report
    // reader (and the committed-artifact diff) see the contract held.
    report.summary.insert("deterministic".to_string(), 1.0);
    report.summary.insert("scenarios".to_string(), rows.len() as f64);
    if let Err(e) = report.write(&json_path) {
        fail(&format!("writing {json_path}: {e}"));
    }

    let md = markdown(&rows);
    if let Err(e) = std::fs::write(&md_path, &md) {
        fail(&format!("writing {md_path}: {e}"));
    }
    let cichurn =
        rows.iter().find(|r| r.kind == CorpusKind::CiChurn).expect("CiChurn is in CorpusKind::ALL");
    if let Err(e) = std::fs::write(&trace_path, cichurn.recorded.trace.to_text()) {
        fail(&format!("writing {trace_path}: {e}"));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.kind.to_string(),
                row.recorded.trace.records.len().to_string(),
                format!("{:.2}", row.bytefs.result.kops_per_sec),
                format!("{:.2}", row.ext4.result.kops_per_sec),
                format!("{:#018x}", row.bytefs.remount_digest),
            ]
        })
        .collect();
    print_table(
        "replay corpus (recorded on bytefs, replayed on bytefs + ext4)",
        &["scenario", "records", "bytefs kops/s", "ext4 kops/s", "replayed digest"],
        &table,
    );
    println!("replay: OK — report -> {json_path}, markdown -> {md_path}, trace -> {trace_path}");
}
