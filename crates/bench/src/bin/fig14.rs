//! Figure 14: ByteFS throughput as a function of the SSD DRAM write-log size.
//!
//! The paper sweeps 64–512 MB on full-size working sets; the harness sweeps
//! 4–32 MB against its proportionally scaled-down working sets (the ratio of
//! log size to working set is what matters).

use bench::{bench_config_with_log, print_table, scale_from_args};
use workloads::filebench::{Filebench, Personality};
use workloads::oltp::Oltp;
use workloads::ycsb::{run_ycsb, YcsbSpec, YcsbWorkload};
use workloads::{run_workload, FsKind, Workload};

const LOG_SIZES: [(usize, &str); 4] = [
    (4 << 20, "4M (≈64M)"),
    (8 << 20, "8M (≈128M)"),
    (16 << 20, "16M (≈256M)"),
    (32 << 20, "32M (≈512M)"),
];

fn main() {
    let scale = scale_from_args();
    let mut workloads: Vec<Box<dyn Workload>> = Vec::new();
    for p in Personality::ALL {
        workloads.push(Box::new(Filebench::new(p, scale)));
    }
    workloads.push(Box::new(Oltp::new(scale)));

    let mut rows = Vec::new();
    for w in &workloads {
        let mut kops = Vec::new();
        for (bytes, label) in LOG_SIZES {
            let run = run_workload(FsKind::ByteFs, bench_config_with_log(bytes), w.as_ref(), 31)
                .expect("workload runs");
            kops.push((label, run.kops_per_sec));
        }
        let base = kops[0].1;
        let mut row = vec![w.name()];
        for (label, v) in kops {
            row.push(format!("{label}: {:.2}x", v / base));
        }
        rows.push(row);
    }
    for ycsb in [YcsbWorkload::A, YcsbWorkload::B, YcsbWorkload::F] {
        let mut kops = Vec::new();
        for (bytes, label) in LOG_SIZES {
            let (dev, fs) = FsKind::ByteFs.build(bench_config_with_log(bytes));
            let r = run_ycsb(&dev, fs, &YcsbSpec::new(ycsb, scale), 31).expect("ycsb runs");
            kops.push((label, r.kops_per_sec));
        }
        let base = kops[0].1;
        let mut row = vec![ycsb.label().to_string()];
        for (label, v) in kops {
            row.push(format!("{label}: {:.2}x", v / base));
        }
        rows.push(row);
    }
    print_table(
        "Figure 14 — ByteFS throughput vs write-log size (normalized to the smallest log)",
        &["workload", "smallest", "2x", "4x", "8x"],
        &rows,
    );
    println!("Paper reference: larger logs help most workloads modestly; workloads with good");
    println!("write locality (e.g. OLTP) see marginal benefit.");
}
