//! Perf-regression gate: diffs fresh bench runs against the committed
//! `BENCH_*.json` artifacts (unified schema, see `bench::report`) and fails
//! on real regressions.
//!
//! ```text
//! bench_compare [--report md] <delta_out.json> <fresh1.json> <committed1.json> \
//!               [<fresh2.json> <committed2.json> ...]
//! ```
//!
//! For every `(fresh, committed)` pair the comparator matches entries by
//! key and checks the first-class metrics:
//!
//! * **throughput**: fresh must reach at least 75 % of the committed
//!   `throughput_ops_s` (a >25 % drop is a regression);
//! * **p99 / p99.9 latency**: fresh `p99_ns` (and, when both sides carry
//!   it, the schema-v3 `p999_ns`) must stay within 2x of committed.
//!
//! Reports at `MIN_SCHEMA_VERSION..=SCHEMA_VERSION` are accepted, so
//! committed v2 artifacts keep gating a v3 binary (their `p999_ns` parses
//! as 0 and is skipped). `--report md` additionally writes a markdown
//! delta table next to the JSON (same path, `.md` extension).
//!
//! Zero metrics mean "not applicable" and are never gated. Wall-clock
//! numbers are only comparable between identical hosts, so a pair is
//! **enforced** only when `host_cpus` matches between the two reports;
//! mismatched pairs are still diffed and recorded in the delta report
//! (uploaded as a CI artifact either way), just not failed on. Scale
//! differences are recorded too — throughput is time-normalized and the 2x
//! p99 headroom absorbs smoke-scale effects, so they do not disable
//! enforcement.
//!
//! Exit status: 0 when no enforced check failed, 1 otherwise, 2 on usage or
//! schema errors.

use std::fmt::Write as _;

use bench::{BenchReport, MIN_SCHEMA_VERSION, SCHEMA_VERSION};

/// Fresh throughput below this fraction of committed is a regression.
const THROUGHPUT_FLOOR: f64 = 0.75;

/// Fresh p99 above this multiple of committed is a regression.
const P99_CEILING: f64 = 2.0;

/// Virtual-clock metrics are host-independent, so they are enforced even
/// across differing `host_cpus` — but they vary with thread interleaving
/// (shared caches, allocation order), so the thresholds are wider: a
/// virtual rate below 0.6x or a virtual latency above 2x of committed is a
/// regression.
const VIRTUAL_FLOOR: f64 = 0.6;
const VIRTUAL_CEILING: f64 = 2.0;

struct Delta {
    bench: String,
    key: String,
    metric: String,
    committed: f64,
    fresh: f64,
    ratio: f64,
    enforced: bool,
    regression: bool,
}

fn compare_pair(
    fresh: &BenchReport,
    committed: &BenchReport,
    deltas: &mut Vec<Delta>,
) -> Result<(), String> {
    if fresh.bench != committed.bench {
        return Err(format!(
            "bench mismatch: fresh is {:?}, committed is {:?}",
            fresh.bench, committed.bench
        ));
    }
    for report in [fresh, committed] {
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&report.schema_version) {
            return Err(format!(
                "{}: schema_version {} (this comparator speaks {}..={})",
                report.bench, report.schema_version, MIN_SCHEMA_VERSION, SCHEMA_VERSION
            ));
        }
    }
    let enforced = fresh.host_cpus == committed.host_cpus;
    for c in &committed.entries {
        let Some(f) = fresh.entry(&c.key) else {
            // A configuration that vanished from the bench is a schema
            // change, not a perf regression; record it un-enforced.
            deltas.push(Delta {
                bench: committed.bench.clone(),
                key: c.key.clone(),
                metric: "missing-entry".into(),
                committed: 0.0,
                fresh: 0.0,
                ratio: 0.0,
                enforced: false,
                regression: false,
            });
            continue;
        };
        if c.throughput_ops_s > 0.0 && f.throughput_ops_s > 0.0 {
            let ratio = f.throughput_ops_s / c.throughput_ops_s;
            deltas.push(Delta {
                bench: committed.bench.clone(),
                key: c.key.clone(),
                metric: "throughput_ops_s".into(),
                committed: c.throughput_ops_s,
                fresh: f.throughput_ops_s,
                ratio,
                enforced,
                regression: enforced && ratio < THROUGHPUT_FLOOR,
            });
        }
        if c.p99_ns > 0 && f.p99_ns > 0 {
            let ratio = f.p99_ns as f64 / c.p99_ns as f64;
            deltas.push(Delta {
                bench: committed.bench.clone(),
                key: c.key.clone(),
                metric: "p99_ns".into(),
                committed: c.p99_ns as f64,
                fresh: f.p99_ns as f64,
                ratio,
                enforced,
                regression: enforced && ratio > P99_CEILING,
            });
        }
        // p99.9 (schema v3) gates like p99; a v2 side reports 0 and the
        // zero-means-not-applicable rule quietly skips the check.
        if c.p999_ns > 0 && f.p999_ns > 0 {
            let ratio = f.p999_ns as f64 / c.p999_ns as f64;
            deltas.push(Delta {
                bench: committed.bench.clone(),
                key: c.key.clone(),
                metric: "p999_ns".into(),
                committed: c.p999_ns as f64,
                fresh: f.p999_ns as f64,
                ratio,
                enforced,
                regression: enforced && ratio > P99_CEILING,
            });
        }
        // Virtual-clock extras (`*virtual*` keys) are simulation results,
        // not wall measurements: identical op streams charge identical
        // modelled costs regardless of host speed, so these are enforced
        // across differing host_cpus too — this is what lets the gate bite
        // on CI runners whose shape differs from the committed artifacts'
        // producer. Only a matching scale makes the values comparable.
        let virtual_enforced = fresh.scale == committed.scale;
        for (k, cv) in &c.extra {
            if !k.contains("virtual") {
                continue;
            }
            let Some(fv) = f.extra.get(k) else { continue };
            if *cv <= 0.0 || *fv <= 0.0 {
                continue;
            }
            let ratio = fv / cv;
            // `_ms`/`_ns` keys are latencies (higher = worse); the rest
            // are rates (lower = worse).
            let latency_like = k.ends_with("_ms") || k.ends_with("_ns");
            let regression = virtual_enforced
                && if latency_like { ratio > VIRTUAL_CEILING } else { ratio < VIRTUAL_FLOOR };
            deltas.push(Delta {
                bench: committed.bench.clone(),
                key: c.key.clone(),
                metric: k.clone(),
                committed: *cv,
                fresh: *fv,
                ratio,
                enforced: virtual_enforced,
                regression,
            });
        }
    }
    // Report-level summary scalars — the only place gc_pause's
    // p99_ratio_on_vs_off and qd_sweep's qd16_vs_qd1_t* live. They are
    // derived from wall measurements on one host, so they are enforced
    // like wall metrics (matched host_cpus). Direction by name: keys
    // containing "p99" or ending in "_ms"/"_ns" are higher-is-worse,
    // everything else (speedup ratios, op counts) lower-is-worse.
    for (k, cv) in &committed.summary {
        let Some(fv) = fresh.summary.get(k) else { continue };
        if *cv <= 0.0 || *fv <= 0.0 {
            continue;
        }
        let ratio = fv / cv;
        let higher_worse = k.contains("p99") || k.ends_with("_ms") || k.ends_with("_ns");
        let regression =
            enforced && if higher_worse { ratio > P99_CEILING } else { ratio < THROUGHPUT_FLOOR };
        deltas.push(Delta {
            bench: committed.bench.clone(),
            key: "summary".into(),
            metric: k.clone(),
            committed: *cv,
            fresh: *fv,
            ratio,
            enforced,
            regression,
        });
    }
    Ok(())
}

fn write_delta_report(path: &str, deltas: &[Delta], enforced_any: bool) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"throughput_floor\": {THROUGHPUT_FLOOR},");
    let _ = writeln!(s, "  \"p99_ceiling\": {P99_CEILING},");
    let _ = writeln!(s, "  \"enforced\": {enforced_any},");
    let _ = writeln!(s, "  \"regressions\": {},", deltas.iter().filter(|d| d.regression).count());
    s.push_str("  \"deltas\": [\n");
    for (i, d) in deltas.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"bench\": {:?}, \"key\": {:?}, \"metric\": {:?}, \"committed\": {:.3}, \
             \"fresh\": {:.3}, \"ratio\": {:.4}, \"enforced\": {}, \"regression\": {}}}",
            d.bench, d.key, d.metric, d.committed, d.fresh, d.ratio, d.enforced, d.regression
        );
        s.push_str(if i + 1 < deltas.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// Renders the delta table as a markdown document, written next to the JSON
/// delta (same path, `.md` extension) when `--report md` is passed — the
/// human-readable artifact CI uploads alongside the machine-readable one.
fn write_markdown_report(path: &str, deltas: &[Delta]) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("# Bench comparison\n\n");
    let regressions = deltas.iter().filter(|d| d.regression).count();
    let _ = writeln!(
        s,
        "Gates: throughput ≥ {THROUGHPUT_FLOOR}x committed, p99/p99.9 ≤ {P99_CEILING}x \
         committed, virtual rates ≥ {VIRTUAL_FLOOR}x / latencies ≤ {VIRTUAL_CEILING}x."
    );
    let _ = writeln!(s, "\n**{} deltas, {} regressions.**\n", deltas.len(), regressions);
    s.push_str("| bench | entry | metric | baseline | fresh | ratio | verdict |\n");
    s.push_str("|---|---|---|---:|---:|---:|---|\n");
    for d in deltas {
        if d.metric == "missing-entry" {
            let _ = writeln!(s, "| {} | {} | missing-entry | – | – | – | info |", d.bench, d.key);
            continue;
        }
        let verdict = if d.regression {
            "**REGRESSION**"
        } else if !d.enforced {
            "info"
        } else {
            "ok"
        };
        let _ = writeln!(
            s,
            "| {} | {} | {} | {:.0} | {:.0} | {:.2} | {verdict} |",
            d.bench, d.key, d.metric, d.committed, d.fresh, d.ratio
        );
    }
    std::fs::write(path, s)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--report md` may appear anywhere; strip it before positional parsing.
    let mut report_md = false;
    args.retain(|a| match a.as_str() {
        "--report=md" => {
            report_md = true;
            false
        }
        _ => true,
    });
    if let Some(pos) = args.iter().position(|a| a == "--report") {
        if args.get(pos + 1).map(String::as_str) != Some("md") {
            eprintln!("bench_compare: --report only supports 'md'");
            std::process::exit(2);
        }
        args.drain(pos..=pos + 1);
        report_md = true;
    }
    if args.len() < 3 || args.len().is_multiple_of(2) {
        eprintln!(
            "usage: bench_compare [--report md] <delta_out.json> <fresh.json> <committed.json> \
             [<fresh2> <committed2> ...]"
        );
        std::process::exit(2);
    }
    let out = &args[0];
    let mut deltas = Vec::new();
    let mut enforced_any = false;
    for pair in args[1..].chunks(2) {
        let fresh = BenchReport::load(&pair[0]).unwrap_or_else(|e| {
            eprintln!("bench_compare: {e}");
            std::process::exit(2);
        });
        let committed = BenchReport::load(&pair[1]).unwrap_or_else(|e| {
            eprintln!("bench_compare: {e}");
            std::process::exit(2);
        });
        let enforced = fresh.host_cpus == committed.host_cpus;
        enforced_any |= enforced;
        println!(
            "bench_compare: {} — fresh host_cpus={} scale={} vs committed host_cpus={} scale={} ({})",
            committed.bench,
            fresh.host_cpus,
            fresh.scale,
            committed.host_cpus,
            committed.scale,
            if enforced {
                "wall metrics ENFORCED"
            } else {
                "wall metrics informational: host_cpus differ; virtual metrics still enforced"
            }
        );
        if let Err(e) = compare_pair(&fresh, &committed, &mut deltas) {
            eprintln!("bench_compare: {e}");
            std::process::exit(2);
        }
    }

    let regressions: Vec<&Delta> = deltas.iter().filter(|d| d.regression).collect();
    for d in &deltas {
        if d.metric == "missing-entry" {
            println!("  {} {}: entry missing from the fresh run", d.bench, d.key);
            continue;
        }
        let verdict = if d.regression {
            "REGRESSION"
        } else if !d.enforced {
            "info"
        } else {
            "ok"
        };
        println!(
            "  {} {} {}: committed {:.0} fresh {:.0} ratio {:.2} [{verdict}]",
            d.bench, d.key, d.metric, d.committed, d.fresh, d.ratio
        );
    }
    if let Err(e) = write_delta_report(out, &deltas, enforced_any) {
        eprintln!("bench_compare: failed to write {out}: {e}");
        std::process::exit(2);
    }
    if report_md {
        let md_path = match out.strip_suffix(".json") {
            Some(stem) => format!("{stem}.md"),
            None => format!("{out}.md"),
        };
        if let Err(e) = write_markdown_report(&md_path, &deltas) {
            eprintln!("bench_compare: failed to write {md_path}: {e}");
            std::process::exit(2);
        }
        println!("bench_compare: markdown report -> {md_path}");
    }
    println!("bench_compare: {} deltas, {} regressions -> {out}", deltas.len(), regressions.len());
    if !regressions.is_empty() {
        for d in &regressions {
            eprintln!(
                "REGRESSION: {} {} {} fell to {:.2}x of committed",
                d.bench, d.key, d.metric, d.ratio
            );
        }
        std::process::exit(1);
    }
}
