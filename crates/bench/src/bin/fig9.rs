//! Figure 9: host–SSD I/O traffic breakdown for the macro-benchmarks,
//! normalized to Ext4.

use bench::{bench_config, mib, print_table, scale_from_args};
use mssd::stats::Direction;
use workloads::filebench::{Filebench, Personality};
use workloads::oltp::Oltp;
use workloads::{run_workload, FsKind, Workload};

fn main() {
    let scale = scale_from_args();
    let mut workloads: Vec<Box<dyn Workload>> = Vec::new();
    for p in Personality::ALL {
        workloads.push(Box::new(Filebench::new(p, scale)));
    }
    workloads.push(Box::new(Oltp::new(scale)));

    let mut rows = Vec::new();
    for w in &workloads {
        let mut totals = Vec::new();
        for kind in FsKind::MAIN {
            let run = run_workload(kind, bench_config(), w.as_ref(), 5).expect("workload runs");
            let t = &run.traffic;
            totals.push((
                kind,
                t.host_data_bytes(Direction::Read),
                t.host_data_bytes(Direction::Write),
                t.host_metadata_bytes(Direction::Read),
                t.host_metadata_bytes(Direction::Write),
            ));
        }
        let ext4_total: u64 =
            totals.first().map(|(_, a, b, c, d)| a + b + c + d).unwrap_or(1).max(1);
        for (kind, dr, dw, mr, mw) in totals {
            rows.push(vec![
                w.name(),
                kind.label().to_string(),
                mib(dr),
                mib(dw),
                mib(mr),
                mib(mw),
                format!("{:.2}x", (dr + dw + mr + mw) as f64 / ext4_total as f64),
            ]);
        }
    }
    print_table(
        "Figure 9 — host-SSD traffic on macro-benchmarks (normalized to Ext4)",
        &["workload", "fs", "data read", "data write", "meta read", "meta write", "total vs Ext4"],
        &rows,
    );
    println!("Paper reference: ByteFS reduces host-SSD traffic by up to 5.1x vs the baselines.");
}
