//! Queue-depth sweep of the multi-queue host interface (wall-clock).
//!
//! The NVMe-style [`mssd::HostQueue`] front end exists so the host boundary
//! stops being the bottleneck: batched doorbells amortize per-command
//! overhead and coalesce adjacent byte writes into single log appends. This
//! bench measures exactly that: wall-clock throughput and per-command p99
//! latency of the same op stream driven at queue depth 1 (the synchronous
//! depth-1 shim — one device call per op, today's default path) versus
//! batched submission at depths 4/16/64, on 1/2/4/8 threads with one queue
//! per thread over disjoint partitions.
//!
//! The op stream mimics a log-structured metadata workload: runs of
//! adjacent cacheline writes (the shape the write log is built for, and the
//! shape doorbell coalescing accelerates), interleaved with reads of
//! recently written ranges and periodic transactional commits.
//!
//! The CI acceptance gate reads the `qd16_vs_qd1_t4` summary: batched qd=16
//! submission must beat qd=1 synchronous by >= 1.3x at 4 threads (skipped
//! below 4 CPUs, where wall-clock scaling is physically capped).
//!
//! Usage: `qd_sweep [scale] [output.json]` — scale multiplies the per-thread
//! op count (default 1.0); results go to `BENCH_qd_sweep.json`.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use bench::{host_cpus, print_table, BenchEntry, BenchReport};
use mssd::log::PARTITION_BYTES;
use mssd::queue::Command;
use mssd::{Category, DramMode, Mssd, MssdConfig, TxId};
use workloads::Histogram;

/// Commands per thread at scale 1.0.
const OPS_PER_THREAD: usize = 60_000;

/// Thread counts swept (the CI gate compares qd16 vs qd1 at 4 threads).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Queue depths swept (1 = the synchronous shim, no batching).
const DEPTHS: [usize; 4] = [1, 4, 16, 64];

/// Bytes of each thread's working window inside its partition.
const WINDOW_BYTES: u64 = 4 << 20;

/// Timed repetitions per configuration; the best run is reported. Five
/// (rather than mt_scale's three) because the qd=1-vs-qd=16 ratio is the
/// gated number and single-CPU containers time-slice multi-thread runs,
/// which widens run-to-run variance.
const REPEATS: usize = 5;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Deterministic per-thread command stream: runs of adjacent cacheline
/// writes with occasional reads and transactional commit batches.
struct CmdGen {
    rng: XorShift,
    base: u64,
    slots: u64,
    cursor: u64,
    run_left: u64,
    tag: u8,
    tx: TxId,
    tx_writes: u32,
}

impl CmdGen {
    fn new(thread: usize) -> Self {
        Self {
            rng: XorShift(0x51DE_CADE ^ ((thread as u64) << 32) | 1),
            base: thread as u64 * PARTITION_BYTES,
            slots: WINDOW_BYTES / 64,
            cursor: 0,
            run_left: 0,
            tag: 1,
            tx: TxId((thread as u32 + 1) << 20),
            tx_writes: 0,
        }
    }

    fn next_command(&mut self) -> Command {
        // Every 32nd transactional write batch closes with a COMMIT.
        if self.tx_writes >= 32 {
            self.tx_writes = 0;
            let cmd = Command::Commit { txid: self.tx };
            self.tx = TxId(self.tx.0 + 1);
            return cmd;
        }
        if self.run_left == 0 {
            // Start a fresh run of adjacent lines somewhere in the window;
            // every 8th command is a read of a recent range instead.
            if self.rng.below(8) == 0 {
                let addr = self.base + self.rng.below(self.slots) * 64;
                return Command::ByteRead { addr, len: 128, cat: Category::Inode };
            }
            self.cursor = self.rng.below(self.slots - 32);
            self.run_left = 8 + self.rng.below(16);
            self.tag = self.tag.wrapping_add(1);
        }
        self.run_left -= 1;
        let addr = self.base + self.cursor * 64;
        self.cursor += 1;
        // Every 4th run is transactional (awaiting the periodic COMMIT).
        let transactional = self.tag.is_multiple_of(4);
        if transactional {
            self.tx_writes += 1;
        }
        Command::ByteWrite {
            addr,
            data: vec![self.tag; 64],
            txid: transactional.then_some(self.tx),
            cat: Category::Inode,
        }
    }
}

/// Applies one command through the synchronous depth-1 shim (the qd=1
/// baseline: exactly what the file systems do today).
fn apply_sync(dev: &Mssd, cmd: Command) {
    match cmd {
        Command::ByteWrite { addr, data, txid, cat } => dev.byte_write(addr, &data, txid, cat),
        Command::ByteRead { addr, len, cat } => {
            std::hint::black_box(dev.byte_read(addr, len, cat));
        }
        Command::Commit { txid } => dev.commit(txid),
        _ => unreachable!("the sweep only generates byte ops and commits"),
    }
}

/// Every `LAT_SAMPLE`-th command is latency-timed (submit → completion).
/// Sampling keeps the clock reads off the throughput fast path — timing
/// every command would add two `Instant::now()` calls per op to both sides
/// and drown the effect under measurement overhead.
const LAT_SAMPLE: usize = 8;

/// One thread's measured loop. Returns a histogram of sampled per-command
/// wall latencies in ns.
fn drive_thread(dev: &Arc<Mssd>, thread: usize, qd: usize, ops: usize) -> Histogram {
    let mut gen = CmdGen::new(thread);
    let mut lat = Histogram::new();
    if qd == 1 {
        for i in 0..ops {
            let cmd = gen.next_command();
            if i.is_multiple_of(LAT_SAMPLE) {
                let t0 = Instant::now();
                apply_sync(dev, cmd);
                lat.record(t0.elapsed().as_nanos() as u64);
            } else {
                apply_sync(dev, cmd);
            }
        }
        return lat;
    }
    let mut q = dev.open_queue(qd);
    // Sampled commands' (index-within-batch, submit time); completions of a
    // batch arrive in submission order.
    let mut sampled: Vec<(usize, Instant)> = Vec::with_capacity(qd / LAT_SAMPLE + 1);
    let mut issued = 0usize;
    while issued < ops {
        let batch = qd.min(ops - issued);
        sampled.clear();
        for i in 0..batch {
            let cmd = gen.next_command();
            if issued.is_multiple_of(LAT_SAMPLE) {
                sampled.push((i, Instant::now()));
            }
            q.submit(cmd).expect("queue drained before each batch");
            issued += 1;
        }
        q.ring_doorbell();
        let mut next_sample = sampled.iter().peekable();
        let mut idx = 0usize;
        while q.poll().is_some() {
            if let Some((i, t0)) = next_sample.peek() {
                if *i == idx {
                    lat.record(t0.elapsed().as_nanos() as u64);
                    next_sample.next();
                }
            }
            idx += 1;
        }
    }
    lat
}

struct Sample {
    qd: usize,
    threads: usize,
    total_ops: usize,
    wall_ms: f64,
    ops_per_sec: f64,
    p99_ns: u64,
    p999_ns: u64,
}

fn timed_run(qd: usize, threads: usize, ops: usize) -> (f64, Histogram) {
    let cfg = MssdConfig::default().with_capacity(1 << 30);
    let dev = Mssd::new(cfg, DramMode::WriteLog);
    // Warm up in a partition no measured thread uses.
    drive_thread(&dev, 60, qd, (ops / 10).max(500));
    dev.force_clean();
    dev.reset_stats();
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let dev = Arc::clone(&dev);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                drive_thread(&dev, t, qd, ops)
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let mut lat = Histogram::new();
    for h in handles {
        lat.merge(&h.join().expect("bench thread panicked"));
    }
    let wall = start.elapsed().as_secs_f64();
    (wall, lat)
}

fn run_config(qd: usize, threads: usize, ops: usize) -> Sample {
    let (mut wall, mut lat) = timed_run(qd, threads, ops);
    for _ in 1..REPEATS {
        let (w, l) = timed_run(qd, threads, ops);
        if w < wall {
            wall = w;
            lat = l;
        }
    }
    let total_ops = ops * threads;
    Sample {
        qd,
        threads,
        total_ops,
        wall_ms: wall * 1e3,
        ops_per_sec: total_ops as f64 / wall,
        p99_ns: lat.value_at(0.99),
        p999_ns: lat.value_at(0.999),
    }
}

fn main() {
    let scale = std::env::args().nth(1).and_then(|a| a.parse::<f64>().ok()).unwrap_or(1.0);
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_qd_sweep.json".to_string());
    // The floor keeps even smoke-scale runs long enough (tens of ms per
    // configuration) that the CI gate measures work, not timer noise.
    let ops = ((OPS_PER_THREAD as f64 * scale) as usize).max(30_000);
    eprintln!("qd_sweep: {ops} ops/thread, host parallelism {}", host_cpus());

    // Bring the CPU out of idle so the first configuration is not penalized.
    let _ = run_config(4, 2, ops / 4);

    let mut samples = Vec::new();
    for threads in THREADS {
        for qd in DEPTHS {
            let s = run_config(qd, threads, ops);
            eprintln!(
                "qd{:>2} x{threads}: {:>10.0} ops/s  p99 {:>7} ns  ({:.0} ms wall)",
                s.qd, s.ops_per_sec, s.p99_ns, s.wall_ms
            );
            samples.push(s);
        }
    }

    let base = |threads: usize| {
        samples
            .iter()
            .find(|b| b.threads == threads && b.qd == 1)
            .map(|b| b.ops_per_sec)
            .unwrap_or(1.0)
    };
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                format!("qd{}", s.qd),
                s.threads.to_string(),
                format!("{}", s.total_ops),
                format!("{:.0}", s.wall_ms),
                format!("{:.0}", s.ops_per_sec),
                format!("{}", s.p99_ns),
                format!("{}", s.p999_ns),
                format!("{:.2}x", s.ops_per_sec / base(s.threads)),
            ]
        })
        .collect();
    print_table(
        "qd_sweep — batched queue submission vs synchronous (shared Mssd)",
        &["depth", "threads", "ops", "wall ms", "ops/s", "p99 ns", "p99.9 ns", "vs qd1"],
        &rows,
    );

    let mut report = BenchReport::new("qd_sweep", scale);
    for s in &samples {
        report.entries.push(BenchEntry {
            key: format!("qd{}/t{}", s.qd, s.threads),
            throughput_ops_s: (s.ops_per_sec * 1000.0).round() / 1000.0,
            p99_ns: s.p99_ns,
            p999_ns: s.p999_ns,
            extra: std::collections::BTreeMap::from([
                ("qd".to_string(), s.qd as f64),
                ("threads".to_string(), s.threads as f64),
                ("total_ops".to_string(), s.total_ops as f64),
                ("wall_ms".to_string(), (s.wall_ms * 1000.0).round() / 1000.0),
                (
                    "speedup_vs_qd1".to_string(),
                    (s.ops_per_sec / base(s.threads) * 1000.0).round() / 1000.0,
                ),
            ]),
        });
    }
    for threads in THREADS {
        if let Some(s) = samples.iter().find(|s| s.threads == threads && s.qd == 16) {
            report.summary.insert(
                format!("qd16_vs_qd1_t{threads}"),
                (s.ops_per_sec / base(threads) * 1000.0).round() / 1000.0,
            );
        }
    }
    if let Err(e) = report.write(&out_path) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("results written to {out_path}");
}
