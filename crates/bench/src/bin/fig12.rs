//! Figure 12: performance breakdown of the ByteFS design — Ext4 vs
//! ByteFS-Dual (dual interface for metadata only) vs ByteFS-Log (plus the
//! firmware log) vs full ByteFS — on the macro workloads, normalized to Ext4.

use bench::{bench_config, print_table, scale_from_args};
use workloads::filebench::{Filebench, Personality};
use workloads::oltp::Oltp;
use workloads::{run_workload, FsKind, Workload};

fn main() {
    let scale = scale_from_args();
    let mut workloads: Vec<Box<dyn Workload>> = Vec::new();
    for p in Personality::ALL {
        workloads.push(Box::new(Filebench::new(p, scale)));
    }
    workloads.push(Box::new(Oltp::new(scale)));

    let mut rows = Vec::new();
    for w in &workloads {
        let mut kops = Vec::new();
        for kind in FsKind::ABLATION {
            let run = run_workload(kind, bench_config(), w.as_ref(), 17).expect("workload runs");
            kops.push((kind, run.kops_per_sec));
        }
        let ext4 = kops[0].1;
        let mut row = vec![w.name()];
        for (kind, v) in &kops {
            row.push(format!("{kind}: {:.2}x", v / ext4));
        }
        rows.push(row);
    }
    print_table(
        "Figure 12 — ByteFS performance breakdown (normalized to Ext4)",
        &["workload", "ext4", "bytefs-dual", "bytefs-log", "bytefs"],
        &rows,
    );
    println!("Paper reference: Varmail/Fileserver benefit from both the dual interface and the");
    println!("log-structured buffer; Webproxy mostly from the dual interface; OLTP from both.");
}
