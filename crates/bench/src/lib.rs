//! Shared helpers for the benchmark harness binaries.
//!
//! Every table and figure of the paper has a dedicated binary in `src/bin/`
//! (see DESIGN.md for the index). The binaries accept an optional scale factor
//! as their first argument, e.g.
//!
//! ```text
//! cargo run --release -p bench --bin fig6 -- 0.5
//! ```
//!
//! runs the Figure 6 sweep at half the default working-set size.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;

pub use report::{host_cpus, BenchEntry, BenchReport, MIN_SCHEMA_VERSION, SCHEMA_VERSION};

use mssd::MssdConfig;
use workloads::Scale;

/// Parses the scale factor from the process arguments (default 1.0).
pub fn scale_from_args() -> Scale {
    let factor = std::env::args().nth(1).and_then(|a| a.parse::<f64>().ok()).unwrap_or(1.0);
    Scale::new(factor)
}

/// The device configuration used by the harness: the paper's emulator timing
/// (Table 4) on a 1 GiB volume, with the device DRAM region scaled to 16 MB so
/// that the scaled-down working sets exercise the same cache/flash pressure as
/// the paper's full-size runs on a 256 MB region.
pub fn bench_config() -> MssdConfig {
    MssdConfig::default().with_capacity(1 << 30).with_dram_region(16 << 20)
}

/// A harness device configuration with a custom DRAM (write-log) size, used by
/// the Figure 14 sensitivity sweep.
pub fn bench_config_with_log(log_bytes: usize) -> MssdConfig {
    bench_config().with_dram_region(log_bytes)
}

/// Prints a markdown-style table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!("|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Formats a ratio like `2.41x`.
pub fn ratio(value: f64, base: f64) -> String {
    if base <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:.2}x", value / base)
}

/// Formats a byte count in MiB.
pub fn mib(bytes: u64) -> String {
    format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_valid_and_scaled() {
        let cfg = bench_config();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.capacity_bytes, 1 << 30);
        assert_eq!(cfg.dram_region_bytes, 16 << 20);
        let cfg = bench_config_with_log(4 << 20);
        assert_eq!(cfg.dram_region_bytes, 4 << 20);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(5.0, 2.0), "2.50x");
        assert_eq!(ratio(1.0, 0.0), "n/a");
        assert_eq!(mib(1 << 20), "1.0 MiB");
    }

    #[test]
    fn default_scale_is_one() {
        assert_eq!(scale_from_args().factor(), 1.0);
    }
}
