//! Common value types used by the [`crate::FileSystem`] trait.

use serde::{Deserialize, Serialize};

/// An open file handle returned by `create`/`open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fd(pub u64);

impl std::fmt::Display for Fd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// The type of a file-system object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileType {
    /// A regular file.
    File,
    /// A directory.
    Directory,
}

impl FileType {
    /// `true` for [`FileType::Directory`].
    pub fn is_dir(self) -> bool {
        matches!(self, FileType::Directory)
    }
}

/// Flags controlling `open` behaviour; a tiny subset of `O_*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpenFlags {
    /// Create the file if it does not exist.
    pub create: bool,
    /// Truncate the file to zero length on open.
    pub truncate: bool,
    /// Open for writing (reads are always allowed).
    pub write: bool,
    /// Bypass the host page cache (`O_DIRECT`): reads and writes go straight
    /// to the device and the interface is chosen by request size (§4.6).
    pub direct: bool,
    /// All writes append to the end of the file (`O_APPEND`).
    pub append: bool,
}

impl OpenFlags {
    /// Read-only open of an existing file.
    pub fn read_only() -> Self {
        Self::default()
    }

    /// Read-write open of an existing file.
    pub fn read_write() -> Self {
        Self { write: true, ..Self::default() }
    }

    /// Create (if needed) and open read-write.
    pub fn create_rw() -> Self {
        Self { create: true, write: true, ..Self::default() }
    }

    /// Create, truncate and open read-write.
    pub fn create_truncate() -> Self {
        Self { create: true, truncate: true, write: true, ..Self::default() }
    }

    /// Enables `O_DIRECT` on top of the current flags.
    pub fn with_direct(mut self) -> Self {
        self.direct = true;
        self
    }

    /// Enables `O_APPEND` on top of the current flags.
    pub fn with_append(mut self) -> Self {
        self.append = true;
        self.write = true;
        self
    }
}

/// File metadata as returned by `stat`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metadata {
    /// Inode number.
    pub inode: u64,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Object type.
    pub file_type: FileType,
    /// Number of directory entries pointing at this inode.
    pub nlink: u32,
    /// Number of data blocks allocated to the file.
    pub blocks: u64,
    /// Last modification time in virtual nanoseconds.
    pub mtime_ns: u64,
}

impl Metadata {
    /// `true` if the object is a directory.
    pub fn is_dir(&self) -> bool {
        self.file_type.is_dir()
    }

    /// `true` if the object is a regular file.
    pub fn is_file(&self) -> bool {
        matches!(self.file_type, FileType::File)
    }
}

/// One entry returned by `readdir`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirEntry {
    /// Name of the child within its parent directory (no slashes).
    pub name: String,
    /// Inode of the child.
    pub inode: u64,
    /// Type of the child.
    pub file_type: FileType,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_flag_constructors() {
        assert!(!OpenFlags::read_only().write);
        assert!(OpenFlags::read_write().write);
        let f = OpenFlags::create_truncate();
        assert!(f.create && f.truncate && f.write);
        let f = OpenFlags::read_only().with_append();
        assert!(f.append && f.write);
        let f = OpenFlags::read_write().with_direct();
        assert!(f.direct);
    }

    #[test]
    fn metadata_type_helpers() {
        let m = Metadata {
            inode: 2,
            size: 0,
            file_type: FileType::Directory,
            nlink: 2,
            blocks: 1,
            mtime_ns: 0,
        };
        assert!(m.is_dir());
        assert!(!m.is_file());
        assert!(FileType::Directory.is_dir());
        assert!(!FileType::File.is_dir());
    }

    #[test]
    fn fd_displays_compactly() {
        assert_eq!(Fd(7).to_string(), "fd7");
    }
}
