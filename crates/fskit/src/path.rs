//! Path normalization and traversal helpers.
//!
//! All file systems in this workspace use absolute, `/`-separated paths.
//! These helpers centralize validation so every implementation rejects the
//! same malformed inputs.

use crate::error::{FsError, FsResult};

/// Splits an absolute path into its components.
///
/// `"/"` yields an empty vector. Consecutive slashes and a trailing slash are
/// tolerated; `.` and `..` components, empty paths and relative paths are
/// rejected.
///
/// # Errors
///
/// Returns [`FsError::InvalidPath`] for relative paths, empty paths, or paths
/// containing `.` / `..` components.
///
/// ```
/// use fskit::path::components;
/// assert_eq!(components("/a/b/c").unwrap(), vec!["a", "b", "c"]);
/// assert!(components("relative/path").is_err());
/// ```
pub fn components(path: &str) -> FsResult<Vec<&str>> {
    if path.is_empty() {
        return Err(FsError::InvalidPath(path.to_string()));
    }
    if !path.starts_with('/') {
        return Err(FsError::InvalidPath(path.to_string()));
    }
    let mut out = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" => continue,
            "." | ".." => return Err(FsError::InvalidPath(path.to_string())),
            c => out.push(c),
        }
    }
    Ok(out)
}

/// Splits a path into `(parent components, final name)`.
///
/// # Errors
///
/// Returns [`FsError::InvalidPath`] if the path is the root (`/`) or is
/// malformed.
pub fn split_parent(path: &str) -> FsResult<(Vec<&str>, &str)> {
    let mut comps = components(path)?;
    match comps.pop() {
        Some(name) => Ok((comps, name)),
        None => Err(FsError::InvalidPath(path.to_string())),
    }
}

/// Joins a parent path and a child name into an absolute path.
pub fn join(parent: &str, name: &str) -> String {
    if parent == "/" {
        format!("/{name}")
    } else {
        format!("{}/{}", parent.trim_end_matches('/'), name)
    }
}

/// A cheap, deterministic hash of a file or directory name, used by directory
/// caches that index dentries "by their hashed directory names" (§4.5).
pub fn name_hash(name: &str) -> u64 {
    // FNV-1a, good enough for cache bucketing and fully deterministic.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_no_components() {
        assert_eq!(components("/").unwrap(), Vec::<&str>::new());
    }

    #[test]
    fn normal_paths_split() {
        assert_eq!(components("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(components("/a//b/").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn invalid_paths_rejected() {
        assert!(components("").is_err());
        assert!(components("a/b").is_err());
        assert!(components("/a/./b").is_err());
        assert!(components("/a/../b").is_err());
    }

    #[test]
    fn split_parent_works() {
        let (parent, name) = split_parent("/a/b/c").unwrap();
        assert_eq!(parent, vec!["a", "b"]);
        assert_eq!(name, "c");
        let (parent, name) = split_parent("/top").unwrap();
        assert!(parent.is_empty());
        assert_eq!(name, "top");
        assert!(split_parent("/").is_err());
    }

    #[test]
    fn join_handles_root() {
        assert_eq!(join("/", "x"), "/x");
        assert_eq!(join("/a/b", "x"), "/a/b/x");
        assert_eq!(join("/a/b/", "x"), "/a/b/x");
    }

    #[test]
    fn name_hash_is_deterministic_and_spreads() {
        assert_eq!(name_hash("file1"), name_hash("file1"));
        assert_ne!(name_hash("file1"), name_hash("file2"));
        assert_ne!(name_hash(""), name_hash("a"));
    }
}
