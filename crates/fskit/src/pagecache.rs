//! The host page cache, with copy-on-write duplicate pages and XOR-based
//! dirty-chunk detection.
//!
//! §4.6 of the paper: in buffered I/O mode ByteFS tracks, per cached page, a
//! duplicate copy taken the first time the page is modified (copy-on-write).
//! On writeback it XORs the original and current contents to find the modified
//! 64-byte chunks and computes the modified ratio `R = N_modified / N_total`;
//! if `R < 1/8` the dirty chunks are persisted over the byte interface,
//! otherwise the whole page goes through the block interface.
//!
//! The same [`PageCache`] type (with CoW tracking disabled) serves as the
//! ordinary host page cache of the block-based baseline file systems.
//!
//! Page data is stored `Arc`-backed and handed out as [`PageRef`] handles:
//! [`PageCache::get`] is a reference-count bump, not a 4 KB memcpy, and the
//! first dirty write to a page that still has outstanding readers (or a CoW
//! original) copies the buffer exactly once (`Arc::make_mut`). Read-dominated
//! paths through the file systems are therefore zero-copy end to end.

use std::collections::{BTreeSet, HashMap};
use std::ops::Deref;
use std::sync::Arc;

use parking_lot::Mutex;

/// Key of a cached page: `(inode number, page index within the file)`.
pub type PageKey = (u64, u64);

/// A cheap, immutable handle to one cached page's bytes.
///
/// Cloning a `PageRef` (and fetching one from [`PageCache::get`]) only bumps a
/// reference count. The underlying buffer is copied lazily, the first time the
/// cache must mutate a page that is still shared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageRef(Arc<Vec<u8>>);

impl PageRef {
    /// Wraps an owned buffer.
    pub fn new(data: Vec<u8>) -> Self {
        Self(Arc::new(data))
    }

    /// An all-zero page of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        Self::new(vec![0u8; len])
    }

    /// Length of the page in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the page is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the bytes out into an owned vector (the only copying API —
    /// everything else borrows).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }

    /// `true` when both handles share the same underlying buffer (used by
    /// tests to assert zero-copy behaviour).
    pub fn ptr_eq(a: &PageRef, b: &PageRef) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    fn into_arc(self) -> Arc<Vec<u8>> {
        self.0
    }
}

impl Deref for PageRef {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.0.as_slice()
    }
}

impl AsRef<[u8]> for PageRef {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for PageRef {
    fn from(data: Vec<u8>) -> Self {
        Self::new(data)
    }
}

/// A contiguous modified byte range within a page, aligned to chunk
/// boundaries: `(offset, length)`.
pub type DirtyRange = (usize, usize);

/// A dirty page handed to the file system for writeback. Both buffers are
/// shared handles into the cache — taking dirty pages copies nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyPage {
    /// Owning inode.
    pub inode: u64,
    /// Page index within the file.
    pub index: u64,
    /// Current contents.
    pub data: PageRef,
    /// Contents when the page was first modified (present only when CoW
    /// tracking is enabled), used for XOR dirty-chunk detection.
    pub original: Option<PageRef>,
}

impl DirtyPage {
    /// Modified chunk ranges of this page (64-byte aligned). When no original
    /// copy exists the whole page is considered modified.
    pub fn dirty_ranges(&self, chunk: usize) -> Vec<DirtyRange> {
        match &self.original {
            Some(orig) => dirty_chunks(orig, &self.data, chunk),
            None => vec![(0, self.data.len())],
        }
    }

    /// Modified ratio `R` of this page (1.0 when no original copy exists).
    pub fn modified_ratio(&self, chunk: usize) -> f64 {
        match &self.original {
            Some(orig) => modified_ratio(orig, &self.data, chunk),
            None => 1.0,
        }
    }
}

#[derive(Debug, Clone)]
struct CachedPage {
    data: Arc<Vec<u8>>,
    dirty: bool,
    original: Option<Arc<Vec<u8>>>,
    last_use: u64,
}

/// An LRU host page cache keyed by `(inode, page index)`.
#[derive(Debug)]
pub struct PageCache {
    page_size: usize,
    capacity_pages: usize,
    track_cow: bool,
    pages: HashMap<PageKey, CachedPage>,
    tick: u64,
}

impl PageCache {
    /// Creates a page cache holding at most `capacity_pages` pages of
    /// `page_size` bytes. `track_cow` enables the ByteFS duplicate-page
    /// mechanism.
    pub fn new(capacity_pages: usize, page_size: usize, track_cow: bool) -> Self {
        Self {
            page_size,
            capacity_pages: capacity_pages.max(1),
            track_cow,
            pages: HashMap::new(),
            tick: 0,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Number of resident dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.pages.values().filter(|p| p.dirty).count()
    }

    /// Bytes used by duplicate (CoW) pages, for the §4.6 memory-overhead
    /// accounting.
    pub fn cow_bytes(&self) -> usize {
        self.pages.values().filter(|p| p.original.is_some()).count() * self.page_size
    }

    /// Whether a page is resident.
    pub fn contains(&self, inode: u64, index: u64) -> bool {
        self.pages.contains_key(&(inode, index))
    }

    fn touch(&mut self, key: PageKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(p) = self.pages.get_mut(&key) {
            p.last_use = tick;
        }
    }

    /// Returns a zero-copy handle to a resident page (a reference-count bump,
    /// not a 4 KB copy).
    pub fn get(&mut self, inode: u64, index: u64) -> Option<PageRef> {
        let key = (inode, index);
        if self.pages.contains_key(&key) {
            self.touch(key);
            Some(PageRef(Arc::clone(&self.pages[&key].data)))
        } else {
            None
        }
    }

    /// Inserts a page read from the device (clean). Evicts clean LRU pages if
    /// the cache is over capacity; dirty pages are never evicted implicitly.
    pub fn insert_clean(&mut self, inode: u64, index: u64, data: impl Into<PageRef>) {
        let data = data.into().into_arc();
        debug_assert_eq!(data.len(), self.page_size);
        self.tick += 1;
        let entry = CachedPage { data, dirty: false, original: None, last_use: self.tick };
        match self.pages.get_mut(&(inode, index)) {
            Some(existing) if existing.dirty => {
                // Never clobber a dirty page with stale device contents.
            }
            Some(existing) => *existing = entry,
            None => {
                self.pages.insert((inode, index), entry);
                self.evict_clean();
            }
        }
    }

    /// Applies a write to a resident page, marking it dirty and (if enabled)
    /// capturing the CoW original on the first modification. Returns `false`
    /// when the page is not resident — the caller must load it first.
    ///
    /// The buffer is physically copied only when it is still shared (with
    /// outstanding [`PageRef`]s or with the CoW original) — copy-on-write on
    /// the first dirty write, in-place mutation afterwards.
    pub fn write(&mut self, inode: u64, index: u64, offset: usize, bytes: &[u8]) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let track_cow = self.track_cow;
        match self.pages.get_mut(&(inode, index)) {
            Some(p) => {
                debug_assert!(offset + bytes.len() <= self.page_size);
                if track_cow && !p.dirty && p.original.is_none() {
                    // Capturing the original is free: it shares the buffer,
                    // and the make_mut below unshares the writable copy.
                    p.original = Some(Arc::clone(&p.data));
                }
                let buf = Arc::make_mut(&mut p.data);
                buf[offset..offset + bytes.len()].copy_from_slice(bytes);
                p.dirty = true;
                p.last_use = tick;
                true
            }
            None => false,
        }
    }

    /// Inserts a brand-new page that has no backing content on the device yet
    /// (file extension); it starts dirty with a zero original.
    pub fn insert_new_dirty(&mut self, inode: u64, index: u64, data: impl Into<PageRef>) {
        let data = data.into().into_arc();
        debug_assert_eq!(data.len(), self.page_size);
        self.tick += 1;
        let original =
            if self.track_cow { Some(Arc::new(vec![0u8; self.page_size])) } else { None };
        self.pages.insert(
            (inode, index),
            CachedPage { data, dirty: true, original, last_use: self.tick },
        );
        self.evict_clean();
    }

    /// Removes the dirty state of one inode's pages and returns them for
    /// writeback, in ascending page order. The pages stay resident (clean).
    pub fn take_dirty(&mut self, inode: u64) -> Vec<DirtyPage> {
        let mut keys: Vec<PageKey> = self
            .pages
            .iter()
            .filter(|((ino, _), p)| *ino == inode && p.dirty)
            .map(|(k, _)| *k)
            .collect();
        keys.sort_unstable();
        self.take_keys(&keys)
    }

    /// Inodes that currently own at least one dirty page (used by `sync` to
    /// decide which inodes need writeback).
    pub fn dirty_inodes(&self) -> BTreeSet<u64> {
        self.pages.iter().filter(|(_, p)| p.dirty).map(|((ino, _), _)| *ino).collect()
    }

    /// Like [`PageCache::take_dirty`] but for every inode (used by `sync`).
    pub fn take_all_dirty(&mut self) -> Vec<DirtyPage> {
        let mut keys: Vec<PageKey> =
            self.pages.iter().filter(|(_, p)| p.dirty).map(|(k, _)| *k).collect();
        keys.sort_unstable();
        self.take_keys(&keys)
    }

    fn take_keys(&mut self, keys: &[PageKey]) -> Vec<DirtyPage> {
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(p) = self.pages.get_mut(key) {
                p.dirty = false;
                let original = p.original.take();
                out.push(DirtyPage {
                    inode: key.0,
                    index: key.1,
                    data: PageRef(Arc::clone(&p.data)),
                    original: original.map(PageRef),
                });
            }
        }
        out
    }

    /// Drops every page (dirty or clean) belonging to an inode (unlink,
    /// truncate).
    pub fn invalidate_inode(&mut self, inode: u64) {
        self.pages.retain(|(ino, _), _| *ino != inode);
    }

    /// Drops pages of `inode` with index >= `from_index` (truncate).
    pub fn invalidate_from(&mut self, inode: u64, from_index: u64) {
        self.pages.retain(|(ino, idx), _| *ino != inode || *idx < from_index);
    }

    /// Drops everything (unmount / simulated host crash).
    pub fn clear(&mut self) {
        self.pages.clear();
    }

    fn evict_clean(&mut self) {
        while self.pages.len() > self.capacity_pages {
            let victim = self
                .pages
                .iter()
                .filter(|(_, p)| !p.dirty)
                .min_by_key(|(_, p)| p.last_use)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    self.pages.remove(&k);
                }
                None => break, // everything is dirty; allow temporary overshoot
            }
        }
    }
}

/// A lock-striped page cache for concurrent file systems.
///
/// Pages are distributed over independently locked [`PageCache`] shards keyed
/// by a `(inode, page index)` hash, so data-path operations on different
/// files — and on different pages of one large file — proceed in parallel
/// while all per-page semantics (CoW originals, dirty tracking) stay exactly
/// those of the underlying `PageCache`. All methods take `&self`; a shard's
/// mutex is held only for the duration of one call.
///
/// Hashing by page (not by inode) also means a single hot file can use the
/// whole configured capacity rather than `1/shards` of it; the LRU becomes
/// per-shard (approximate global LRU), and per-inode operations
/// ([`ShardedPageCache::take_dirty`], the invalidations) scan every shard.
///
/// Because a check-then-act pair of calls spans two lock acquisitions (a
/// concurrent insertion into the same shard may evict a clean page in
/// between), compound updates must use the single-lock-hold primitives
/// [`ShardedPageCache::write_full_page`] and
/// [`ShardedPageCache::write_with_fallback`] instead of
/// `contains`+`write`.
#[derive(Debug)]
pub struct ShardedPageCache {
    shards: Vec<Mutex<PageCache>>,
}

impl ShardedPageCache {
    /// Creates a cache with `shards` independent locks and a *total* capacity
    /// of `capacity_pages`, split evenly across the shards.
    pub fn new(shards: usize, capacity_pages: usize, page_size: usize, track_cow: bool) -> Self {
        let shards = shards.max(1);
        let per_shard = (capacity_pages / shards).max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(PageCache::new(per_shard, page_size, track_cow)))
                .collect(),
        }
    }

    fn shard(&self, inode: u64, index: u64) -> &Mutex<PageCache> {
        let h = (inode ^ index.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Zero-copy handle to a resident page.
    pub fn get(&self, inode: u64, index: u64) -> Option<PageRef> {
        self.shard(inode, index).lock().get(inode, index)
    }

    /// Whether a page is resident. Only a hint under concurrency — see the
    /// type-level docs; never pair it with a mutating call.
    pub fn contains(&self, inode: u64, index: u64) -> bool {
        self.shard(inode, index).lock().contains(inode, index)
    }

    /// See [`PageCache::write`].
    pub fn write(&self, inode: u64, index: u64, offset: usize, bytes: &[u8]) -> bool {
        self.shard(inode, index).lock().write(inode, index, offset, bytes)
    }

    /// Full-page dirty write in one lock hold: overwrites the resident page,
    /// or installs the data as a brand-new dirty page when it is absent
    /// (whether never loaded or just evicted by a concurrent insertion).
    pub fn write_full_page(&self, inode: u64, index: u64, data: Vec<u8>) {
        let mut shard = self.shard(inode, index).lock();
        if !shard.write(inode, index, 0, &data) {
            shard.insert_new_dirty(inode, index, data);
        }
    }

    /// Partial write in one lock hold: applies `bytes` at `offset` to the
    /// resident page, or installs `base` (the page's pre-write contents, read
    /// by the caller) first when the page is absent. The caller must hold the
    /// inode's write lock so `base` cannot be stale.
    pub fn write_with_fallback(
        &self,
        inode: u64,
        index: u64,
        offset: usize,
        bytes: &[u8],
        base: PageRef,
    ) {
        let mut shard = self.shard(inode, index).lock();
        if !shard.write(inode, index, offset, bytes) {
            shard.insert_clean(inode, index, base);
            let applied = shard.write(inode, index, offset, bytes);
            debug_assert!(applied, "freshly installed page accepts the write");
        }
    }

    /// See [`PageCache::insert_clean`].
    pub fn insert_clean(&self, inode: u64, index: u64, data: impl Into<PageRef>) {
        self.shard(inode, index).lock().insert_clean(inode, index, data);
    }

    /// See [`PageCache::insert_new_dirty`].
    pub fn insert_new_dirty(&self, inode: u64, index: u64, data: impl Into<PageRef>) {
        self.shard(inode, index).lock().insert_new_dirty(inode, index, data);
    }

    /// See [`PageCache::take_dirty`]; scans every shard and returns the pages
    /// in ascending page order (deterministic writeback order).
    pub fn take_dirty(&self, inode: u64) -> Vec<DirtyPage> {
        let mut out: Vec<DirtyPage> =
            self.shards.iter().flat_map(|s| s.lock().take_dirty(inode)).collect();
        out.sort_unstable_by_key(|dp| dp.index);
        out
    }

    /// Every inode that owns at least one dirty page, across all shards.
    pub fn dirty_inodes(&self) -> BTreeSet<u64> {
        let mut out = BTreeSet::new();
        for shard in &self.shards {
            out.extend(shard.lock().dirty_inodes());
        }
        out
    }

    /// Total resident dirty pages across all shards.
    pub fn dirty_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().dirty_count()).sum()
    }

    /// Total resident pages across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// `true` when nothing is cached in any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes used by duplicate (CoW) pages.
    pub fn cow_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().cow_bytes()).sum()
    }

    /// See [`PageCache::invalidate_inode`]; scans every shard.
    pub fn invalidate_inode(&self, inode: u64) {
        for shard in &self.shards {
            shard.lock().invalidate_inode(inode);
        }
    }

    /// See [`PageCache::invalidate_from`]; scans every shard.
    pub fn invalidate_from(&self, inode: u64, from_index: u64) {
        for shard in &self.shards {
            shard.lock().invalidate_from(inode, from_index);
        }
    }

    /// Drops every page in every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Drops every shard that holds no dirty pages (`drop_caches` semantics:
    /// clean state may be discarded, dirty state must survive).
    pub fn clear_clean(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock();
            if guard.dirty_count() == 0 {
                guard.clear();
            }
        }
    }
}

/// Returns the modified byte ranges between `original` and `current`,
/// detected at `chunk` granularity and merged into maximal runs.
///
/// This is the software stand-in for the AVX2 XOR scan the paper uses: only
/// the *decision* (which 64-byte chunks differ) matters for interface
/// selection.
///
/// # Panics
///
/// Panics if the two slices have different lengths or `chunk` is zero.
pub fn dirty_chunks(original: &[u8], current: &[u8], chunk: usize) -> Vec<DirtyRange> {
    assert_eq!(original.len(), current.len(), "XOR diff needs equal-length pages");
    assert!(chunk > 0, "chunk size must be non-zero");
    let mut ranges: Vec<DirtyRange> = Vec::new();
    let mut off = 0;
    while off < current.len() {
        let end = (off + chunk).min(current.len());
        if original[off..end] != current[off..end] {
            match ranges.last_mut() {
                Some((start, len)) if *start + *len == off => *len += end - off,
                _ => ranges.push((off, end - off)),
            }
        }
        off = end;
    }
    ranges
}

/// The modified ratio `R = N_modified_chunks / N_total_chunks` (§4.6).
///
/// # Panics
///
/// Panics if the slices differ in length or `chunk` is zero.
pub fn modified_ratio(original: &[u8], current: &[u8], chunk: usize) -> f64 {
    assert!(chunk > 0);
    let total = original.len().div_ceil(chunk).max(1);
    let modified: usize =
        dirty_chunks(original, current, chunk).iter().map(|(_, len)| len.div_ceil(chunk)).sum();
    modified as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 4096;

    fn cache(cow: bool) -> PageCache {
        PageCache::new(64, PS, cow)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = cache(false);
        c.insert_clean(1, 0, vec![3u8; PS]);
        assert_eq!(c.get(1, 0), Some(PageRef::from(vec![3u8; PS])));
        assert_eq!(c.get(1, 1), None);
        assert!(c.contains(1, 0));
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn get_is_zero_copy_and_write_unshares() {
        let mut c = cache(false);
        c.insert_clean(1, 0, vec![3u8; PS]);
        let a = c.get(1, 0).unwrap();
        let b = c.get(1, 0).unwrap();
        assert!(PageRef::ptr_eq(&a, &b), "repeated gets share one buffer");
        // A write while handles are outstanding must not mutate them
        // (copy-on-write), and the cache must serve the new contents.
        assert!(c.write(1, 0, 0, &[9u8; 4]));
        assert_eq!(&a[..4], &[3u8; 4], "outstanding handle sees old bytes");
        let after = c.get(1, 0).unwrap();
        assert_eq!(&after[..4], &[9u8; 4]);
        assert!(!PageRef::ptr_eq(&a, &after));
        // With no handles outstanding and the page already dirty, further
        // writes mutate in place (no second copy).
        drop((a, b, after));
        let before = c.get(1, 0).unwrap();
        drop(before);
        assert!(c.write(1, 0, 4, &[8u8; 4]));
        let now = c.get(1, 0).unwrap();
        assert_eq!(&now[..8], &[9, 9, 9, 9, 8, 8, 8, 8]);
    }

    #[test]
    fn write_requires_residency() {
        let mut c = cache(true);
        assert!(!c.write(1, 0, 0, &[1, 2, 3]));
        c.insert_clean(1, 0, vec![0u8; PS]);
        assert!(c.write(1, 0, 100, &[9, 9]));
        assert_eq!(c.dirty_count(), 1);
        let got = c.get(1, 0).unwrap();
        assert_eq!(&got[100..102], &[9, 9]);
    }

    #[test]
    fn cow_original_is_captured_once() {
        let mut c = cache(true);
        c.insert_clean(1, 0, vec![7u8; PS]);
        c.write(1, 0, 0, &[1u8; 64]);
        c.write(1, 0, 64, &[2u8; 64]);
        assert_eq!(c.cow_bytes(), PS);
        let dirty = c.take_dirty(1);
        assert_eq!(dirty.len(), 1);
        let orig = dirty[0].original.as_ref().unwrap();
        assert_eq!(orig.to_vec(), vec![7u8; PS]);
        // Ranges cover exactly the two modified cachelines, merged.
        assert_eq!(dirty[0].dirty_ranges(64), vec![(0, 128)]);
    }

    #[test]
    fn cow_disabled_reports_whole_page() {
        let mut c = cache(false);
        c.insert_clean(1, 0, vec![0u8; PS]);
        c.write(1, 0, 0, &[1u8; 8]);
        let dirty = c.take_dirty(1);
        assert!(dirty[0].original.is_none());
        assert_eq!(dirty[0].dirty_ranges(64), vec![(0, PS)]);
        assert_eq!(dirty[0].modified_ratio(64), 1.0);
    }

    #[test]
    fn take_dirty_clears_dirty_state_but_keeps_pages() {
        let mut c = cache(true);
        c.insert_clean(1, 0, vec![0u8; PS]);
        c.insert_clean(1, 1, vec![0u8; PS]);
        c.insert_clean(2, 0, vec![0u8; PS]);
        c.write(1, 0, 0, &[1]);
        c.write(1, 1, 0, &[1]);
        c.write(2, 0, 0, &[1]);
        let dirty = c.take_dirty(1);
        assert_eq!(dirty.len(), 2);
        assert_eq!(dirty[0].index, 0);
        assert_eq!(dirty[1].index, 1);
        assert_eq!(c.dirty_count(), 1, "inode 2 remains dirty");
        assert_eq!(c.len(), 3);
        assert!(c.take_dirty(1).is_empty());
        assert_eq!(c.take_all_dirty().len(), 1);
    }

    #[test]
    fn insert_clean_never_clobbers_dirty() {
        let mut c = cache(true);
        c.insert_clean(1, 0, vec![0u8; PS]);
        c.write(1, 0, 0, &[5u8; 4]);
        c.insert_clean(1, 0, vec![9u8; PS]);
        let page = c.get(1, 0).unwrap();
        assert_eq!(&page[..4], &[5u8; 4]);
    }

    #[test]
    fn invalidate_inode_and_from() {
        let mut c = cache(false);
        for idx in 0..4 {
            c.insert_clean(1, idx, vec![0u8; PS]);
        }
        c.insert_clean(2, 0, vec![0u8; PS]);
        c.invalidate_from(1, 2);
        assert!(c.contains(1, 1));
        assert!(!c.contains(1, 2));
        c.invalidate_inode(1);
        assert!(!c.contains(1, 0));
        assert!(c.contains(2, 0));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn lru_evicts_only_clean_pages() {
        let mut c = PageCache::new(2, PS, false);
        c.insert_clean(1, 0, vec![0u8; PS]);
        c.write(1, 0, 0, &[1]);
        c.insert_clean(1, 1, vec![0u8; PS]);
        c.insert_clean(1, 2, vec![0u8; PS]);
        // Page (1,0) is dirty and must survive; one of the clean pages is gone.
        assert!(c.contains(1, 0));
        assert_eq!(c.len(), 2);
        // With everything dirty the cache may overshoot rather than lose data.
        let mut c = PageCache::new(1, PS, false);
        c.insert_new_dirty(1, 0, vec![1u8; PS]);
        c.insert_new_dirty(1, 1, vec![2u8; PS]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dirty_chunks_detects_and_merges() {
        let orig = vec![0u8; 4096];
        let mut cur = orig.clone();
        cur[0] = 1; // chunk 0
        cur[100] = 1; // chunk 1
        cur[1000] = 1; // chunk 15
        let ranges = dirty_chunks(&orig, &cur, 64);
        assert_eq!(ranges, vec![(0, 128), (960, 64)]);
        assert!(dirty_chunks(&orig, &orig, 64).is_empty());
    }

    #[test]
    fn modified_ratio_matches_paper_threshold_semantics() {
        let orig = vec![0u8; 4096];
        let mut cur = orig.clone();
        // Modify 7 cachelines: 7/64 < 1/8 → byte interface preferred.
        for i in 0..7 {
            cur[i * 64] = 1;
        }
        let r = modified_ratio(&orig, &cur, 64);
        assert!(r < 0.125, "r = {r}");
        // Modify half the page → block interface preferred.
        for i in 0..32 {
            cur[i * 64] = 2;
        }
        let r = modified_ratio(&orig, &cur, 64);
        assert!(r >= 0.125);
        assert!(r <= 1.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn dirty_chunks_rejects_mismatched_lengths() {
        dirty_chunks(&[0u8; 10], &[0u8; 12], 64);
    }

    #[test]
    fn sharded_cache_behaves_like_one_cache() {
        let c = ShardedPageCache::new(4, 64, PS, true);
        assert_eq!(c.shard_count(), 4);
        for ino in 0..8u64 {
            c.insert_clean(ino, 0, vec![ino as u8; PS]);
        }
        assert_eq!(c.len(), 8);
        assert!(c.contains(3, 0));
        assert_eq!(&c.get(5, 0).unwrap()[..2], &[5, 5]);
        assert!(c.write(5, 0, 0, &[9u8; 64]));
        assert!(c.write(6, 0, 0, &[9u8; 64]));
        assert_eq!(c.dirty_count(), 2);
        assert_eq!(c.dirty_inodes().into_iter().collect::<Vec<_>>(), vec![5, 6]);
        let dirty = c.take_dirty(5);
        assert_eq!(dirty.len(), 1);
        assert!(dirty[0].original.is_some(), "CoW tracking reaches the shards");
        c.invalidate_inode(6);
        assert!(!c.contains(6, 0));
        c.clear_clean();
        assert_eq!(c.len(), 0, "everything left was clean");
    }

    #[test]
    fn sharded_cache_clear_clean_keeps_dirty_pages() {
        let c = ShardedPageCache::new(4, 32, PS, false);
        for idx in 0..8u64 {
            c.insert_clean(1, idx, vec![idx as u8; PS]);
        }
        c.write(1, 3, 0, &[7]);
        c.clear_clean();
        assert!(c.contains(1, 3), "dirty page survives drop_caches");
        assert_eq!(c.dirty_count(), 1);
        assert!(c.len() < 8, "clean-only shards are dropped");
        // A fully clean cache clears completely.
        let c = ShardedPageCache::new(4, 32, PS, false);
        c.insert_clean(1, 0, vec![0u8; PS]);
        c.clear_clean();
        assert!(c.is_empty());
    }

    #[test]
    fn single_lock_write_primitives_handle_absent_pages() {
        let c = ShardedPageCache::new(2, 8, PS, true);
        // write_full_page installs an absent page dirty...
        c.write_full_page(9, 0, vec![3u8; PS]);
        assert_eq!(c.get(9, 0).unwrap()[0], 3);
        assert_eq!(c.dirty_count(), 1);
        // ...and overwrites a resident one in place.
        c.write_full_page(9, 0, vec![4u8; PS]);
        assert_eq!(c.get(9, 0).unwrap()[0], 4);
        assert_eq!(c.dirty_count(), 1);
        // write_with_fallback installs the caller's base when absent...
        c.write_with_fallback(9, 1, 4, &[7u8; 4], PageRef::new(vec![1u8; PS]));
        let page = c.get(9, 1).unwrap();
        assert_eq!(&page[..4], &[1, 1, 1, 1], "base bytes preserved");
        assert_eq!(&page[4..8], &[7, 7, 7, 7], "write applied on top");
        // ...and writes straight through when resident.
        c.write_with_fallback(9, 1, 0, &[9u8; 2], PageRef::zeroed(PS));
        assert_eq!(&c.get(9, 1).unwrap()[..2], &[9, 9]);
    }

    #[test]
    fn sharded_cache_spreads_one_file_across_shards() {
        // A single hot file must be able to use more than 1/shards of the
        // capacity: its pages hash across shards instead of pinning one.
        let c = ShardedPageCache::new(4, 64, PS, false);
        for idx in 0..32u64 {
            c.insert_clean(7, idx, vec![0u8; PS]);
        }
        assert_eq!(c.len(), 32, "well under total capacity: nothing evicted");
    }

    #[test]
    fn sharded_cache_is_safe_under_concurrent_writers() {
        let c = std::sync::Arc::new(ShardedPageCache::new(8, 256, PS, true));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..64u64 {
                        let ino = t * 100 + (i % 4);
                        // Single-lock-hold install: a plain insert_clean +
                        // write pair could lose the page to a concurrent
                        // eviction in between. Once dirty, the page cannot
                        // be evicted, so the read-back must hit.
                        let mut page = vec![t as u8; PS];
                        page[..64].fill(i as u8);
                        c.write_full_page(ino, i, page);
                        let got = c.get(ino, i).unwrap();
                        assert_eq!(got[0], i as u8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.dirty_count() > 0);
    }
}
