//! The error type shared by every file system in the workspace.

use mssd::FlashError;

/// Result alias used throughout the file-system crates.
pub type FsResult<T> = Result<T, FsError>;

/// Errors returned by [`crate::FileSystem`] operations.
///
/// The variants intentionally mirror the POSIX errno values the corresponding
/// kernel file systems would return, so workload code written against one file
/// system behaves identically on all of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// A path component does not exist (`ENOENT`).
    NotFound(String),
    /// The target already exists (`EEXIST`).
    AlreadyExists(String),
    /// The operation expected a directory but found a file (`ENOTDIR`).
    NotADirectory(String),
    /// The operation expected a file but found a directory (`EISDIR`).
    IsADirectory(String),
    /// Directory is not empty (`ENOTEMPTY`).
    DirectoryNotEmpty(String),
    /// The file descriptor is not open (`EBADF`).
    BadDescriptor(u64),
    /// No space left on device (`ENOSPC`).
    NoSpace,
    /// No free inodes left.
    NoInodes,
    /// The path is syntactically invalid (empty component, not absolute, ...).
    InvalidPath(String),
    /// An argument was invalid (`EINVAL`).
    InvalidArgument(String),
    /// The file is not open for the requested access mode.
    PermissionDenied(String),
    /// The file system detected an internal inconsistency (corruption).
    Corrupted(String),
    /// The device reported a media error (`EIO`): an uncorrectable read, or
    /// a write refused because the device degraded to read-only after
    /// exhausting its spare blocks.
    Io(FlashError),
    /// The operation is not supported by this file system.
    Unsupported(&'static str),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::BadDescriptor(fd) => write!(f, "bad file descriptor: {fd}"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoInodes => write!(f, "no free inodes left"),
            FsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            FsError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            FsError::PermissionDenied(m) => write!(f, "permission denied: {m}"),
            FsError::Corrupted(m) => write!(f, "file system corrupted: {m}"),
            FsError::Io(e) => write!(f, "i/o error: {e}"),
            FsError::Unsupported(m) => write!(f, "operation not supported: {m}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<FlashError> for FsError {
    fn from(e: FlashError) -> Self {
        FsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = FsError::NotFound("/a/b".into());
        assert_eq!(e.to_string(), "no such file or directory: /a/b");
        let e = FsError::NoSpace;
        assert_eq!(e.to_string(), "no space left on device");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FsError::NoSpace, FsError::NoSpace);
        assert_ne!(FsError::NoSpace, FsError::NoInodes);
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(FsError::BadDescriptor(3));
    }

    #[test]
    fn media_errors_convert_to_io() {
        let e: FsError = FlashError::ReadOnly.into();
        assert_eq!(e, FsError::Io(FlashError::ReadOnly));
        assert_eq!(e.to_string(), format!("i/o error: {}", FlashError::ReadOnly));
    }
}
