//! The [`AsyncFileSystem`] trait: the futures-based twin of
//! [`FileSystem`], plus the adapters that bridge the two worlds.
//!
//! The sync trait came first and every file system in the workspace
//! implements it; this module makes the same API awaitable so that
//! thousands of logical clients can share a handful of OS threads through
//! [`mssd::reactor`]. Three pieces:
//!
//! * [`AsyncFileSystem`] — object-safe (methods return [`BoxFuture`]s, the
//!   hand-expanded `async_trait` pattern, cf. SNIPPETS.md #3);
//! * [`AsyncFs`] — wraps any `Arc<dyn FileSystem>` as an async file system.
//!   Each call yields to the executor once, then runs the sync operation
//!   inline on the polling worker — cooperative multiplexing without
//!   rewriting the file systems themselves;
//! * [`BlockOnFs`] — the reverse shim: a sync [`FileSystem`] over an async
//!   one via [`Executor::block_on`], mirroring how the sync device API is a
//!   depth-1 queue shim.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use mssd::reactor::yield_now;
use mssd::{Executor, Mssd};

use crate::error::FsResult;
use crate::fs::FileSystem;
use crate::types::{DirEntry, Fd, Metadata, OpenFlags};

/// The boxed future type every [`AsyncFileSystem`] method returns — the
/// standard object-safe expansion of an `async fn` in a trait.
pub type BoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + Send + 'a>>;

/// Futures-based twin of [`FileSystem`]. Same contracts and error values,
/// awaitable methods; see the sync trait for per-method semantics.
///
/// Implementations must be cancel-safe at operation granularity: dropping a
/// returned future either performed the whole operation or none of it.
pub trait AsyncFileSystem: Send + Sync {
    /// See [`FileSystem::name`].
    fn name(&self) -> &'static str;

    /// See [`FileSystem::device`].
    fn device(&self) -> &Arc<Mssd>;

    /// See [`FileSystem::create`].
    fn create<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<Fd>>;

    /// See [`FileSystem::open`].
    fn open<'a>(&'a self, path: &'a str, flags: OpenFlags) -> BoxFuture<'a, FsResult<Fd>>;

    /// See [`FileSystem::close`].
    fn close(&self, fd: Fd) -> BoxFuture<'_, FsResult<()>>;

    /// See [`FileSystem::read`].
    fn read(&self, fd: Fd, offset: u64, len: usize) -> BoxFuture<'_, FsResult<Vec<u8>>>;

    /// See [`FileSystem::write`].
    fn write<'a>(&'a self, fd: Fd, offset: u64, data: &'a [u8]) -> BoxFuture<'a, FsResult<usize>>;

    /// See [`FileSystem::append`].
    fn append<'a>(&'a self, fd: Fd, data: &'a [u8]) -> BoxFuture<'a, FsResult<usize>> {
        Box::pin(async move {
            let size = self.fstat(fd).await?.size;
            self.write(fd, size, data).await
        })
    }

    /// See [`FileSystem::fsync`].
    fn fsync(&self, fd: Fd) -> BoxFuture<'_, FsResult<()>>;

    /// See [`FileSystem::fdatasync`].
    fn fdatasync(&self, fd: Fd) -> BoxFuture<'_, FsResult<()>> {
        self.fsync(fd)
    }

    /// See [`FileSystem::truncate`].
    fn truncate(&self, fd: Fd, size: u64) -> BoxFuture<'_, FsResult<()>>;

    /// See [`FileSystem::fstat`].
    fn fstat(&self, fd: Fd) -> BoxFuture<'_, FsResult<Metadata>>;

    /// See [`FileSystem::stat`].
    fn stat<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<Metadata>>;

    /// See [`FileSystem::exists`].
    fn exists<'a>(&'a self, path: &'a str) -> BoxFuture<'a, bool> {
        Box::pin(async move { self.stat(path).await.is_ok() })
    }

    /// See [`FileSystem::mkdir`].
    fn mkdir<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<()>>;

    /// See [`FileSystem::rmdir`].
    fn rmdir<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<()>>;

    /// See [`FileSystem::unlink`].
    fn unlink<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<()>>;

    /// See [`FileSystem::rename`].
    fn rename<'a>(&'a self, from: &'a str, to: &'a str) -> BoxFuture<'a, FsResult<()>>;

    /// See [`FileSystem::readdir`].
    fn readdir<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<Vec<DirEntry>>>;

    /// See [`FileSystem::sync`].
    fn sync(&self) -> BoxFuture<'_, FsResult<()>>;

    /// See [`FileSystem::drop_caches`].
    fn drop_caches(&self) -> BoxFuture<'_, ()> {
        Box::pin(async {})
    }

    /// See [`FileSystem::unmount`].
    fn unmount(&self) -> BoxFuture<'_, FsResult<()>> {
        self.sync()
    }
}

/// Convenience helpers layered on top of [`AsyncFileSystem`];
/// blanket-implemented, mirroring [`crate::FileSystemExt`].
pub trait AsyncFileSystemExt: AsyncFileSystem {
    /// Writes a whole file in one call: create (truncating), write, fsync,
    /// close.
    fn write_file<'a>(&'a self, path: &'a str, data: &'a [u8]) -> BoxFuture<'a, FsResult<()>> {
        Box::pin(async move {
            let fd = self.open(path, OpenFlags::create_truncate()).await?;
            self.write(fd, 0, data).await?;
            self.fsync(fd).await?;
            self.close(fd).await
        })
    }

    /// Reads a whole file into memory.
    fn read_file<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<Vec<u8>>> {
        Box::pin(async move {
            let fd = self.open(path, OpenFlags::read_only()).await?;
            let size = self.fstat(fd).await?.size as usize;
            let data = self.read(fd, 0, size).await?;
            self.close(fd).await?;
            Ok(data)
        })
    }
}

impl<T: AsyncFileSystem + ?Sized> AsyncFileSystemExt for T {}

/// Adapts any sync [`FileSystem`] into an [`AsyncFileSystem`].
///
/// Each operation first yields to the executor (so thousands of client
/// tasks interleave fairly over few worker threads), then runs the sync
/// call inline on the polling thread. The file systems in this workspace
/// are internally concurrent and non-blocking (the "device time" is a
/// virtual clock), so an inline call never wedges a worker.
pub struct AsyncFs {
    inner: Arc<dyn FileSystem>,
}

impl AsyncFs {
    /// Wraps `fs`.
    pub fn new(fs: Arc<dyn FileSystem>) -> Self {
        Self { inner: fs }
    }

    /// The wrapped sync file system.
    pub fn sync_fs(&self) -> &Arc<dyn FileSystem> {
        &self.inner
    }
}

impl AsyncFileSystem for AsyncFs {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn device(&self) -> &Arc<Mssd> {
        self.inner.device()
    }

    fn create<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<Fd>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.create(path)
        })
    }

    fn open<'a>(&'a self, path: &'a str, flags: OpenFlags) -> BoxFuture<'a, FsResult<Fd>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.open(path, flags)
        })
    }

    fn close(&self, fd: Fd) -> BoxFuture<'_, FsResult<()>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.close(fd)
        })
    }

    fn read(&self, fd: Fd, offset: u64, len: usize) -> BoxFuture<'_, FsResult<Vec<u8>>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.read(fd, offset, len)
        })
    }

    fn write<'a>(&'a self, fd: Fd, offset: u64, data: &'a [u8]) -> BoxFuture<'a, FsResult<usize>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.write(fd, offset, data)
        })
    }

    fn fsync(&self, fd: Fd) -> BoxFuture<'_, FsResult<()>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.fsync(fd)
        })
    }

    fn fdatasync(&self, fd: Fd) -> BoxFuture<'_, FsResult<()>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.fdatasync(fd)
        })
    }

    fn truncate(&self, fd: Fd, size: u64) -> BoxFuture<'_, FsResult<()>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.truncate(fd, size)
        })
    }

    fn fstat(&self, fd: Fd) -> BoxFuture<'_, FsResult<Metadata>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.fstat(fd)
        })
    }

    fn stat<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<Metadata>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.stat(path)
        })
    }

    fn mkdir<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<()>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.mkdir(path)
        })
    }

    fn rmdir<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<()>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.rmdir(path)
        })
    }

    fn unlink<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<()>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.unlink(path)
        })
    }

    fn rename<'a>(&'a self, from: &'a str, to: &'a str) -> BoxFuture<'a, FsResult<()>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.rename(from, to)
        })
    }

    fn readdir<'a>(&'a self, path: &'a str) -> BoxFuture<'a, FsResult<Vec<DirEntry>>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.readdir(path)
        })
    }

    fn sync(&self) -> BoxFuture<'_, FsResult<()>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.sync()
        })
    }

    fn drop_caches(&self) -> BoxFuture<'_, ()> {
        Box::pin(async move {
            yield_now().await;
            self.inner.drop_caches()
        })
    }

    fn unmount(&self) -> BoxFuture<'_, FsResult<()>> {
        Box::pin(async move {
            yield_now().await;
            self.inner.unmount()
        })
    }
}

/// Adapts an [`AsyncFileSystem`] into a sync [`FileSystem`] by blocking on
/// each operation with an [`Executor`] — the file-system analogue of the
/// device's depth-1 sync shim. Existing sync workloads run unmodified over
/// an async implementation this way.
pub struct BlockOnFs {
    afs: Arc<dyn AsyncFileSystem>,
    exec: Executor,
}

impl BlockOnFs {
    /// Wraps `afs`, driving its futures on `exec`.
    pub fn new(afs: Arc<dyn AsyncFileSystem>, exec: Executor) -> Self {
        Self { afs, exec }
    }
}

impl FileSystem for BlockOnFs {
    fn name(&self) -> &'static str {
        self.afs.name()
    }

    fn device(&self) -> &Arc<Mssd> {
        self.afs.device()
    }

    fn create(&self, path: &str) -> FsResult<Fd> {
        self.exec.block_on(self.afs.create(path))
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        self.exec.block_on(self.afs.open(path, flags))
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        self.exec.block_on(self.afs.close(fd))
    }

    fn read(&self, fd: Fd, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        self.exec.block_on(self.afs.read(fd, offset, len))
    }

    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.exec.block_on(self.afs.write(fd, offset, data))
    }

    fn append(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        self.exec.block_on(self.afs.append(fd, data))
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        self.exec.block_on(self.afs.fsync(fd))
    }

    fn fdatasync(&self, fd: Fd) -> FsResult<()> {
        self.exec.block_on(self.afs.fdatasync(fd))
    }

    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        self.exec.block_on(self.afs.truncate(fd, size))
    }

    fn fstat(&self, fd: Fd) -> FsResult<Metadata> {
        self.exec.block_on(self.afs.fstat(fd))
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        self.exec.block_on(self.afs.stat(path))
    }

    fn exists(&self, path: &str) -> bool {
        self.exec.block_on(self.afs.exists(path))
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        self.exec.block_on(self.afs.mkdir(path))
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.exec.block_on(self.afs.rmdir(path))
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        self.exec.block_on(self.afs.unlink(path))
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        self.exec.block_on(self.afs.rename(from, to))
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        self.exec.block_on(self.afs.readdir(path))
    }

    fn sync(&self) -> FsResult<()> {
        self.exec.block_on(self.afs.sync())
    }

    fn drop_caches(&self) {
        self.exec.block_on(self.afs.drop_caches());
    }

    fn unmount(&self) -> FsResult<()> {
        self.exec.block_on(self.afs.unmount())
    }
}

/// Polls a future to completion on the current thread with a no-op waker.
///
/// Only sound for futures that make progress on every poll (like the
/// yield-only futures [`AsyncFs`] produces) — a future waiting on an
/// external wakeup would spin forever, so the loop panics after a bound
/// rather than hang.
///
/// # Panics
///
/// Panics if the future is still pending after 1,000,000 polls.
pub fn poll_inline<T>(fut: impl Future<Output = T>) -> T {
    let mut fut = std::pin::pin!(fut);
    let waker = Waker::noop();
    let mut cx = Context::from_waker(waker);
    for _ in 0..1_000_000 {
        if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
            return v;
        }
    }
    panic!("poll_inline: future needs external wakeups; drive it on an Executor instead");
}

/// A zero-overhead sync view over an [`AsyncFileSystem`] that resolves each
/// operation by polling it inline ([`poll_inline`]) — no executor, no
/// threads. This is how the default `Workload::run_shard_async` reuses the
/// sync shard body: correct for [`AsyncFs`]-style implementations whose
/// futures never wait on external events.
pub struct InlineSyncFs<'a> {
    afs: &'a dyn AsyncFileSystem,
}

impl<'a> InlineSyncFs<'a> {
    /// Wraps `afs`.
    pub fn new(afs: &'a dyn AsyncFileSystem) -> Self {
        Self { afs }
    }
}

impl FileSystem for InlineSyncFs<'_> {
    fn name(&self) -> &'static str {
        self.afs.name()
    }

    fn device(&self) -> &Arc<Mssd> {
        self.afs.device()
    }

    fn create(&self, path: &str) -> FsResult<Fd> {
        poll_inline(self.afs.create(path))
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        poll_inline(self.afs.open(path, flags))
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        poll_inline(self.afs.close(fd))
    }

    fn read(&self, fd: Fd, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        poll_inline(self.afs.read(fd, offset, len))
    }

    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        poll_inline(self.afs.write(fd, offset, data))
    }

    fn append(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        poll_inline(self.afs.append(fd, data))
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        poll_inline(self.afs.fsync(fd))
    }

    fn fdatasync(&self, fd: Fd) -> FsResult<()> {
        poll_inline(self.afs.fdatasync(fd))
    }

    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        poll_inline(self.afs.truncate(fd, size))
    }

    fn fstat(&self, fd: Fd) -> FsResult<Metadata> {
        poll_inline(self.afs.fstat(fd))
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        poll_inline(self.afs.stat(path))
    }

    fn exists(&self, path: &str) -> bool {
        poll_inline(self.afs.exists(path))
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        poll_inline(self.afs.mkdir(path))
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        poll_inline(self.afs.rmdir(path))
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        poll_inline(self.afs.unlink(path))
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        poll_inline(self.afs.rename(from, to))
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        poll_inline(self.afs.readdir(path))
    }

    fn sync(&self) -> FsResult<()> {
        poll_inline(self.afs.sync())
    }

    fn drop_caches(&self) {
        poll_inline(self.afs.drop_caches());
    }

    fn unmount(&self) -> FsResult<()> {
        poll_inline(self.afs.unmount())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_filesystem_trait_is_object_safe() {
        fn _takes_dyn(_fs: &dyn AsyncFileSystem) {}
        fn _takes_arc(_fs: Arc<dyn AsyncFileSystem>) {}
    }

    #[test]
    fn poll_inline_resolves_yielding_futures() {
        let v = poll_inline(async {
            mssd::reactor::yield_now().await;
            mssd::reactor::yield_now().await;
            7
        });
        assert_eq!(v, 7);
    }
}
