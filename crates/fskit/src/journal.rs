//! A JBD2-style block journal.
//!
//! Ext4's ordered mode writes every updated metadata block twice: once into a
//! reserved on-disk journal area (descriptor block + data blocks + commit
//! block) and once in place when the transaction checkpoints. This "double
//! write" is exactly the journaling amplification the paper's Figure 1 and
//! Table 2 attribute to Ext4, so the Ext4-like baseline and the ByteFS data
//! journaling mode (§4.6) both use this module.
//!
//! The journal area is a contiguous range of device blocks used as a circular
//! log. Block contents are written through the block interface and tagged
//! [`Category::Journal`]; checkpoint writes carry the caller's category.

use std::sync::Arc;

use mssd::{Category, Mssd};

use crate::error::{FsError, FsResult};

/// One block update participating in a journaled transaction.
#[derive(Debug, Clone)]
pub struct JournaledBlock {
    /// Destination logical block address of the final (checkpoint) write.
    pub lba: u64,
    /// Full block contents.
    pub data: Vec<u8>,
    /// Traffic category of the destination block (e.g. `Inode`, `Bitmap`).
    pub category: Category,
}

/// Statistics the journal keeps about its own activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Number of committed transactions.
    pub transactions: u64,
    /// Number of data blocks journaled (excludes descriptor/commit blocks).
    pub journaled_blocks: u64,
    /// Number of checkpoint (in-place) block writes.
    pub checkpointed_blocks: u64,
}

/// A circular block journal over a reserved device region.
#[derive(Debug)]
pub struct BlockJournal {
    device: Arc<Mssd>,
    start: u64,
    nblocks: u64,
    head: u64,
    stats: JournalStats,
}

impl BlockJournal {
    /// Creates a journal over `[start, start + nblocks)`.
    ///
    /// # Panics
    ///
    /// Panics if `nblocks < 4` (a transaction needs at least descriptor +
    /// one data block + commit) or the region exceeds the device capacity.
    pub fn new(device: Arc<Mssd>, start: u64, nblocks: u64) -> Self {
        assert!(nblocks >= 4, "journal area too small");
        assert!(start + nblocks <= device.logical_pages(), "journal area beyond device capacity");
        Self { device, start, nblocks, head: 0, stats: JournalStats::default() }
    }

    /// Number of blocks reserved for the journal.
    pub fn capacity_blocks(&self) -> u64 {
        self.nblocks
    }

    /// Journal activity counters.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    fn next_journal_lba(&mut self) -> u64 {
        let lba = self.start + self.head;
        self.head = (self.head + 1) % self.nblocks;
        lba
    }

    /// Commits a transaction: journal write (descriptor + data + commit),
    /// device flush, then in-place checkpoint writes.
    ///
    /// `checkpoint_now` controls whether the in-place writes are issued
    /// immediately (data journaling) or left to the caller (ordered mode
    /// checkpoints lazily; the caller then uses [`BlockJournal::checkpoint`]).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::InvalidArgument`] when a block's data length does
    /// not match the device page size, or when the transaction is larger than
    /// the journal area. Returns [`FsError::Io`] when the device reports a
    /// media error (e.g. it degraded to read-only after exhausting spares).
    pub fn commit(&mut self, updates: &[JournaledBlock], checkpoint_now: bool) -> FsResult<()> {
        if updates.is_empty() {
            return Ok(());
        }
        let page_size = self.device.page_size();
        if updates.len() as u64 + 2 > self.nblocks {
            return Err(FsError::InvalidArgument(format!(
                "transaction of {} blocks exceeds journal capacity {}",
                updates.len(),
                self.nblocks
            )));
        }
        for u in updates {
            if u.data.len() != page_size {
                return Err(FsError::InvalidArgument(format!(
                    "journaled block must be exactly {page_size} bytes, got {}",
                    u.data.len()
                )));
            }
        }

        // Descriptor block: the list of destination LBAs (content modelled as
        // a zero-filled page; only the traffic matters).
        let descriptor_lba = self.next_journal_lba();
        self.device.try_block_write(descriptor_lba, &vec![0u8; page_size], Category::Journal)?;

        // Journal copies of the data blocks.
        for u in updates {
            let jlba = self.next_journal_lba();
            self.device.try_block_write(jlba, &u.data, Category::Journal)?;
            self.stats.journaled_blocks += 1;
        }

        // Commit block, then force everything to flash so the transaction is
        // durable before any in-place write happens.
        let commit_lba = self.next_journal_lba();
        self.device.try_block_write(commit_lba, &vec![0u8; page_size], Category::Journal)?;
        self.device.try_flush()?;
        self.stats.transactions += 1;

        if checkpoint_now {
            self.checkpoint(updates)?;
        }
        Ok(())
    }

    /// Writes the blocks of a committed transaction in place.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Io`] when the device refuses a write (read-only
    /// degradation) or reports a media error.
    pub fn checkpoint(&mut self, updates: &[JournaledBlock]) -> FsResult<()> {
        for u in updates {
            self.device.try_block_write(u.lba, &u.data, u.category)?;
            self.stats.checkpointed_blocks += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssd::{DramMode, MssdConfig};

    fn setup() -> (Arc<Mssd>, BlockJournal) {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let journal = BlockJournal::new(Arc::clone(&dev), 16, 64);
        (dev, journal)
    }

    fn block(tag: u8, dev: &Mssd) -> Vec<u8> {
        vec![tag; dev.page_size()]
    }

    #[test]
    fn commit_writes_journal_and_checkpoint() {
        let (dev, mut journal) = setup();
        let updates = vec![
            JournaledBlock { lba: 100, data: block(1, &dev), category: Category::Inode },
            JournaledBlock { lba: 101, data: block(2, &dev), category: Category::Bitmap },
        ];
        journal.commit(&updates, true).unwrap();

        // Journal traffic: descriptor + 2 data + commit = 4 blocks.
        let t = dev.traffic();
        let journal_bytes =
            t.host_bytes_by_category(mssd::stats::Direction::Write, Category::Journal);
        assert_eq!(journal_bytes, 4 * dev.page_size() as u64);
        // Checkpoint traffic for the destination categories.
        assert_eq!(
            t.host_bytes_by_category(mssd::stats::Direction::Write, Category::Inode),
            dev.page_size() as u64
        );
        // Destination blocks contain the data.
        assert_eq!(dev.block_read(100, 1, Category::Inode), block(1, &dev));
        assert_eq!(dev.block_read(101, 1, Category::Bitmap), block(2, &dev));

        let s = journal.stats();
        assert_eq!(s.transactions, 1);
        assert_eq!(s.journaled_blocks, 2);
        assert_eq!(s.checkpointed_blocks, 2);
    }

    #[test]
    fn ordered_mode_defers_checkpoint() {
        let (dev, mut journal) = setup();
        let updates =
            vec![JournaledBlock { lba: 200, data: block(7, &dev), category: Category::Inode }];
        journal.commit(&updates, false).unwrap();
        assert_eq!(journal.stats().checkpointed_blocks, 0);
        // Destination untouched until checkpoint.
        assert_eq!(dev.block_read(200, 1, Category::Inode), vec![0u8; dev.page_size()]);
        journal.checkpoint(&updates).unwrap();
        assert_eq!(dev.block_read(200, 1, Category::Inode), block(7, &dev));
    }

    #[test]
    fn wraps_around_the_journal_area() {
        let (dev, mut journal) = setup();
        let cap = journal.capacity_blocks();
        // Each commit consumes 3 journal blocks (descriptor + 1 data + commit).
        for i in 0..cap {
            let updates = vec![JournaledBlock {
                lba: 300,
                data: block(i as u8, &dev),
                category: Category::Data,
            }];
            journal.commit(&updates, true).unwrap();
        }
        assert_eq!(journal.stats().transactions, cap);
    }

    #[test]
    fn rejects_oversized_transactions_and_bad_blocks() {
        let (dev, mut journal) = setup();
        let too_many: Vec<JournaledBlock> = (0..journal.capacity_blocks())
            .map(|i| JournaledBlock {
                lba: 400 + i,
                data: block(0, &dev),
                category: Category::Data,
            })
            .collect();
        assert!(matches!(journal.commit(&too_many, true), Err(FsError::InvalidArgument(_))));

        let bad = vec![JournaledBlock { lba: 5, data: vec![0u8; 100], category: Category::Data }];
        assert!(matches!(journal.commit(&bad, true), Err(FsError::InvalidArgument(_))));
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let (dev, mut journal) = setup();
        journal.commit(&[], true).unwrap();
        assert_eq!(journal.stats().transactions, 0);
        assert_eq!(dev.traffic().host_write_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "journal area too small")]
    fn tiny_journal_rejected() {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let _ = BlockJournal::new(dev, 0, 2);
    }
}
