//! The [`FileSystem`] trait: the POSIX-flavoured API every file system in this
//! workspace implements.
//!
//! Workloads, the KV store and the benchmark harness only ever talk to
//! `dyn FileSystem`, so the same workload code measures ByteFS and all four
//! baselines.

use std::sync::Arc;

use mssd::{Clock, HostQueue, Mssd};

use crate::error::FsResult;
use crate::types::{DirEntry, Fd, Metadata, OpenFlags};

/// A mounted file system on top of an [`Mssd`] device.
///
/// All methods take `&self`; implementations use interior mutability and are
/// safe to share across threads (`Send + Sync`), mirroring how a kernel file
/// system serves many processes at once. Multi-threaded drivers rely on this
/// being real concurrency safety, not just compile-time markers: any
/// interleaving of calls from different threads must leave the volume
/// coherent (each call atomic with respect to the others), though how much
/// actually runs in *parallel* is the implementation's business — from one
/// global lock (the baselines) to fully sharded locking (ByteFS).
pub trait FileSystem: Send + Sync {
    /// A short, stable name such as `"bytefs"`, `"ext4"`, `"nova"` — used as
    /// the key in benchmark reports.
    fn name(&self) -> &'static str;

    /// The device this file system is mounted on.
    fn device(&self) -> &Arc<Mssd>;

    /// The shared virtual clock (convenience accessor; equivalent to
    /// `self.device().clock()`).
    fn clock(&self) -> Arc<Clock> {
        self.device().clock()
    }

    /// Opens a queued device handle: an NVMe-style submission/completion
    /// queue pair of the given depth on this file system's device (see
    /// [`mssd::queue`]). Each queue belongs to one submitting thread; the
    /// multi-threaded workload driver opens one per shard so device traffic
    /// and latency are attributed per queue.
    fn open_queue(&self, depth: usize) -> HostQueue {
        self.device().open_queue(depth)
    }

    /// Creates a regular file (failing if it already exists) and opens it
    /// read-write.
    fn create(&self, path: &str) -> FsResult<Fd>;

    /// Opens an existing file, or creates it when `flags.create` is set.
    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd>;

    /// Closes an open file handle.
    fn close(&self, fd: Fd) -> FsResult<()>;

    /// Reads up to `len` bytes at byte offset `offset`. Returns fewer bytes at
    /// end of file, and an empty vector at or beyond EOF.
    fn read(&self, fd: Fd, offset: u64, len: usize) -> FsResult<Vec<u8>>;

    /// Writes `data` at byte offset `offset`, extending the file if needed.
    /// Returns the number of bytes written.
    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize>;

    /// Appends `data` at the end of the file.
    fn append(&self, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let size = self.fstat(fd)?.size;
        self.write(fd, size, data)
    }

    /// Makes the file's data and metadata durable.
    fn fsync(&self, fd: Fd) -> FsResult<()>;

    /// Makes the file's data durable; metadata that is not needed to read the
    /// data back (e.g. timestamps) may be deferred. Defaults to [`fsync`].
    ///
    /// [`fsync`]: FileSystem::fsync
    fn fdatasync(&self, fd: Fd) -> FsResult<()> {
        self.fsync(fd)
    }

    /// Truncates (or extends with zeros) the file to `size` bytes.
    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()>;

    /// Metadata of an open file.
    fn fstat(&self, fd: Fd) -> FsResult<Metadata>;

    /// Metadata of the object at `path`.
    fn stat(&self, path: &str) -> FsResult<Metadata>;

    /// `true` if `path` exists.
    fn exists(&self, path: &str) -> bool {
        self.stat(path).is_ok()
    }

    /// Creates a directory (parents must already exist).
    fn mkdir(&self, path: &str) -> FsResult<()>;

    /// Removes an empty directory.
    fn rmdir(&self, path: &str) -> FsResult<()>;

    /// Removes a regular file.
    fn unlink(&self, path: &str) -> FsResult<()>;

    /// Renames a file or directory. The destination must not exist.
    fn rename(&self, from: &str, to: &str) -> FsResult<()>;

    /// Lists the entries of a directory (excluding `.` and `..`).
    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>>;

    /// Flushes all dirty state of the whole file system (like `sync(2)`).
    fn sync(&self) -> FsResult<()>;

    /// Drops clean host-side caches (page cache, metadata caches), like
    /// `echo 3 > /proc/sys/vm/drop_caches`. Dirty state is not lost. The
    /// measurement harness calls this between the setup and measured phases.
    fn drop_caches(&self) {}

    /// Unmounts: flush everything and release in-memory state. The default
    /// implementation just calls [`sync`].
    ///
    /// [`sync`]: FileSystem::sync
    fn unmount(&self) -> FsResult<()> {
        self.sync()
    }
}

/// Convenience helpers layered on top of [`FileSystem`]; blanket-implemented
/// for every file system.
pub trait FileSystemExt: FileSystem {
    /// Writes a whole file in one call: create (truncating), write, fsync,
    /// close.
    fn write_file(&self, path: &str, data: &[u8]) -> FsResult<()> {
        let fd = self.open(path, OpenFlags::create_truncate())?;
        self.write(fd, 0, data)?;
        self.fsync(fd)?;
        self.close(fd)
    }

    /// Reads a whole file into memory.
    fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let fd = self.open(path, OpenFlags::read_only())?;
        let size = self.fstat(fd)?.size as usize;
        let data = self.read(fd, 0, size)?;
        self.close(fd)?;
        Ok(data)
    }

    /// Creates every directory along `path` that does not exist yet
    /// (`mkdir -p`).
    fn mkdir_all(&self, path: &str) -> FsResult<()> {
        let comps = crate::path::components(path)?;
        let mut cur = String::from("/");
        for c in comps {
            cur = crate::path::join(&cur, c);
            if !self.exists(&cur) {
                self.mkdir(&cur)?;
            }
        }
        Ok(())
    }
}

impl<T: FileSystem + ?Sized> FileSystemExt for T {}

#[cfg(test)]
mod tests {
    // The trait itself is exercised end-to-end by the `bytefs` and `baselines`
    // crates and by the workspace integration tests; here we only check that
    // it stays object-safe, which the workloads rely on.
    use super::*;

    #[test]
    fn filesystem_trait_is_object_safe() {
        fn _takes_dyn(_fs: &dyn FileSystem) {}
        fn _takes_arc(_fs: Arc<dyn FileSystem>) {}
    }
}
