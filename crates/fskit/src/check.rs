//! The crash-consistency checker API shared by the whole stack.
//!
//! `crashkit` remounts a file system (or reopens a database) on a restored
//! crash image and then asks every layer to verify its own structural
//! invariants through the [`CrashConsistent`] trait — an "fsck as a library"
//! hook. Implementations live next to the structures they check:
//!
//! * `bytefs::ByteFs` — bitmap/namespace/extent cross-checks,
//! * `baselines::BaselineFs` — allocator vs. block-map consistency,
//! * `kvstore::Db` — WAL tail integrity (checksummed records, torn tail
//!   truncated).
//!
//! Checkers report problems as data ([`Violation`]) instead of panicking, so
//! an enumeration driver can attribute a failure to the crash point (seed +
//! cut index) that produced it and print a reproduction line.

/// One invariant violation found by a checker. A clean check returns no
/// violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which checker (or invariant family) found the problem, e.g.
    /// `"bytefs-fsck"`, `"wal-tail"`.
    pub checker: String,
    /// Human-readable description, specific enough to debug from.
    pub detail: String,
}

impl Violation {
    /// Convenience constructor.
    pub fn new(checker: impl Into<String>, detail: impl Into<String>) -> Self {
        Self { checker: checker.into(), detail: detail.into() }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.checker, self.detail)
    }
}

/// Structural self-verification after a mount/recovery (or at any quiescent
/// point). Implementations must not mutate durable state: a checker that
/// "repairs" would hide the very corruption crashkit exists to find.
pub trait CrashConsistent {
    /// Verifies the implementation's internal invariants, returning every
    /// violation found (empty = clean).
    fn check_invariants(&self) -> Vec<Violation>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_formats_with_checker_prefix() {
        let v = Violation::new("fsck", "inode 7 unreachable");
        assert_eq!(v.to_string(), "[fsck] inode 7 unreachable");
    }

    #[test]
    fn trait_is_object_safe() {
        struct Clean;
        impl CrashConsistent for Clean {
            fn check_invariants(&self) -> Vec<Violation> {
                Vec::new()
            }
        }
        let c: Box<dyn CrashConsistent> = Box::new(Clean);
        assert!(c.check_invariants().is_empty());
    }
}
