//! # fskit — shared file-system substrate for the ByteFS reproduction
//!
//! This crate holds everything the ByteFS file system and the baseline file
//! systems (Ext4-like, F2FS-like, NOVA-like, PMFS-like) have in common:
//!
//! * the [`FileSystem`] trait — a POSIX-flavoured API (create/open/read/write/
//!   fsync/mkdir/rename/...) that every file system in this workspace
//!   implements, so workloads and the benchmark harness are file-system
//!   agnostic;
//! * [`error`] — the shared error type;
//! * [`path`] — path normalization and traversal helpers;
//! * [`pagecache`] — the host page cache, including the copy-on-write
//!   duplicate pages and XOR-based dirty-chunk detection that ByteFS uses to
//!   choose between the byte and block interface on writeback (§4.6);
//! * [`journal`] — a JBD2-style block journal used by the Ext4-like baseline
//!   and by ByteFS data journaling.
//!
//! ```
//! use fskit::{FileSystem, OpenFlags};
//! # fn demo(fs: &dyn FileSystem) -> fskit::FsResult<()> {
//! let fd = fs.create("/hello.txt")?;
//! fs.write(fd, 0, b"hi there")?;
//! fs.fsync(fd)?;
//! assert_eq!(fs.read(fd, 0, 2)?, b"hi");
//! fs.close(fd)?;
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod afs;
pub mod check;
pub mod error;
pub mod fs;
pub mod journal;
pub mod pagecache;
pub mod path;
pub mod types;

pub use afs::{AsyncFileSystem, AsyncFileSystemExt, AsyncFs, BlockOnFs, BoxFuture, InlineSyncFs};
pub use check::{CrashConsistent, Violation};
pub use error::{FsError, FsResult};
pub use fs::{FileSystem, FileSystemExt};
pub use types::{DirEntry, Fd, FileType, Metadata, OpenFlags};
