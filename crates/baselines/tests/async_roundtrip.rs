//! The futures-based file-system API is file-system agnostic: a baseline
//! behind [`AsyncFs`] behaves exactly like its sync self.

use std::sync::Arc;

use baselines::Ext4Like;
use fskit::{AsyncFileSystem, AsyncFileSystemExt, AsyncFs, FileSystem, FileSystemExt};
use mssd::{DramMode, Executor, Mssd, MssdConfig};

#[test]
fn async_clients_round_trip_on_the_ext4_baseline() {
    let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
    let fs = Ext4Like::format(Arc::clone(&dev));
    let afs: Arc<dyn AsyncFileSystem> =
        Arc::new(AsyncFs::new(Arc::clone(&fs) as Arc<dyn FileSystem>));
    let exec = Executor::new(2);

    let handles: Vec<_> = (0..8)
        .map(|c| {
            let afs = Arc::clone(&afs);
            exec.spawn(async move {
                let path = format!("/base{c}");
                let body = vec![c as u8 ^ 0x5C; 1024 + c * 64];
                afs.write_file(&path, &body).await.unwrap();
                assert_eq!(afs.read_file(&path).await.unwrap(), body);
                afs.sync().await.unwrap();
            })
        })
        .collect();
    for h in handles {
        exec.block_on(h);
    }

    // The sync view agrees with what the async clients wrote.
    for c in 0..8usize {
        let body = vec![c as u8 ^ 0x5C; 1024 + c * 64];
        assert_eq!(fs.read_file(&format!("/base{c}")).unwrap(), body);
    }
    assert_eq!(fs.readdir("/").unwrap().len(), 8);
}
