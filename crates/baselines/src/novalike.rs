//! The NOVA-like baseline: byte interface only, per-inode logs, page-granular
//! copy-on-write data.
//!
//! Characteristics reproduced from the paper's analysis (§5.2, §5.3):
//!
//! * all accesses use the byte interface — "NOVA and PMFS ... purely rely on
//!   the byte interface which fails to exploit the spatial locality with the
//!   block interface", so reads pay per-cacheline MMIO latency;
//! * metadata updates append small entries to per-inode logs (no double
//!   write), followed by persistence barriers;
//! * data updates are **out-of-place at page granularity** — every write copies
//!   the page, which "incurs extra write traffic due to their page-granular
//!   copy-on-write mechanism";
//! * there is no host page cache (DAX-style direct access).

use fskit::FsResult;
use mssd::{Category, Mssd};

use crate::common::{Ctx, BASELINE_DENTRY_SIZE, BASELINE_INODE_SIZE};
use crate::engine::{BaselineFs, MetaOp, PersistencePolicy};

/// Persistence policy of the NOVA-like baseline.
#[derive(Debug, Default)]
pub struct NovaPolicy;

impl NovaPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }

    /// Appends a log entry of `len` bytes to the per-inode log anchored at
    /// `log_block`.
    fn log_append(
        &self,
        ctx: &mut Ctx<'_>,
        log_block: u64,
        len: u64,
        cat: Category,
    ) -> FsResult<()> {
        let page_size = ctx.layout.page_size as u64;
        let seq = ctx.next_seq();
        let offset = (seq * BASELINE_DENTRY_SIZE) % (page_size - len.min(page_size)).max(1);
        let addr = log_block * page_size + offset;
        let data = vec![0u8; len as usize];
        ctx.device.try_byte_write(addr, &data, None, cat)?;
        Ok(())
    }
}

impl PersistencePolicy for NovaPolicy {
    fn fs_name(&self) -> &'static str {
        "nova"
    }

    fn buffered_data(&self) -> bool {
        false
    }

    fn load_inode(&self, ctx: &mut Ctx<'_>, ino: u64) -> FsResult<()> {
        ctx.device.try_byte_read(
            ctx.layout.inode_addr(ino),
            BASELINE_INODE_SIZE as usize,
            Category::Inode,
        )?;
        Ok(())
    }

    fn load_dir(
        &self,
        ctx: &mut Ctx<'_>,
        _ino: u64,
        meta_block: u64,
        entries: usize,
    ) -> FsResult<()> {
        // Walk the directory's log entries one by one (no block locality).
        let page_size = ctx.layout.page_size;
        let len = ((entries.max(1)) * BASELINE_DENTRY_SIZE as usize).min(page_size);
        ctx.device.try_byte_read(meta_block * page_size as u64, len, Category::Dentry)?;
        Ok(())
    }

    fn metadata_op(&self, ctx: &mut Ctx<'_>, op: &MetaOp) -> FsResult<()> {
        match *op {
            MetaOp::Create { parent_meta_block, ino, name_len, .. } => {
                self.log_append(
                    ctx,
                    parent_meta_block,
                    BASELINE_DENTRY_SIZE + name_len as u64,
                    Category::Dentry,
                )?;
                ctx.device.try_byte_write(
                    ctx.layout.inode_addr(ino),
                    &[0u8; BASELINE_INODE_SIZE as usize],
                    None,
                    Category::Inode,
                )?;
                ctx.device.persist_barrier();
            }
            MetaOp::Remove { parent_meta_block, ino, .. } => {
                self.log_append(ctx, parent_meta_block, BASELINE_DENTRY_SIZE, Category::Dentry)?;
                ctx.device.try_byte_write(
                    ctx.layout.inode_addr(ino),
                    &[0u8; 64],
                    None,
                    Category::Inode,
                )?;
                ctx.device.persist_barrier();
            }
            MetaOp::Rename { from_meta_block, to_meta_block, name_len, .. } => {
                self.log_append(ctx, from_meta_block, BASELINE_DENTRY_SIZE, Category::Dentry)?;
                self.log_append(
                    ctx,
                    to_meta_block,
                    BASELINE_DENTRY_SIZE + name_len as u64,
                    Category::Dentry,
                )?;
                ctx.device.persist_barrier();
            }
            MetaOp::InodeUpdate { ino, pages } => {
                // One log entry per updated page mapping (write-entry log).
                let len = 64 * pages.max(1) as u64;
                ctx.device.try_byte_write(
                    ctx.layout.inode_addr(ino),
                    &vec![0u8; len.min(BASELINE_INODE_SIZE * 4) as usize],
                    None,
                    Category::Inode,
                )?;
                ctx.device.persist_barrier();
            }
            MetaOp::Truncate { ino, .. } => {
                ctx.device.try_byte_write(
                    ctx.layout.inode_addr(ino),
                    &[0u8; 64],
                    None,
                    Category::Inode,
                )?;
                ctx.device.persist_barrier();
            }
        }
        Ok(())
    }

    fn write_page(
        &self,
        ctx: &mut Ctx<'_>,
        _ino: u64,
        _file_block: u64,
        _old_lba: Option<u64>,
        page: &[u8],
        _dirty: &[(usize, usize)],
    ) -> FsResult<u64> {
        // Page-granular copy-on-write: the whole page is written to a fresh
        // block over the byte interface, regardless of how little changed.
        let lba = ctx.alloc.allocate().expect("data area not full");
        ctx.device.try_byte_write(lba * ctx.layout.page_size as u64, page, None, Category::Data)?;
        ctx.device.persist_barrier();
        Ok(lba)
    }

    fn read_range(
        &self,
        ctx: &mut Ctx<'_>,
        lba: u64,
        offset: usize,
        len: usize,
    ) -> FsResult<Vec<u8>> {
        Ok(ctx.device.try_byte_read(
            lba * ctx.layout.page_size as u64 + offset as u64,
            len,
            Category::Data,
        )?)
    }

    fn fsync_epilogue(&self, ctx: &mut Ctx<'_>, _ino: u64, _synced_pages: usize) -> FsResult<()> {
        // Data and metadata are already persistent; fsync only orders.
        ctx.device.persist_barrier();
        Ok(())
    }
}

/// The NOVA-like baseline file system.
pub type NovaLike = BaselineFs<NovaPolicy>;

impl BaselineFs<NovaPolicy> {
    /// Formats a NOVA-like file system on the device.
    pub fn format(device: std::sync::Arc<Mssd>) -> std::sync::Arc<Self> {
        Self::with_policy(device, NovaPolicy::new())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use fskit::{FileSystem, FileSystemExt, OpenFlags};
    use mssd::stats::Direction;
    use mssd::{Category, DramMode, Interface, Mssd, MssdConfig};

    use super::NovaLike;

    fn new_fs() -> (Arc<Mssd>, Arc<NovaLike>) {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let fs = NovaLike::format(Arc::clone(&dev));
        (dev, fs)
    }

    #[test]
    fn basic_file_operations_roundtrip() {
        let (_dev, fs) = new_fs();
        fs.mkdir("/nv").unwrap();
        fs.write_file("/nv/f", &vec![0x11u8; 9_999]).unwrap();
        assert_eq!(fs.read_file("/nv/f").unwrap(), vec![0x11u8; 9_999]);
        let fd = fs.open("/nv/f", OpenFlags::read_write()).unwrap();
        fs.write(fd, 100, &[9u8; 50]).unwrap();
        let back = fs.read(fd, 90, 70).unwrap();
        assert_eq!(&back[..10], &[0x11u8; 10][..]);
        assert_eq!(&back[10..60], &[9u8; 50][..]);
        fs.unlink("/nv/f").unwrap();
        fs.rmdir("/nv").unwrap();
    }

    #[test]
    fn uses_only_the_byte_interface() {
        let (dev, fs) = new_fs();
        fs.write_file("/b", &vec![1u8; 6_000]).unwrap();
        fs.read_file("/b").unwrap();
        let t = dev.traffic();
        assert_eq!(t.host_bytes_by_interface(Direction::Write, Interface::Block), 0);
        assert_eq!(t.host_bytes_by_interface(Direction::Read, Interface::Block), 0);
        assert!(t.host_bytes_by_interface(Direction::Write, Interface::Byte) > 0);
        assert!(t.host_bytes_by_interface(Direction::Read, Interface::Byte) > 0);
    }

    #[test]
    fn small_overwrite_amplifies_to_a_full_page() {
        let (dev, fs) = new_fs();
        fs.write_file("/cow", &vec![1u8; 4096]).unwrap();
        let before = dev.traffic();
        let fd = fs.open("/cow", OpenFlags::read_write()).unwrap();
        fs.write(fd, 0, &[2u8; 64]).unwrap();
        let delta = dev.traffic().delta_since(&before);
        assert!(
            delta.host_bytes_by_category(Direction::Write, Category::Data) >= 4096,
            "page-granular CoW rewrites the whole page for a 64 B update"
        );
        // Correctness is preserved.
        assert_eq!(&fs.read_file("/cow").unwrap()[..64], &[2u8; 64][..]);
        assert_eq!(fs.read_file("/cow").unwrap()[64], 1);
    }

    #[test]
    fn writes_are_immediately_durable_without_fsync() {
        let (dev, fs) = new_fs();
        let before = dev.traffic();
        fs.write_file("/now", &vec![5u8; 4096]).unwrap();
        let mid = dev.traffic().delta_since(&before);
        assert!(mid.host_bytes_by_category(Direction::Write, Category::Data) >= 4096);
        // fsync adds no further data traffic.
        let fd = fs.open("/now", OpenFlags::read_write()).unwrap();
        let before = dev.traffic();
        fs.fsync(fd).unwrap();
        let delta = dev.traffic().delta_since(&before);
        assert_eq!(delta.host_bytes_by_category(Direction::Write, Category::Data), 0);
    }

    #[test]
    fn metadata_ops_append_small_log_entries() {
        let (dev, fs) = new_fs();
        let before = dev.traffic();
        fs.mkdir("/m").unwrap();
        fs.write_file("/m/a", b"tiny").unwrap();
        fs.rename("/m/a", "/m/b").unwrap();
        fs.unlink("/m/b").unwrap();
        let delta = dev.traffic().delta_since(&before);
        let dentry = delta.host_bytes_by_category(Direction::Write, Category::Dentry);
        let inode = delta.host_bytes_by_category(Direction::Write, Category::Inode);
        assert!(dentry > 0 && dentry < 4096, "dentry log entries stay small ({dentry} B)");
        assert!(inode > 0 && inode < 4096, "inode log entries stay small ({inode} B)");
        assert_eq!(delta.host_bytes_by_category(Direction::Write, Category::Journal), 0);
    }
}
