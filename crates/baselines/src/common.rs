//! Shared plumbing for the baseline file systems: the pseudo on-device layout,
//! a simple block allocator, and the context handed to persistence policies.

use std::collections::BTreeSet;
use std::sync::Arc;

use fskit::journal::BlockJournal;
use mssd::Mssd;

/// The pseudo on-device layout the baselines use to pick *addresses* for
/// metadata traffic. The regions mirror an Ext4-style layout; because baseline
/// metadata is modelled at the traffic level the exact contents are never read
/// back, but keeping the regions disjoint from the data area keeps the
/// device-level accounting clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PseudoLayout {
    /// Device page size.
    pub page_size: usize,
    /// Journal area (Ext4-like): `[journal_start, journal_start + journal_pages)`.
    pub journal_start: u64,
    /// Journal size in pages.
    pub journal_pages: u64,
    /// Inode table start page.
    pub inode_table_start: u64,
    /// Inode table size in pages.
    pub inode_table_pages: u64,
    /// Bitmap / NAT / SIT region start page.
    pub bitmap_start: u64,
    /// Bitmap region size in pages.
    pub bitmap_pages: u64,
    /// First data page.
    pub data_start: u64,
    /// Total pages on the device.
    pub total_pages: u64,
}

/// On-device inode size used by the baselines for traffic accounting.
pub const BASELINE_INODE_SIZE: u64 = 128;

/// Size of a directory entry update for byte-interface file systems.
pub const BASELINE_DENTRY_SIZE: u64 = 64;

impl PseudoLayout {
    /// Computes the layout for a device.
    pub fn compute(device: &Mssd) -> Self {
        let total_pages = device.logical_pages();
        let page_size = device.page_size();
        let journal_start = 1;
        let journal_pages = (total_pages / 100).clamp(64, 32_768);
        let inode_table_start = journal_start + journal_pages;
        let inode_table_pages = (total_pages / 64).max(16);
        let bitmap_start = inode_table_start + inode_table_pages;
        let bitmap_pages = (total_pages / 1024).max(8);
        let data_start = bitmap_start + bitmap_pages;
        assert!(data_start < total_pages, "device too small for baseline layout");
        Self {
            page_size,
            journal_start,
            journal_pages,
            inode_table_start,
            inode_table_pages,
            bitmap_start,
            bitmap_pages,
            data_start,
            total_pages,
        }
    }

    /// Inode-table page holding inode `ino`.
    pub fn inode_page(&self, ino: u64) -> u64 {
        let per_page = self.page_size as u64 / BASELINE_INODE_SIZE;
        self.inode_table_start + (ino / per_page) % self.inode_table_pages
    }

    /// Device byte address of inode `ino`.
    pub fn inode_addr(&self, ino: u64) -> u64 {
        let per_page = self.page_size as u64 / BASELINE_INODE_SIZE;
        self.inode_page(ino) * self.page_size as u64 + (ino % per_page) * BASELINE_INODE_SIZE
    }

    /// Bitmap page covering object `idx` (inode or block).
    pub fn bitmap_page(&self, idx: u64) -> u64 {
        let bits_per_page = (self.page_size * 8) as u64;
        self.bitmap_start + (idx / bits_per_page) % self.bitmap_pages
    }

    /// Device byte address of the 64-byte bitmap group covering `idx`.
    pub fn bitmap_group_addr(&self, idx: u64) -> u64 {
        let bits_per_group = BASELINE_DENTRY_SIZE * 8;
        let groups_per_page = self.page_size as u64 / BASELINE_DENTRY_SIZE;
        let group = idx / bits_per_group;
        self.bitmap_page(idx) * self.page_size as u64
            + (group % groups_per_page) * BASELINE_DENTRY_SIZE
    }
}

/// A simple free-list block allocator over the data area.
#[derive(Debug)]
pub struct BlockAlloc {
    start: u64,
    next: u64,
    end: u64,
    free: BTreeSet<u64>,
}

impl BlockAlloc {
    /// Creates an allocator over `[start, end)`.
    pub fn new(start: u64, end: u64) -> Self {
        Self { start, next: start, end, free: BTreeSet::new() }
    }

    /// Allocates one block.
    pub fn allocate(&mut self) -> Option<u64> {
        if let Some(&lba) = self.free.iter().next() {
            self.free.remove(&lba);
            return Some(lba);
        }
        if self.next < self.end {
            let lba = self.next;
            self.next += 1;
            Some(lba)
        } else {
            None
        }
    }

    /// Frees a block for reuse.
    pub fn free(&mut self, lba: u64) {
        debug_assert!((self.start..self.end).contains(&lba));
        self.free.insert(lba);
    }

    /// Number of blocks currently allocated.
    pub fn allocated(&self) -> u64 {
        (self.next - self.start) - self.free.len() as u64
    }
}

/// The context handed to [`crate::engine::PersistencePolicy`] hooks.
pub struct Ctx<'a> {
    /// The device being written to.
    pub device: &'a Arc<Mssd>,
    /// The pseudo layout for metadata addresses.
    pub layout: &'a PseudoLayout,
    /// Allocator over the data area (also used for out-of-place metadata and
    /// per-inode log blocks).
    pub alloc: &'a mut BlockAlloc,
    /// The Ext4-style journal, if this baseline uses one.
    pub journal: Option<&'a mut BlockJournal>,
    /// A monotonically increasing sequence number policies can use to place
    /// log appends.
    pub seq: &'a mut u64,
}

impl<'a> Ctx<'a> {
    /// Returns the next sequence number.
    pub fn next_seq(&mut self) -> u64 {
        *self.seq += 1;
        *self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssd::{DramMode, MssdConfig};

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let l = PseudoLayout::compute(&dev);
        assert!(l.journal_start >= 1);
        assert!(l.inode_table_start >= l.journal_start + l.journal_pages);
        assert!(l.bitmap_start >= l.inode_table_start + l.inode_table_pages);
        assert!(l.data_start >= l.bitmap_start + l.bitmap_pages);
        assert!(l.data_start < l.total_pages);
    }

    #[test]
    fn metadata_addresses_stay_in_their_regions() {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let l = PseudoLayout::compute(&dev);
        for ino in [0u64, 1, 100, 100_000] {
            let page = l.inode_page(ino);
            assert!(page >= l.inode_table_start);
            assert!(page < l.inode_table_start + l.inode_table_pages);
            let addr = l.inode_addr(ino);
            assert!(addr / l.page_size as u64 == page);
        }
        for idx in [0u64, 9, 100_000, 12_345_678] {
            let addr = l.bitmap_group_addr(idx);
            let page = addr / l.page_size as u64;
            assert!(page >= l.bitmap_start && page < l.bitmap_start + l.bitmap_pages);
            assert_eq!(addr % BASELINE_DENTRY_SIZE, 0);
        }
    }

    #[test]
    fn block_alloc_hands_out_unique_blocks_and_reuses_freed_ones() {
        let mut a = BlockAlloc::new(100, 110);
        let mut got = Vec::new();
        while let Some(b) = a.allocate() {
            got.push(b);
        }
        assert_eq!(got, (100..110).collect::<Vec<_>>());
        assert_eq!(a.allocated(), 10);
        a.free(103);
        a.free(101);
        assert_eq!(a.allocated(), 8);
        assert_eq!(a.allocate(), Some(101));
        assert_eq!(a.allocate(), Some(103));
        assert_eq!(a.allocate(), None);
        assert_eq!(a.allocated(), 10);
    }

    #[test]
    fn ctx_sequence_increments() {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let layout = PseudoLayout::compute(&dev);
        let mut alloc = BlockAlloc::new(layout.data_start, layout.total_pages);
        let mut seq = 0;
        let mut ctx =
            Ctx { device: &dev, layout: &layout, alloc: &mut alloc, journal: None, seq: &mut seq };
        assert_eq!(ctx.next_seq(), 1);
        assert_eq!(ctx.next_seq(), 2);
    }
}
