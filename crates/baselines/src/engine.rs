//! The shared baseline file-system engine.
//!
//! [`BaselineFs`] provides the namespace, the host page cache, block
//! allocation and the data-correctness path once; each baseline file system
//! plugs in a [`PersistencePolicy`] that decides which device interface every
//! access uses and how much metadata traffic each operation generates. This
//! mirrors how the paper's baselines differ: not in what a file system *does*,
//! but in how its updates reach the device.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

use fskit::check::{CrashConsistent, Violation};
use fskit::journal::BlockJournal;
use fskit::pagecache::{DirtyPage, PageCache, PageRef};
use fskit::path as fspath;
use fskit::{DirEntry, Fd, FileSystem, FileType, FsError, FsResult, Metadata, OpenFlags};
use mssd::Mssd;

use crate::common::{BlockAlloc, Ctx, PseudoLayout};
use crate::namespace::{Namespace, ROOT_INO};

/// A metadata-affecting operation a policy must persist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaOp {
    /// A file or directory was created.
    Create {
        /// Parent directory inode.
        parent: u64,
        /// Device block holding the parent's directory entries / log.
        parent_meta_block: u64,
        /// The new inode.
        ino: u64,
        /// Whether the new object is a directory.
        is_dir: bool,
        /// Length of the new name in bytes.
        name_len: usize,
    },
    /// A file or directory was removed.
    Remove {
        /// Parent directory inode.
        parent: u64,
        /// Device block holding the parent's directory entries / log.
        parent_meta_block: u64,
        /// The removed inode.
        ino: u64,
        /// Whether the removed object was a directory.
        is_dir: bool,
        /// Number of data blocks that were freed.
        freed_blocks: usize,
    },
    /// An entry moved between directories.
    Rename {
        /// Source directory inode and its metadata block.
        from_parent: u64,
        /// Metadata block of the source directory.
        from_meta_block: u64,
        /// Destination directory inode.
        to_parent: u64,
        /// Metadata block of the destination directory.
        to_meta_block: u64,
        /// The moved inode.
        ino: u64,
        /// Length of the destination name.
        name_len: usize,
    },
    /// An inode's size/mtime/data pointers changed (write or writeback).
    InodeUpdate {
        /// The inode.
        ino: u64,
        /// Number of data pages involved in the update.
        pages: usize,
    },
    /// A file was truncated.
    Truncate {
        /// The inode.
        ino: u64,
        /// Number of data blocks that were freed.
        freed_blocks: usize,
    },
}

/// How one baseline file system persists metadata and data.
///
/// Every hook receives a [`Ctx`] giving access to the device, the pseudo
/// layout, the block allocator and (for journaling file systems) the block
/// journal. Hooks are called with the engine lock held, so implementations may
/// keep interior state behind a cheap mutex without ordering concerns.
pub trait PersistencePolicy: Send + Sync + 'static {
    /// File-system name used in reports (e.g. `"ext4"`).
    fn fs_name(&self) -> &'static str;

    /// Whether file data flows through the host page cache (`true` for the
    /// block-based file systems) or straight to the device (`false` for the
    /// DAX-style byte-interface file systems).
    fn buffered_data(&self) -> bool {
        true
    }

    /// Whether [`PersistencePolicy::write_page`] needs the complete page
    /// contents (copy-on-write and whole-block writers) or only the modified
    /// ranges (in-place byte-granular writers).
    fn needs_full_page(&self) -> bool {
        true
    }

    /// Whether the engine should create an Ext4-style block journal for this
    /// policy.
    fn wants_journal(&self) -> bool {
        false
    }

    /// Metadata read traffic generated the first time an inode is accessed.
    fn load_inode(&self, ctx: &mut Ctx<'_>, ino: u64) -> FsResult<()>;

    /// Metadata read traffic generated the first time a directory is accessed.
    fn load_dir(
        &self,
        ctx: &mut Ctx<'_>,
        ino: u64,
        meta_block: u64,
        entries: usize,
    ) -> FsResult<()>;

    /// Persist the metadata effects of one namespace operation.
    fn metadata_op(&self, ctx: &mut Ctx<'_>, op: &MetaOp) -> FsResult<()>;

    /// Persist one file page. `old_lba` is the block currently backing the
    /// page (if any), `page` its full new contents (meaningful only where
    /// `dirty` says so when [`PersistencePolicy::needs_full_page`] is false),
    /// and `dirty` the modified byte ranges. Returns the LBA now backing the
    /// page; out-of-place file systems return a freshly allocated one.
    ///
    /// Media errors (e.g. the device degraded to read-only) surface as
    /// [`FsError::Io`].
    fn write_page(
        &self,
        ctx: &mut Ctx<'_>,
        ino: u64,
        file_block: u64,
        old_lba: Option<u64>,
        page: &[u8],
        dirty: &[(usize, usize)],
    ) -> FsResult<u64>;

    /// Read `len` bytes at `offset` inside the page stored at `lba`.
    fn read_range(
        &self,
        ctx: &mut Ctx<'_>,
        lba: u64,
        offset: usize,
        len: usize,
    ) -> FsResult<Vec<u8>>;

    /// Called at the end of `fsync`/`sync` for an inode, after its data pages
    /// were written (journal commits, ordering barriers).
    fn fsync_epilogue(&self, ctx: &mut Ctx<'_>, ino: u64, synced_pages: usize) -> FsResult<()>;

    /// Called at the end of a whole-file-system `sync` (and unmount), so
    /// journaling file systems can commit metadata batches that no `fsync`
    /// forced out. Defaults to a no-op.
    fn sync_epilogue(&self, ctx: &mut Ctx<'_>) -> FsResult<()> {
        let _ = ctx;
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenFile {
    ino: u64,
    flags: OpenFlags,
}

struct EngineState {
    ns: Namespace,
    layout: PseudoLayout,
    alloc: BlockAlloc,
    journal: Option<BlockJournal>,
    page_cache: PageCache,
    open: HashMap<u64, OpenFile>,
    next_fd: u64,
    loaded_inodes: HashSet<u64>,
    loaded_dirs: HashSet<u64>,
    /// Per-directory metadata block (directory entries / per-inode log head).
    meta_blocks: HashMap<u64, u64>,
    dirty_inodes: BTreeSet<u64>,
    seq: u64,
}

/// A baseline file system: the shared engine specialized by a persistence
/// policy. Use the concrete aliases [`crate::Ext4Like`], [`crate::F2fsLike`],
/// [`crate::NovaLike`] and [`crate::PmfsLike`].
pub struct BaselineFs<P: PersistencePolicy> {
    device: Arc<Mssd>,
    policy: P,
    state: Mutex<EngineState>,
}

impl<P: PersistencePolicy> std::fmt::Debug for BaselineFs<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineFs").field("fs", &self.policy.fs_name()).finish()
    }
}

/// Host page-cache capacity used by the buffered baselines, in pages (256 MB
/// worth of 4 KB pages, matching the ByteFS default).
const PAGE_CACHE_PAGES: usize = 64 << 10;

impl<P: PersistencePolicy> BaselineFs<P> {
    /// Creates (formats) a baseline file system on the device.
    pub fn with_policy(device: Arc<Mssd>, policy: P) -> Arc<Self> {
        let layout = PseudoLayout::compute(&device);
        let mut alloc = BlockAlloc::new(layout.data_start, layout.total_pages);
        let journal = policy.wants_journal().then(|| {
            BlockJournal::new(Arc::clone(&device), layout.journal_start, layout.journal_pages)
        });
        let mut meta_blocks = HashMap::new();
        meta_blocks.insert(ROOT_INO, alloc.allocate().expect("room for the root directory"));
        let page_size = device.page_size();
        let state = EngineState {
            ns: Namespace::new(),
            layout,
            alloc,
            journal,
            page_cache: PageCache::new(PAGE_CACHE_PAGES, page_size, false),
            open: HashMap::new(),
            next_fd: 3,
            loaded_inodes: HashSet::new(),
            loaded_dirs: HashSet::new(),
            meta_blocks,
            dirty_inodes: BTreeSet::new(),
            seq: 0,
        };
        Arc::new(Self { device, policy, state: Mutex::new(state) })
    }

    /// The persistence policy (for tests and reports).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    fn with_ctx<R>(
        &self,
        st: &mut EngineState,
        f: impl FnOnce(&mut Ctx<'_>, &mut Namespace, &mut PageCache) -> R,
    ) -> R {
        let EngineState { ns, layout, alloc, journal, page_cache, seq, .. } = st;
        let mut ctx = Ctx { device: &self.device, layout, alloc, journal: journal.as_mut(), seq };
        f(&mut ctx, ns, page_cache)
    }

    fn touch_inode(&self, st: &mut EngineState, ino: u64) -> FsResult<()> {
        if st.loaded_inodes.insert(ino) {
            self.with_ctx(st, |ctx, _, _| self.policy.load_inode(ctx, ino))?;
        }
        Ok(())
    }

    fn touch_dir(&self, st: &mut EngineState, ino: u64) -> FsResult<()> {
        if st.loaded_dirs.insert(ino) {
            let meta_block = st.meta_blocks.get(&ino).copied().unwrap_or(st.layout.data_start);
            let entries = st.ns.node(ino).map(|n| n.children.len()).unwrap_or(0);
            self.with_ctx(st, |ctx, _, _| self.policy.load_dir(ctx, ino, meta_block, entries))?;
        }
        Ok(())
    }

    /// Resolves a path, generating metadata read traffic for every directory
    /// and the target the first time they are touched.
    fn resolve_touch(&self, st: &mut EngineState, path: &str) -> FsResult<u64> {
        let comps = fspath::components(path)?;
        let mut cur = ROOT_INO;
        for comp in comps {
            self.touch_dir(st, cur)?;
            let node = st.ns.node(cur)?;
            if !node.file_type.is_dir() {
                return Err(FsError::NotADirectory(path.to_string()));
            }
            cur = *node.children.get(comp).ok_or_else(|| FsError::NotFound(path.to_string()))?;
        }
        self.touch_inode(st, cur)?;
        Ok(cur)
    }

    fn resolve_parent_touch<'p>(
        &self,
        st: &mut EngineState,
        path: &'p str,
    ) -> FsResult<(u64, &'p str)> {
        let (parent, name) = st.ns.resolve_parent(path)?;
        // Touch every directory on the way for read-traffic accounting.
        let (dirs, _) = fspath::split_parent(path)?;
        let mut cur = ROOT_INO;
        self.touch_dir(st, cur)?;
        for comp in dirs {
            cur = *st.ns.node(cur)?.children.get(comp).expect("resolve_parent succeeded");
            self.touch_dir(st, cur)?;
        }
        Ok((parent, name))
    }

    fn open_file(&self, st: &EngineState, fd: Fd) -> FsResult<OpenFile> {
        st.open.get(&fd.0).copied().ok_or(FsError::BadDescriptor(fd.0))
    }

    fn meta_block_of(&self, st: &mut EngineState, ino: u64) -> u64 {
        if let Some(b) = st.meta_blocks.get(&ino) {
            return *b;
        }
        let lba = st.alloc.allocate().unwrap_or(st.layout.data_start);
        st.meta_blocks.insert(ino, lba);
        lba
    }

    fn do_create(&self, st: &mut EngineState, path: &str, is_dir: bool) -> FsResult<u64> {
        let (parent, name) = self.resolve_parent_touch(st, path)?;
        self.touch_dir(st, parent)?;
        let now = self.device.clock().now_ns();
        let file_type = if is_dir { FileType::Directory } else { FileType::File };
        let ino = st.ns.create(parent, name, file_type, now)?;
        if is_dir {
            self.meta_block_of(st, ino);
        }
        let parent_meta_block = self.meta_block_of(st, parent);
        st.loaded_inodes.insert(ino);
        if is_dir {
            st.loaded_dirs.insert(ino);
        }
        let name_len = name.len();
        let op = MetaOp::Create { parent, parent_meta_block, ino, is_dir, name_len };
        self.with_ctx(st, |ctx, _, _| self.policy.metadata_op(ctx, &op))?;
        Ok(ino)
    }

    fn free_node_blocks(&self, st: &mut EngineState, blocks: &BTreeMap<u64, u64>) {
        for lba in blocks.values() {
            st.alloc.free(*lba);
            self.device.trim(*lba, 1);
        }
    }

    /// Writes back one page through the policy and updates the block map.
    fn writeback_page(
        &self,
        st: &mut EngineState,
        ino: u64,
        file_block: u64,
        page: &[u8],
        dirty: &[(usize, usize)],
    ) -> FsResult<()> {
        let old_lba = st.ns.node(ino)?.blocks.get(&file_block).copied();
        let new_lba = self.with_ctx(st, |ctx, _, _| {
            self.policy.write_page(ctx, ino, file_block, old_lba, page, dirty)
        })?;
        if let Some(old) = old_lba {
            if old != new_lba {
                st.alloc.free(old);
                self.device.trim(old, 1);
            }
        }
        st.ns.node_mut(ino)?.blocks.insert(file_block, new_lba);
        Ok(())
    }

    /// Reads one full page of a file, via the page cache when the policy is
    /// buffered. Returns a zero-copy handle (cache hits are a refcount bump).
    fn read_page(&self, st: &mut EngineState, ino: u64, index: u64) -> FsResult<PageRef> {
        let page_size = st.layout.page_size;
        let buffered = self.policy.buffered_data();
        if buffered {
            if let Some(p) = st.page_cache.get(ino, index) {
                return Ok(p);
            }
        }
        let lba = st.ns.node(ino)?.blocks.get(&index).copied();
        let page = match lba {
            Some(lba) => PageRef::from(
                self.with_ctx(st, |ctx, _, _| self.policy.read_range(ctx, lba, 0, page_size))?,
            ),
            None => PageRef::zeroed(page_size),
        };
        if buffered && lba.is_some() {
            st.page_cache.insert_clean(ino, index, page.clone());
        }
        Ok(page)
    }

    fn writeback_inode(
        &self,
        st: &mut EngineState,
        ino: u64,
        pages: Vec<DirtyPage>,
    ) -> FsResult<()> {
        let npages = pages.len();
        let meta_dirty = st.dirty_inodes.remove(&ino);
        if npages == 0 && !meta_dirty {
            return Ok(());
        }
        let page_size = st.layout.page_size;
        for dp in pages {
            self.writeback_page(st, ino, dp.index, &dp.data, &[(0, page_size)])?;
        }
        let op = MetaOp::InodeUpdate { ino, pages: npages };
        self.with_ctx(st, |ctx, _, _| self.policy.metadata_op(ctx, &op))?;
        self.with_ctx(st, |ctx, _, _| self.policy.fsync_epilogue(ctx, ino, npages))?;
        Ok(())
    }
}

/// The baseline engine's implementation of the shared checker API: the
/// namespace's block maps, the per-directory metadata blocks and the block
/// allocator must agree exactly — every referenced LBA inside the data
/// region, allocated, and owned once; the allocator counting nothing beyond
/// what the namespace references. The device FTL invariants ride along.
impl<P: PersistencePolicy> CrashConsistent for BaselineFs<P> {
    fn check_invariants(&self) -> Vec<Violation> {
        let checker = format!("{}-check", self.policy.fs_name());
        let mut v = Vec::new();
        let st = self.state.lock();
        let mut owner: HashMap<u64, u64> = HashMap::new();
        let mut referenced: u64 = 0;
        let mut claim = |lba: u64, ino: u64, what: &str, v: &mut Vec<Violation>| {
            referenced += 1;
            if lba < st.layout.data_start || lba >= st.layout.total_pages {
                v.push(Violation::new(
                    &checker,
                    format!("inode {ino}: {what} block {lba} outside the data region"),
                ));
                return;
            }
            if let Some(prev) = owner.insert(lba, ino) {
                v.push(Violation::new(
                    &checker,
                    format!("block {lba} owned by both inode {prev} and inode {ino} ({what})"),
                ));
            }
        };
        for node in st.ns.nodes() {
            for (file_block, lba) in &node.blocks {
                claim(*lba, node.ino, "data", &mut v);
                let _ = file_block;
            }
        }
        for (ino, lba) in &st.meta_blocks {
            claim(*lba, *ino, "metadata", &mut v);
        }
        if st.alloc.allocated() != referenced {
            v.push(Violation::new(
                &checker,
                format!(
                    "allocator says {} blocks in use, namespace references {}: \
                     leaked or lost blocks",
                    st.alloc.allocated(),
                    referenced
                ),
            ));
        }
        drop(st);
        for problem in self.device.check_consistency() {
            v.push(Violation::new("mssd-ftl", problem));
        }
        v
    }
}

impl<P: PersistencePolicy> FileSystem for BaselineFs<P> {
    fn name(&self) -> &'static str {
        self.policy.fs_name()
    }

    fn device(&self) -> &Arc<Mssd> {
        &self.device
    }

    fn create(&self, path: &str) -> FsResult<Fd> {
        let mut st = self.state.lock();
        let ino = self.do_create(&mut st, path, false)?;
        let fd = st.next_fd;
        st.next_fd += 1;
        st.open.insert(fd, OpenFile { ino, flags: OpenFlags::create_rw() });
        Ok(Fd(fd))
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        let mut st = self.state.lock();
        let ino = match self.resolve_touch(&mut st, path) {
            Ok(ino) => {
                if st.ns.node(ino)?.file_type.is_dir() {
                    return Err(FsError::IsADirectory(path.to_string()));
                }
                ino
            }
            Err(FsError::NotFound(_)) if flags.create => self.do_create(&mut st, path, false)?,
            Err(e) => return Err(e),
        };
        let fd = st.next_fd;
        st.next_fd += 1;
        st.open.insert(fd, OpenFile { ino, flags });
        if flags.truncate {
            drop(st);
            self.truncate(Fd(fd), 0)?;
        }
        Ok(Fd(fd))
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        let mut st = self.state.lock();
        st.open.remove(&fd.0).ok_or(FsError::BadDescriptor(fd.0))?;
        Ok(())
    }

    fn read(&self, fd: Fd, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let mut st = self.state.lock();
        let of = self.open_file(&st, fd)?;
        let size = st.ns.node(of.ino)?.size;
        if offset >= size {
            return Ok(Vec::new());
        }
        let len = len.min((size - offset) as usize);
        let page_size = st.layout.page_size as u64;
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        let end = offset + len as u64;
        while pos < end {
            let index = pos / page_size;
            let in_page = (pos % page_size) as usize;
            let span = ((page_size as usize) - in_page).min((end - pos) as usize);
            if !self.policy.buffered_data() {
                // DAX-style read of exactly the requested range.
                let lba = st.ns.node(of.ino)?.blocks.get(&index).copied();
                match lba {
                    Some(lba) => {
                        let bytes = self.with_ctx(&mut st, |ctx, _, _| {
                            self.policy.read_range(ctx, lba, in_page, span)
                        })?;
                        out.extend_from_slice(&bytes);
                    }
                    None => out.extend(std::iter::repeat_n(0u8, span)),
                }
            } else {
                let page = self.read_page(&mut st, of.ino, index)?;
                out.extend_from_slice(&page[in_page..in_page + span]);
            }
            pos += span as u64;
        }
        Ok(out)
    }

    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        let mut st = self.state.lock();
        let of = self.open_file(&st, fd)?;
        if !of.flags.write && !of.flags.create {
            return Err(FsError::PermissionDenied("file not open for writing".into()));
        }
        if data.is_empty() {
            return Ok(0);
        }
        let offset = if of.flags.append { st.ns.node(of.ino)?.size } else { offset };
        let page_size = st.layout.page_size as u64;
        let ps = page_size as usize;
        let mut pos = offset;
        let end = offset + data.len() as u64;
        while pos < end {
            let index = pos / page_size;
            let in_page = (pos % page_size) as usize;
            let span = (ps - in_page).min((end - pos) as usize);
            let chunk = &data[(pos - offset) as usize..(pos - offset) as usize + span];
            if self.policy.buffered_data() {
                if st.page_cache.contains(of.ino, index) {
                    st.page_cache.write(of.ino, index, in_page, chunk);
                } else if in_page == 0 && span == ps {
                    st.page_cache.insert_new_dirty(of.ino, index, chunk.to_vec());
                } else {
                    let base = self.read_page(&mut st, of.ino, index)?;
                    if !st.page_cache.contains(of.ino, index) {
                        st.page_cache.insert_clean(of.ino, index, base);
                    }
                    st.page_cache.write(of.ino, index, in_page, chunk);
                }
            } else {
                // Write-through: build the page image the policy needs.
                let old_lba = st.ns.node(of.ino)?.blocks.get(&index).copied();
                let mut page = if self.policy.needs_full_page()
                    && old_lba.is_some()
                    && !(in_page == 0 && span == ps)
                {
                    self.with_ctx(&mut st, |ctx, _, _| {
                        self.policy.read_range(ctx, old_lba.expect("checked"), 0, ps)
                    })?
                } else {
                    vec![0u8; ps]
                };
                page[in_page..in_page + span].copy_from_slice(chunk);
                self.writeback_page(&mut st, of.ino, index, &page, &[(in_page, span)])?;
            }
            pos += span as u64;
        }
        let now = self.device.clock().now_ns();
        {
            let node = st.ns.node_mut(of.ino)?;
            node.size = node.size.max(end);
            node.mtime_ns = now;
        }
        if self.policy.buffered_data() {
            st.dirty_inodes.insert(of.ino);
        } else {
            // DAX-style file systems persist the inode update with the write.
            let pages = ((end - offset) as usize).div_ceil(ps);
            let op = MetaOp::InodeUpdate { ino: of.ino, pages };
            self.with_ctx(&mut st, |ctx, _, _| self.policy.metadata_op(ctx, &op))?;
        }
        Ok(data.len())
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        let mut st = self.state.lock();
        let of = self.open_file(&st, fd)?;
        if self.policy.buffered_data() {
            let dirty = st.page_cache.take_dirty(of.ino);
            self.writeback_inode(&mut st, of.ino, dirty)
        } else {
            self.with_ctx(&mut st, |ctx, _, _| self.policy.fsync_epilogue(ctx, of.ino, 0))
        }
    }

    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        let mut st = self.state.lock();
        let of = self.open_file(&st, fd)?;
        let page_size = st.layout.page_size as u64;
        let keep_blocks = size.div_ceil(page_size);
        let now = self.device.clock().now_ns();
        let freed: Vec<u64> = {
            let node = st.ns.node_mut(of.ino)?;
            if node.file_type.is_dir() {
                return Err(FsError::IsADirectory(format!("inode {}", of.ino)));
            }
            let freed: Vec<u64> = node
                .blocks
                .iter()
                .filter(|(fb, _)| **fb >= keep_blocks)
                .map(|(_, lba)| *lba)
                .collect();
            node.blocks.retain(|fb, _| *fb < keep_blocks);
            node.size = size;
            node.mtime_ns = now;
            freed
        };
        let nfreed = freed.len();
        for lba in freed {
            st.alloc.free(lba);
            self.device.trim(lba, 1);
        }
        st.page_cache.invalidate_from(of.ino, keep_blocks);
        // Zero the tail of the last partial page so stale bytes beyond the new
        // EOF cannot resurface when the file grows again.
        let ps = st.layout.page_size;
        let tail_off = (size % page_size) as usize;
        if tail_off != 0 {
            let last = size / page_size;
            let last_mapped = st.ns.node(of.ino)?.blocks.contains_key(&last);
            let resident = st.page_cache.contains(of.ino, last);
            if last_mapped || resident {
                let page = self.read_page(&mut st, of.ino, last)?;
                if self.policy.buffered_data() {
                    if !st.page_cache.contains(of.ino, last) {
                        st.page_cache.insert_clean(of.ino, last, page);
                    }
                    let zeros = vec![0u8; ps - tail_off];
                    st.page_cache.write(of.ino, last, tail_off, &zeros);
                } else {
                    let mut page = page.to_vec();
                    page[tail_off..].fill(0);
                    self.writeback_page(
                        &mut st,
                        of.ino,
                        last,
                        &page,
                        &[(tail_off, ps - tail_off)],
                    )?;
                }
            }
        }
        let op = MetaOp::Truncate { ino: of.ino, freed_blocks: nfreed };
        self.with_ctx(&mut st, |ctx, _, _| self.policy.metadata_op(ctx, &op))?;
        Ok(())
    }

    fn fstat(&self, fd: Fd) -> FsResult<Metadata> {
        let mut st = self.state.lock();
        let of = self.open_file(&st, fd)?;
        self.touch_inode(&mut st, of.ino)?;
        Ok(st.ns.node(of.ino)?.metadata())
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let mut st = self.state.lock();
        let ino = self.resolve_touch(&mut st, path)?;
        Ok(st.ns.node(ino)?.metadata())
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        let mut st = self.state.lock();
        self.do_create(&mut st, path, true)?;
        Ok(())
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let mut st = self.state.lock();
        let (parent, name) = self.resolve_parent_touch(&mut st, path)?;
        self.touch_dir(&mut st, parent)?;
        let now = self.device.clock().now_ns();
        let removed = st.ns.remove(parent, name, true, now)?;
        if let Some(meta) = st.meta_blocks.remove(&removed.ino) {
            st.alloc.free(meta);
            self.device.trim(meta, 1);
        }
        let parent_meta_block = self.meta_block_of(&mut st, parent);
        let op = MetaOp::Remove {
            parent,
            parent_meta_block,
            ino: removed.ino,
            is_dir: true,
            freed_blocks: 0,
        };
        self.with_ctx(&mut st, |ctx, _, _| self.policy.metadata_op(ctx, &op))?;
        Ok(())
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let mut st = self.state.lock();
        let (parent, name) = self.resolve_parent_touch(&mut st, path)?;
        self.touch_dir(&mut st, parent)?;
        let now = self.device.clock().now_ns();
        let removed = st.ns.remove(parent, name, false, now)?;
        let freed_blocks = removed.blocks.len();
        self.free_node_blocks(&mut st, &removed.blocks);
        st.page_cache.invalidate_inode(removed.ino);
        st.dirty_inodes.remove(&removed.ino);
        let parent_meta_block = self.meta_block_of(&mut st, parent);
        let op = MetaOp::Remove {
            parent,
            parent_meta_block,
            ino: removed.ino,
            is_dir: false,
            freed_blocks,
        };
        self.with_ctx(&mut st, |ctx, _, _| self.policy.metadata_op(ctx, &op))?;
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let mut st = self.state.lock();
        let (from_parent, from_name) = self.resolve_parent_touch(&mut st, from)?;
        let (to_parent, to_name) = self.resolve_parent_touch(&mut st, to)?;
        self.touch_dir(&mut st, from_parent)?;
        self.touch_dir(&mut st, to_parent)?;
        let now = self.device.clock().now_ns();
        let ino = st.ns.rename(from_parent, from_name, to_parent, to_name, now)?;
        let from_meta_block = self.meta_block_of(&mut st, from_parent);
        let to_meta_block = self.meta_block_of(&mut st, to_parent);
        let op = MetaOp::Rename {
            from_parent,
            from_meta_block,
            to_parent,
            to_meta_block,
            ino,
            name_len: to_name.len(),
        };
        self.with_ctx(&mut st, |ctx, _, _| self.policy.metadata_op(ctx, &op))?;
        Ok(())
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let mut st = self.state.lock();
        let ino = self.resolve_touch(&mut st, path)?;
        self.touch_dir(&mut st, ino)?;
        st.ns.readdir(ino)
    }

    fn sync(&self) -> FsResult<()> {
        let mut st = self.state.lock();
        if self.policy.buffered_data() {
            let all = st.page_cache.take_all_dirty();
            let mut by_inode: BTreeMap<u64, Vec<DirtyPage>> = BTreeMap::new();
            for dp in all {
                by_inode.entry(dp.inode).or_default().push(dp);
            }
            for ino in st.dirty_inodes.clone() {
                by_inode.entry(ino).or_default();
            }
            for (ino, pages) in by_inode {
                self.writeback_inode(&mut st, ino, pages)?;
            }
        }
        self.with_ctx(&mut st, |ctx, _, _| self.policy.sync_epilogue(ctx))?;
        Ok(())
    }

    fn drop_caches(&self) {
        let mut st = self.state.lock();
        if st.page_cache.dirty_count() == 0 {
            st.page_cache.clear();
        }
        st.loaded_inodes.clear();
        st.loaded_dirs.clear();
    }

    fn unmount(&self) -> FsResult<()> {
        self.sync()?;
        self.device.try_flush()?;
        Ok(())
    }
}
