//! The Ext4-like baseline: block interface only, ordered-mode JBD2 journaling.
//!
//! Characteristics reproduced from the paper's analysis (§3, Figure 1,
//! Table 2):
//!
//! * every metadata update dirties whole 4 KB blocks (inode table block,
//!   directory block, bitmap block);
//! * dirty metadata blocks are committed through the JBD2 journal — descriptor
//!   block + data blocks + commit block — and then checkpointed in place,
//!   i.e. written **twice** ("journaling caused 30.7 % of the total traffic on
//!   average under the ordered mode");
//! * file data is written in place through the page cache, in whole blocks;
//! * `fsync` forces the journal commit and a device flush.

use parking_lot::Mutex;

use fskit::journal::JournaledBlock;
use fskit::FsResult;
use mssd::{Category, Mssd};

use crate::common::Ctx;
use crate::engine::{BaselineFs, MetaOp, PersistencePolicy};

/// Maximum number of metadata blocks batched into one journal transaction
/// before it is committed even without an `fsync` (mirrors JBD2's periodic
/// commit).
const JOURNAL_BATCH_BLOCKS: usize = 32;

/// Persistence policy of the Ext4-like baseline.
#[derive(Debug, Default)]
pub struct Ext4Policy {
    pending: Mutex<Vec<JournaledBlock>>,
}

impl Ext4Policy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_pending(&self, ctx: &mut Ctx<'_>, lba: u64, category: Category) -> FsResult<()> {
        let mut pending = self.pending.lock();
        if pending.iter().any(|b| b.lba == lba) {
            return Ok(());
        }
        pending.push(JournaledBlock { lba, data: vec![0u8; ctx.layout.page_size], category });
        if pending.len() >= JOURNAL_BATCH_BLOCKS {
            let batch = std::mem::take(&mut *pending);
            drop(pending);
            self.commit_batch(ctx, batch)?;
        }
        Ok(())
    }

    fn flush_pending(&self, ctx: &mut Ctx<'_>) -> FsResult<()> {
        let batch = std::mem::take(&mut *self.pending.lock());
        self.commit_batch(ctx, batch)
    }

    fn commit_batch(&self, ctx: &mut Ctx<'_>, batch: Vec<JournaledBlock>) -> FsResult<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let journal = ctx.journal.as_deref_mut().expect("Ext4 policy always has a journal");
        journal.commit(&batch, true)
    }
}

impl PersistencePolicy for Ext4Policy {
    fn fs_name(&self) -> &'static str {
        "ext4"
    }

    fn wants_journal(&self) -> bool {
        true
    }

    fn load_inode(&self, ctx: &mut Ctx<'_>, ino: u64) -> FsResult<()> {
        let page = ctx.layout.inode_page(ino);
        ctx.device.try_block_read(page, 1, Category::Inode)?;
        Ok(())
    }

    fn load_dir(
        &self,
        ctx: &mut Ctx<'_>,
        _ino: u64,
        meta_block: u64,
        _entries: usize,
    ) -> FsResult<()> {
        ctx.device.try_block_read(meta_block, 1, Category::Dentry)?;
        Ok(())
    }

    fn metadata_op(&self, ctx: &mut Ctx<'_>, op: &MetaOp) -> FsResult<()> {
        match *op {
            MetaOp::Create { parent_meta_block, ino, .. }
            | MetaOp::Remove { parent_meta_block, ino, .. } => {
                self.add_pending(ctx, ctx.layout.inode_page(ino), Category::Inode)?;
                self.add_pending(ctx, parent_meta_block, Category::Dentry)?;
                self.add_pending(ctx, ctx.layout.bitmap_page(ino), Category::Bitmap)?;
            }
            MetaOp::Rename { from_meta_block, to_meta_block, ino, .. } => {
                self.add_pending(ctx, from_meta_block, Category::Dentry)?;
                self.add_pending(ctx, to_meta_block, Category::Dentry)?;
                self.add_pending(ctx, ctx.layout.inode_page(ino), Category::Inode)?;
            }
            MetaOp::InodeUpdate { ino, .. } => {
                self.add_pending(ctx, ctx.layout.inode_page(ino), Category::Inode)?;
                self.add_pending(ctx, ctx.layout.bitmap_page(ino), Category::Bitmap)?;
            }
            MetaOp::Truncate { ino, .. } => {
                self.add_pending(ctx, ctx.layout.inode_page(ino), Category::Inode)?;
                self.add_pending(ctx, ctx.layout.bitmap_page(ino), Category::Bitmap)?;
            }
        }
        Ok(())
    }

    fn write_page(
        &self,
        ctx: &mut Ctx<'_>,
        _ino: u64,
        _file_block: u64,
        old_lba: Option<u64>,
        page: &[u8],
        _dirty: &[(usize, usize)],
    ) -> FsResult<u64> {
        let lba = old_lba.unwrap_or_else(|| ctx.alloc.allocate().expect("data area not full"));
        ctx.device.try_block_write(lba, page, Category::Data)?;
        Ok(lba)
    }

    fn read_range(
        &self,
        ctx: &mut Ctx<'_>,
        lba: u64,
        offset: usize,
        len: usize,
    ) -> FsResult<Vec<u8>> {
        let page = ctx.device.try_block_read(lba, 1, Category::Data)?;
        Ok(page[offset..offset + len].to_vec())
    }

    fn fsync_epilogue(&self, ctx: &mut Ctx<'_>, _ino: u64, _synced_pages: usize) -> FsResult<()> {
        // Ordered mode: data is already in place; commit the metadata journal
        // transaction, which also flushes the device write cache.
        self.flush_pending(ctx)?;
        ctx.device.try_flush()?;
        Ok(())
    }

    fn sync_epilogue(&self, ctx: &mut Ctx<'_>) -> FsResult<()> {
        self.flush_pending(ctx)?;
        ctx.device.try_flush()?;
        Ok(())
    }
}

/// The Ext4-like baseline file system.
pub type Ext4Like = BaselineFs<Ext4Policy>;

impl BaselineFs<Ext4Policy> {
    /// Formats an Ext4-like file system on the device.
    pub fn format(device: std::sync::Arc<Mssd>) -> std::sync::Arc<Self> {
        Self::with_policy(device, Ext4Policy::new())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use fskit::{FileSystem, FileSystemExt, OpenFlags};
    use mssd::stats::Direction;
    use mssd::{Category, DramMode, Interface, Mssd, MssdConfig};

    use super::Ext4Like;

    fn new_fs() -> (Arc<Mssd>, Arc<Ext4Like>) {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let fs = Ext4Like::format(Arc::clone(&dev));
        (dev, fs)
    }

    #[test]
    fn basic_file_operations_roundtrip() {
        let (_dev, fs) = new_fs();
        fs.mkdir("/d").unwrap();
        fs.write_file("/d/f", &vec![3u8; 10_000]).unwrap();
        assert_eq!(fs.read_file("/d/f").unwrap(), vec![3u8; 10_000]);
        assert_eq!(fs.stat("/d/f").unwrap().size, 10_000);
        fs.rename("/d/f", "/d/g").unwrap();
        assert!(fs.exists("/d/g"));
        fs.unlink("/d/g").unwrap();
        fs.rmdir("/d").unwrap();
    }

    #[test]
    fn all_traffic_uses_the_block_interface() {
        let (dev, fs) = new_fs();
        fs.write_file("/blk", &vec![1u8; 5_000]).unwrap();
        fs.read_file("/blk").unwrap();
        let t = dev.traffic();
        assert_eq!(t.host_bytes_by_interface(Direction::Write, Interface::Byte), 0);
        assert_eq!(t.host_bytes_by_interface(Direction::Read, Interface::Byte), 0);
        assert!(t.host_bytes_by_interface(Direction::Write, Interface::Block) > 0);
    }

    #[test]
    fn fsync_generates_journal_double_writes() {
        let (dev, fs) = new_fs();
        let fd = fs.create("/j").unwrap();
        fs.write(fd, 0, &vec![7u8; 4096]).unwrap();
        let before = dev.traffic();
        fs.fsync(fd).unwrap();
        let delta = dev.traffic().delta_since(&before);
        let journal = delta.host_bytes_by_category(Direction::Write, Category::Journal);
        let inode = delta.host_bytes_by_category(Direction::Write, Category::Inode);
        assert!(journal >= 3 * 4096, "descriptor + data + commit journal blocks, got {journal}");
        assert!(inode >= 4096, "checkpoint writes the inode block in place");
        assert!(delta.host_bytes_by_category(Direction::Write, Category::Data) >= 4096);
    }

    #[test]
    fn metadata_writes_are_whole_blocks() {
        let (dev, fs) = new_fs();
        let before = dev.traffic();
        for i in 0..8 {
            fs.write_file(&format!("/small{i}"), b"x").unwrap();
        }
        fs.sync().unwrap();
        let delta = dev.traffic().delta_since(&before);
        // Every metadata category that has traffic wrote at least one full block.
        for cat in [Category::Inode, Category::Dentry, Category::Bitmap] {
            let bytes = delta.host_bytes_by_category(Direction::Write, cat);
            assert!(bytes == 0 || bytes % 4096 == 0, "{cat} wrote {bytes} bytes");
        }
        let inode_bytes = delta.host_bytes_by_category(Direction::Write, Category::Inode);
        assert!(inode_bytes >= 4096, "inode updates amplify to whole blocks");
    }

    #[test]
    fn overwrite_stays_in_place() {
        let (_dev, fs) = new_fs();
        fs.write_file("/f", &vec![1u8; 4096]).unwrap();
        let fd = fs.open("/f", OpenFlags::read_write()).unwrap();
        fs.write(fd, 0, &vec![2u8; 4096]).unwrap();
        fs.fsync(fd).unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), vec![2u8; 4096]);
        let meta = fs.stat("/f").unwrap();
        assert_eq!(meta.blocks, 1, "in-place update keeps a single block");
    }
}
