//! # baselines — comparison file systems for the ByteFS evaluation
//!
//! The paper compares ByteFS against four state-of-the-art file systems, all
//! mounted on the same memory-semantic SSD *without* firmware changes (the
//! device DRAM acts as a conventional page-granular cache,
//! [`mssd::DramMode::PageCache`]):
//!
//! * **Ext4-like** ([`Ext4Like`]) — block interface only, JBD2-style ordered
//!   journaling (metadata blocks written twice: journal + in-place).
//! * **F2FS-like** ([`F2fsLike`]) — block interface only, log-structured
//!   out-of-place updates with node-address-table bookkeeping.
//! * **NOVA-like** ([`NovaLike`]) — byte interface only, per-inode
//!   log-structured metadata and page-granular copy-on-write data.
//! * **PMFS-like** ([`PmfsLike`]) — byte interface only, in-place data writes
//!   and undo-journaled metadata.
//!
//! All four share one engine ([`engine::BaselineFs`]) that provides the POSIX
//! namespace, the host page cache and the data-correctness path; a
//! [`engine::PersistencePolicy`] implementation per file system decides which
//! interface every access uses and how much metadata traffic each operation
//! generates. Data blocks always flow through the device, so reads always
//! return exactly what was written; metadata *persistence formats* are
//! modelled at the traffic level (the simplification is documented in
//! DESIGN.md — the baselines are measurement stand-ins, not remountable
//! on-disk formats).
//!
//! ```
//! use baselines::Ext4Like;
//! use fskit::{FileSystem, FileSystemExt};
//! use mssd::{Mssd, MssdConfig, DramMode};
//!
//! # fn main() -> fskit::FsResult<()> {
//! let device = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
//! let fs = Ext4Like::format(device);
//! fs.write_file("/hello", b"block interface")?;
//! assert_eq!(fs.read_file("/hello")?, b"block interface");
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod engine;
pub mod ext4like;
pub mod f2fslike;
pub mod namespace;
pub mod novalike;
pub mod pmfslike;

pub use ext4like::Ext4Like;
pub use f2fslike::F2fsLike;
pub use novalike::NovaLike;
pub use pmfslike::PmfsLike;
