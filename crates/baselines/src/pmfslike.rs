//! The PMFS-like baseline: byte interface only, in-place data writes,
//! undo-journaled metadata.
//!
//! Characteristics reproduced from the paper's analysis (§5.3):
//!
//! * all accesses use the byte interface (direct access, no host page cache);
//! * metadata updates are protected by an **undo journal**, so every metadata
//!   change is written twice ("PMFS uses data journaling to ensure crash
//!   consistency ... double writes on the metadata");
//! * file data is written in place at the granularity the application used
//!   (no CoW), so small overwrites are cheap but every write pays the MMIO
//!   persistence barrier.

use fskit::FsResult;
use mssd::{Category, Mssd};

use crate::common::{Ctx, BASELINE_DENTRY_SIZE, BASELINE_INODE_SIZE};
use crate::engine::{BaselineFs, MetaOp, PersistencePolicy};

/// Persistence policy of the PMFS-like baseline.
#[derive(Debug, Default)]
pub struct PmfsPolicy;

impl PmfsPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }

    /// Writes an undo-journal record of `len` bytes into the journal region.
    fn journal_entry(&self, ctx: &mut Ctx<'_>, len: u64) -> FsResult<()> {
        let page_size = ctx.layout.page_size as u64;
        let journal_bytes = ctx.layout.journal_pages * page_size;
        let seq = ctx.next_seq();
        let offset = (seq * 64) % journal_bytes.saturating_sub(len).max(1);
        let addr = ctx.layout.journal_start * page_size + offset;
        ctx.device.try_byte_write(addr, &vec![0u8; len as usize], None, Category::Journal)?;
        Ok(())
    }

    /// In-place metadata write of `len` bytes at `addr`.
    fn in_place(&self, ctx: &mut Ctx<'_>, addr: u64, len: u64, cat: Category) -> FsResult<()> {
        ctx.device.try_byte_write(addr, &vec![0u8; len as usize], None, cat)?;
        Ok(())
    }
}

impl PersistencePolicy for PmfsPolicy {
    fn fs_name(&self) -> &'static str {
        "pmfs"
    }

    fn buffered_data(&self) -> bool {
        false
    }

    fn needs_full_page(&self) -> bool {
        false
    }

    fn load_inode(&self, ctx: &mut Ctx<'_>, ino: u64) -> FsResult<()> {
        ctx.device.try_byte_read(
            ctx.layout.inode_addr(ino),
            BASELINE_INODE_SIZE as usize,
            Category::Inode,
        )?;
        Ok(())
    }

    fn load_dir(
        &self,
        ctx: &mut Ctx<'_>,
        _ino: u64,
        meta_block: u64,
        entries: usize,
    ) -> FsResult<()> {
        let page_size = ctx.layout.page_size;
        let len = ((entries.max(1)) * BASELINE_DENTRY_SIZE as usize).min(page_size);
        ctx.device.try_byte_read(meta_block * page_size as u64, len, Category::Dentry)?;
        Ok(())
    }

    fn metadata_op(&self, ctx: &mut Ctx<'_>, op: &MetaOp) -> FsResult<()> {
        let page_size = ctx.layout.page_size as u64;
        match *op {
            MetaOp::Create { parent_meta_block, ino, name_len, .. } => {
                // Undo records for inode + dentry + allocator, then in-place.
                self.journal_entry(ctx, BASELINE_INODE_SIZE + BASELINE_DENTRY_SIZE + 64)?;
                ctx.device.persist_barrier();
                self.in_place(
                    ctx,
                    ctx.layout.inode_addr(ino),
                    BASELINE_INODE_SIZE,
                    Category::Inode,
                )?;
                self.in_place(
                    ctx,
                    parent_meta_block * page_size,
                    BASELINE_DENTRY_SIZE + name_len as u64,
                    Category::Dentry,
                )?;
                self.in_place(ctx, ctx.layout.bitmap_group_addr(ino), 64, Category::Bitmap)?;
                ctx.device.persist_barrier();
            }
            MetaOp::Remove { parent_meta_block, ino, .. } => {
                self.journal_entry(ctx, BASELINE_DENTRY_SIZE + 64 + 64)?;
                ctx.device.persist_barrier();
                self.in_place(ctx, ctx.layout.inode_addr(ino), 64, Category::Inode)?;
                self.in_place(
                    ctx,
                    parent_meta_block * page_size,
                    BASELINE_DENTRY_SIZE,
                    Category::Dentry,
                )?;
                self.in_place(ctx, ctx.layout.bitmap_group_addr(ino), 64, Category::Bitmap)?;
                ctx.device.persist_barrier();
            }
            MetaOp::Rename { from_meta_block, to_meta_block, name_len, .. } => {
                self.journal_entry(ctx, 2 * BASELINE_DENTRY_SIZE)?;
                ctx.device.persist_barrier();
                self.in_place(
                    ctx,
                    from_meta_block * page_size,
                    BASELINE_DENTRY_SIZE,
                    Category::Dentry,
                )?;
                self.in_place(
                    ctx,
                    to_meta_block * page_size,
                    BASELINE_DENTRY_SIZE + name_len as u64,
                    Category::Dentry,
                )?;
                ctx.device.persist_barrier();
            }
            MetaOp::InodeUpdate { ino, .. } => {
                self.journal_entry(ctx, 64)?;
                ctx.device.persist_barrier();
                self.in_place(ctx, ctx.layout.inode_addr(ino), 64, Category::Inode)?;
                ctx.device.persist_barrier();
            }
            MetaOp::Truncate { ino, .. } => {
                self.journal_entry(ctx, 128)?;
                ctx.device.persist_barrier();
                self.in_place(ctx, ctx.layout.inode_addr(ino), 64, Category::Inode)?;
                self.in_place(ctx, ctx.layout.bitmap_group_addr(ino), 64, Category::Bitmap)?;
                ctx.device.persist_barrier();
            }
        }
        Ok(())
    }

    fn write_page(
        &self,
        ctx: &mut Ctx<'_>,
        _ino: u64,
        _file_block: u64,
        old_lba: Option<u64>,
        page: &[u8],
        dirty: &[(usize, usize)],
    ) -> FsResult<u64> {
        // In-place write of exactly the modified ranges.
        let lba = old_lba.unwrap_or_else(|| ctx.alloc.allocate().expect("data area not full"));
        let base = lba * ctx.layout.page_size as u64;
        for (off, len) in dirty {
            ctx.device.try_byte_write(
                base + *off as u64,
                &page[*off..*off + *len],
                None,
                Category::Data,
            )?;
        }
        ctx.device.persist_barrier();
        Ok(lba)
    }

    fn read_range(
        &self,
        ctx: &mut Ctx<'_>,
        lba: u64,
        offset: usize,
        len: usize,
    ) -> FsResult<Vec<u8>> {
        Ok(ctx.device.try_byte_read(
            lba * ctx.layout.page_size as u64 + offset as u64,
            len,
            Category::Data,
        )?)
    }

    fn fsync_epilogue(&self, ctx: &mut Ctx<'_>, _ino: u64, _synced_pages: usize) -> FsResult<()> {
        ctx.device.persist_barrier();
        Ok(())
    }
}

/// The PMFS-like baseline file system.
pub type PmfsLike = BaselineFs<PmfsPolicy>;

impl BaselineFs<PmfsPolicy> {
    /// Formats a PMFS-like file system on the device.
    pub fn format(device: std::sync::Arc<Mssd>) -> std::sync::Arc<Self> {
        Self::with_policy(device, PmfsPolicy::new())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use fskit::{FileSystem, FileSystemExt, OpenFlags};
    use mssd::stats::Direction;
    use mssd::{Category, DramMode, Interface, Mssd, MssdConfig};

    use super::PmfsLike;
    use crate::novalike::NovaLike;

    fn new_fs() -> (Arc<Mssd>, Arc<PmfsLike>) {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let fs = PmfsLike::format(Arc::clone(&dev));
        (dev, fs)
    }

    #[test]
    fn basic_file_operations_roundtrip() {
        let (_dev, fs) = new_fs();
        fs.mkdir("/pm").unwrap();
        fs.write_file("/pm/f", &vec![0x77u8; 7_777]).unwrap();
        assert_eq!(fs.read_file("/pm/f").unwrap(), vec![0x77u8; 7_777]);
        let fd = fs.open("/pm/f", OpenFlags::read_write()).unwrap();
        fs.truncate(fd, 1_000).unwrap();
        assert_eq!(fs.read_file("/pm/f").unwrap().len(), 1_000);
        fs.unlink("/pm/f").unwrap();
        fs.rmdir("/pm").unwrap();
    }

    #[test]
    fn uses_only_the_byte_interface() {
        let (dev, fs) = new_fs();
        fs.write_file("/byte", &vec![1u8; 5_000]).unwrap();
        fs.read_file("/byte").unwrap();
        let t = dev.traffic();
        assert_eq!(t.host_bytes_by_interface(Direction::Write, Interface::Block), 0);
        assert_eq!(t.host_bytes_by_interface(Direction::Read, Interface::Block), 0);
    }

    #[test]
    fn small_overwrites_stay_small_but_metadata_is_double_written() {
        let (dev, fs) = new_fs();
        fs.write_file("/ip", &vec![1u8; 4096]).unwrap();
        let before = dev.traffic();
        let fd = fs.open("/ip", OpenFlags::read_write()).unwrap();
        fs.write(fd, 128, &[2u8; 64]).unwrap();
        let delta = dev.traffic().delta_since(&before);
        let data = delta.host_bytes_by_category(Direction::Write, Category::Data);
        assert!(data <= 256, "in-place write stays near the request size, got {data}");
        assert!(
            delta.host_bytes_by_category(Direction::Write, Category::Journal) > 0,
            "metadata change carries an undo-journal record"
        );
        let back = fs.read_file("/ip").unwrap();
        assert_eq!(&back[128..192], &[2u8; 64][..]);
        assert_eq!(back[192], 1);
    }

    #[test]
    fn journals_more_metadata_than_nova() {
        let run = |fs: &dyn fskit::FileSystem| {
            for i in 0..20 {
                fs.write_file(&format!("/f{i}"), b"payload").unwrap();
            }
        };
        let dev_p = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let pmfs = PmfsLike::format(Arc::clone(&dev_p));
        run(pmfs.as_ref());
        let dev_n = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let nova = NovaLike::format(Arc::clone(&dev_n));
        run(nova.as_ref());
        let pmfs_journal =
            dev_p.traffic().host_bytes_by_category(Direction::Write, Category::Journal);
        let nova_journal =
            dev_n.traffic().host_bytes_by_category(Direction::Write, Category::Journal);
        assert!(pmfs_journal > 0);
        assert_eq!(nova_journal, 0, "NOVA's log-structuring avoids journal double writes");
    }
}
