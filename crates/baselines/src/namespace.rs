//! The in-memory namespace shared by all baseline file systems.
//!
//! The baselines model their on-device metadata formats at the traffic level
//! (see the crate documentation); the authoritative name tree, file sizes and
//! file-block → LBA mappings live here. Data blocks themselves are always
//! stored on the device.

use std::collections::{BTreeMap, HashMap};

use fskit::path as fspath;
use fskit::{DirEntry, FileType, FsError, FsResult, Metadata};

/// Inode number of the root directory.
pub const ROOT_INO: u64 = 1;

/// One file or directory.
#[derive(Debug, Clone)]
pub struct Node {
    /// Inode number.
    pub ino: u64,
    /// File or directory.
    pub file_type: FileType,
    /// Size in bytes (files only).
    pub size: u64,
    /// Link count.
    pub nlink: u32,
    /// Modification time (virtual ns).
    pub mtime_ns: u64,
    /// Children (directories only): name → inode.
    pub children: BTreeMap<String, u64>,
    /// Data mapping (files only): file block index → device LBA.
    pub blocks: BTreeMap<u64, u64>,
}

impl Node {
    fn new(ino: u64, file_type: FileType, now_ns: u64) -> Self {
        Self {
            ino,
            file_type,
            size: 0,
            nlink: if file_type.is_dir() { 2 } else { 1 },
            mtime_ns: now_ns,
            children: BTreeMap::new(),
            blocks: BTreeMap::new(),
        }
    }

    /// Metadata view of this node.
    pub fn metadata(&self) -> Metadata {
        Metadata {
            inode: self.ino,
            size: self.size,
            file_type: self.file_type,
            nlink: self.nlink,
            blocks: self.blocks.len() as u64,
            mtime_ns: self.mtime_ns,
        }
    }
}

/// The in-memory file tree.
#[derive(Debug)]
pub struct Namespace {
    nodes: HashMap<u64, Node>,
    next_ino: u64,
}

impl Default for Namespace {
    fn default() -> Self {
        Self::new()
    }
}

impl Namespace {
    /// Creates a namespace containing only the root directory.
    pub fn new() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert(ROOT_INO, Node::new(ROOT_INO, FileType::Directory, 0));
        Self { nodes, next_ino: ROOT_INO + 1 }
    }

    /// Looks up a node by inode number.
    pub fn node(&self, ino: u64) -> FsResult<&Node> {
        self.nodes.get(&ino).ok_or_else(|| FsError::NotFound(format!("inode {ino}")))
    }

    /// Mutable lookup by inode number.
    pub fn node_mut(&mut self, ino: u64) -> FsResult<&mut Node> {
        self.nodes.get_mut(&ino).ok_or_else(|| FsError::NotFound(format!("inode {ino}")))
    }

    /// Number of live nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Iterates over every live node (used by the crash-consistency
    /// checker).
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// Resolves an absolute path to an inode number.
    pub fn resolve(&self, path: &str) -> FsResult<u64> {
        let comps = fspath::components(path)?;
        let mut cur = ROOT_INO;
        for comp in comps {
            let node = self.node(cur)?;
            if !node.file_type.is_dir() {
                return Err(FsError::NotADirectory(path.to_string()));
            }
            cur = *node.children.get(comp).ok_or_else(|| FsError::NotFound(path.to_string()))?;
        }
        Ok(cur)
    }

    /// Resolves the parent directory of `path`, returning `(parent ino, name)`.
    pub fn resolve_parent<'p>(&self, path: &'p str) -> FsResult<(u64, &'p str)> {
        let (parents, name) = fspath::split_parent(path)?;
        let mut cur = ROOT_INO;
        for comp in parents {
            let node = self.node(cur)?;
            if !node.file_type.is_dir() {
                return Err(FsError::NotADirectory(path.to_string()));
            }
            cur = *node.children.get(comp).ok_or_else(|| FsError::NotFound(path.to_string()))?;
        }
        if !self.node(cur)?.file_type.is_dir() {
            return Err(FsError::NotADirectory(path.to_string()));
        }
        Ok((cur, name))
    }

    /// Creates a new file or directory under `parent`. Returns the new inode.
    pub fn create(
        &mut self,
        parent: u64,
        name: &str,
        file_type: FileType,
        now_ns: u64,
    ) -> FsResult<u64> {
        if name.is_empty() || name.len() > 255 {
            return Err(FsError::InvalidArgument(format!("bad name {name:?}")));
        }
        let parent_is_dir = self.node(parent)?.file_type.is_dir();
        if !parent_is_dir {
            return Err(FsError::NotADirectory(name.to_string()));
        }
        if self.node(parent)?.children.contains_key(name) {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        let ino = self.next_ino;
        self.next_ino += 1;
        self.nodes.insert(ino, Node::new(ino, file_type, now_ns));
        let parent_node = self.node_mut(parent)?;
        parent_node.children.insert(name.to_string(), ino);
        parent_node.mtime_ns = now_ns;
        if file_type.is_dir() {
            parent_node.nlink += 1;
        }
        Ok(ino)
    }

    /// Removes the entry `name` from `parent`. For directories the target must
    /// be empty. Returns the removed node (so the caller can free its blocks).
    pub fn remove(&mut self, parent: u64, name: &str, dir: bool, now_ns: u64) -> FsResult<Node> {
        let ino = *self
            .node(parent)?
            .children
            .get(name)
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let target = self.node(ino)?;
        if dir {
            if !target.file_type.is_dir() {
                return Err(FsError::NotADirectory(name.to_string()));
            }
            if !target.children.is_empty() {
                return Err(FsError::DirectoryNotEmpty(name.to_string()));
            }
        } else if target.file_type.is_dir() {
            return Err(FsError::IsADirectory(name.to_string()));
        }
        let parent_node = self.node_mut(parent)?;
        parent_node.children.remove(name);
        parent_node.mtime_ns = now_ns;
        if dir {
            parent_node.nlink = parent_node.nlink.saturating_sub(1);
        }
        Ok(self.nodes.remove(&ino).expect("checked above"))
    }

    /// Renames `from_name` in `from_parent` to `to_name` in `to_parent`.
    /// The destination must not exist.
    pub fn rename(
        &mut self,
        from_parent: u64,
        from_name: &str,
        to_parent: u64,
        to_name: &str,
        now_ns: u64,
    ) -> FsResult<u64> {
        if self.node(to_parent)?.children.contains_key(to_name) {
            return Err(FsError::AlreadyExists(to_name.to_string()));
        }
        let ino = *self
            .node(from_parent)?
            .children
            .get(from_name)
            .ok_or_else(|| FsError::NotFound(from_name.to_string()))?;
        let is_dir = self.node(ino)?.file_type.is_dir();
        {
            let from_node = self.node_mut(from_parent)?;
            from_node.children.remove(from_name);
            from_node.mtime_ns = now_ns;
            if is_dir {
                from_node.nlink = from_node.nlink.saturating_sub(1);
            }
        }
        {
            let to_node = self.node_mut(to_parent)?;
            to_node.children.insert(to_name.to_string(), ino);
            to_node.mtime_ns = now_ns;
            if is_dir {
                to_node.nlink += 1;
            }
        }
        Ok(ino)
    }

    /// Directory listing.
    pub fn readdir(&self, ino: u64) -> FsResult<Vec<DirEntry>> {
        let node = self.node(ino)?;
        if !node.file_type.is_dir() {
            return Err(FsError::NotADirectory(format!("inode {ino}")));
        }
        node.children
            .iter()
            .map(|(name, child)| {
                let c = self.node(*child)?;
                Ok(DirEntry { name: name.clone(), inode: *child, file_type: c.file_type })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_resolve_remove() {
        let mut ns = Namespace::new();
        assert!(ns.is_empty());
        let dir = ns.create(ROOT_INO, "dir", FileType::Directory, 1).unwrap();
        let file = ns.create(dir, "f", FileType::File, 2).unwrap();
        assert_eq!(ns.resolve("/dir").unwrap(), dir);
        assert_eq!(ns.resolve("/dir/f").unwrap(), file);
        assert_eq!(ns.resolve("/").unwrap(), ROOT_INO);
        assert!(matches!(ns.resolve("/missing"), Err(FsError::NotFound(_))));
        assert!(matches!(ns.remove(ROOT_INO, "dir", true, 3), Err(FsError::DirectoryNotEmpty(_))));
        ns.remove(dir, "f", false, 4).unwrap();
        ns.remove(ROOT_INO, "dir", true, 5).unwrap();
        assert!(ns.is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ns = Namespace::new();
        ns.create(ROOT_INO, "x", FileType::File, 0).unwrap();
        assert!(matches!(
            ns.create(ROOT_INO, "x", FileType::Directory, 0),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn unlink_of_directory_and_rmdir_of_file_fail() {
        let mut ns = Namespace::new();
        ns.create(ROOT_INO, "d", FileType::Directory, 0).unwrap();
        ns.create(ROOT_INO, "f", FileType::File, 0).unwrap();
        assert!(matches!(ns.remove(ROOT_INO, "d", false, 1), Err(FsError::IsADirectory(_))));
        assert!(matches!(ns.remove(ROOT_INO, "f", true, 1), Err(FsError::NotADirectory(_))));
    }

    #[test]
    fn rename_moves_and_preserves_inode() {
        let mut ns = Namespace::new();
        let a = ns.create(ROOT_INO, "a", FileType::Directory, 0).unwrap();
        let b = ns.create(ROOT_INO, "b", FileType::Directory, 0).unwrap();
        let f = ns.create(a, "f", FileType::File, 0).unwrap();
        let moved = ns.rename(a, "f", b, "g", 1).unwrap();
        assert_eq!(moved, f);
        assert!(ns.resolve("/a/f").is_err());
        assert_eq!(ns.resolve("/b/g").unwrap(), f);
        // nlink bookkeeping for directory moves.
        let c = ns.create(a, "sub", FileType::Directory, 2).unwrap();
        let a_links = ns.node(a).unwrap().nlink;
        ns.rename(a, "sub", b, "sub", 3).unwrap();
        assert_eq!(ns.node(a).unwrap().nlink, a_links - 1);
        assert_eq!(ns.resolve("/b/sub").unwrap(), c);
    }

    #[test]
    fn readdir_lists_children_sorted() {
        let mut ns = Namespace::new();
        ns.create(ROOT_INO, "z", FileType::File, 0).unwrap();
        ns.create(ROOT_INO, "a", FileType::Directory, 0).unwrap();
        let entries = ns.readdir(ROOT_INO).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "a");
        assert_eq!(entries[1].name, "z");
        assert!(ns.readdir(entries[1].inode).is_err());
    }

    #[test]
    fn metadata_reflects_node_state() {
        let mut ns = Namespace::new();
        let f = ns.create(ROOT_INO, "f", FileType::File, 7).unwrap();
        let node = ns.node_mut(f).unwrap();
        node.size = 4096;
        node.blocks.insert(0, 1234);
        let meta = ns.node(f).unwrap().metadata();
        assert_eq!(meta.size, 4096);
        assert_eq!(meta.blocks, 1);
        assert_eq!(meta.mtime_ns, 7);
        assert!(meta.is_file());
    }
}
