//! The F2FS-like baseline: block interface only, log-structured (out-of-place)
//! updates.
//!
//! Characteristics reproduced from the paper's analysis (§3):
//!
//! * data and metadata are written out of place — every writeback allocates a
//!   new block, so there is no journal double write (lower write amplification
//!   than Ext4, Table 2);
//! * frequent data-pointer (NAT) updates: "F2FS performs out-of-place updates
//!   with frequent data pointer updates ... up to 26 % of the total write
//!   traffic and 16 % of the read traffic";
//! * node (inode) and dentry updates still dirty whole 4 KB blocks.

use fskit::FsResult;
use parking_lot::Mutex;

use mssd::{Category, Mssd};

use crate::common::Ctx;
use crate::engine::{BaselineFs, MetaOp, PersistencePolicy};

/// Number of pending metadata block updates that triggers a background
/// writeback (mirrors F2FS's node-page writeback batching).
const NODE_BATCH_BLOCKS: usize = 32;

/// Persistence policy of the F2FS-like baseline.
#[derive(Debug, Default)]
pub struct F2fsPolicy {
    /// Pending out-of-place metadata block writes (deduplicated by key).
    pending: Mutex<Vec<(u64, Category)>>,
}

impl F2fsPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_pending(&self, ctx: &mut Ctx<'_>, key: u64, category: Category) -> FsResult<()> {
        let mut pending = self.pending.lock();
        if pending.iter().any(|(k, c)| *k == key && *c == category) {
            return Ok(());
        }
        pending.push((key, category));
        if pending.len() >= NODE_BATCH_BLOCKS {
            let batch = std::mem::take(&mut *pending);
            drop(pending);
            self.write_batch(ctx, batch)?;
        }
        Ok(())
    }

    fn flush_pending(&self, ctx: &mut Ctx<'_>) -> FsResult<()> {
        let batch = std::mem::take(&mut *self.pending.lock());
        self.write_batch(ctx, batch)
    }

    /// Writes a batch of metadata blocks out of place, plus one NAT block
    /// recording the new locations.
    fn write_batch(&self, ctx: &mut Ctx<'_>, batch: Vec<(u64, Category)>) -> FsResult<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let page = vec![0u8; ctx.layout.page_size];
        for (_, category) in &batch {
            let lba = ctx.alloc.allocate().expect("log area not full");
            ctx.device.try_block_write(lba, &page, *category)?;
            // The block only exists to model traffic; release it immediately
            // so sustained metadata churn does not exhaust the data area.
            ctx.alloc.free(lba);
        }
        // Node address table update for the relocated blocks.
        ctx.device.try_block_write(ctx.layout.bitmap_start, &page, Category::DataPointer)?;
        Ok(())
    }
}

impl PersistencePolicy for F2fsPolicy {
    fn fs_name(&self) -> &'static str {
        "f2fs"
    }

    fn load_inode(&self, ctx: &mut Ctx<'_>, ino: u64) -> FsResult<()> {
        ctx.device.try_block_read(ctx.layout.inode_page(ino), 1, Category::Inode)?;
        Ok(())
    }

    fn load_dir(
        &self,
        ctx: &mut Ctx<'_>,
        _ino: u64,
        meta_block: u64,
        _entries: usize,
    ) -> FsResult<()> {
        ctx.device.try_block_read(meta_block, 1, Category::Dentry)?;
        // NAT lookup to find the node block of the directory.
        ctx.device.try_block_read(ctx.layout.bitmap_start, 1, Category::DataPointer)?;
        Ok(())
    }

    fn metadata_op(&self, ctx: &mut Ctx<'_>, op: &MetaOp) -> FsResult<()> {
        match *op {
            MetaOp::Create { parent_meta_block, ino, .. }
            | MetaOp::Remove { parent_meta_block, ino, .. } => {
                self.add_pending(ctx, ino, Category::Inode)?;
                self.add_pending(ctx, parent_meta_block, Category::Dentry)?;
                // Segment information table update.
                self.add_pending(ctx, ino, Category::Bitmap)?;
            }
            MetaOp::Rename { from_meta_block, to_meta_block, ino, .. } => {
                self.add_pending(ctx, from_meta_block, Category::Dentry)?;
                self.add_pending(ctx, to_meta_block, Category::Dentry)?;
                self.add_pending(ctx, ino, Category::Inode)?;
            }
            MetaOp::InodeUpdate { ino, .. } => {
                self.add_pending(ctx, ino, Category::Inode)?;
            }
            MetaOp::Truncate { ino, .. } => {
                self.add_pending(ctx, ino, Category::Inode)?;
                self.add_pending(ctx, ino, Category::Bitmap)?;
            }
        }
        Ok(())
    }

    fn write_page(
        &self,
        ctx: &mut Ctx<'_>,
        ino: u64,
        _file_block: u64,
        _old_lba: Option<u64>,
        page: &[u8],
        _dirty: &[(usize, usize)],
    ) -> FsResult<u64> {
        // Out-of-place data write: always a fresh block; the old one is freed
        // by the engine. The relocation dirties the file's data pointers.
        let lba = ctx.alloc.allocate().expect("log area not full");
        ctx.device.try_block_write(lba, page, Category::Data)?;
        self.add_pending(ctx, ino, Category::DataPointer)?;
        Ok(lba)
    }

    fn read_range(
        &self,
        ctx: &mut Ctx<'_>,
        lba: u64,
        offset: usize,
        len: usize,
    ) -> FsResult<Vec<u8>> {
        let page = ctx.device.try_block_read(lba, 1, Category::Data)?;
        Ok(page[offset..offset + len].to_vec())
    }

    fn fsync_epilogue(&self, ctx: &mut Ctx<'_>, _ino: u64, _synced_pages: usize) -> FsResult<()> {
        self.flush_pending(ctx)?;
        ctx.device.try_flush()?;
        Ok(())
    }

    fn sync_epilogue(&self, ctx: &mut Ctx<'_>) -> FsResult<()> {
        self.flush_pending(ctx)?;
        ctx.device.try_flush()?;
        Ok(())
    }
}

/// The F2FS-like baseline file system.
pub type F2fsLike = BaselineFs<F2fsPolicy>;

impl BaselineFs<F2fsPolicy> {
    /// Formats an F2FS-like file system on the device.
    pub fn format(device: std::sync::Arc<Mssd>) -> std::sync::Arc<Self> {
        Self::with_policy(device, F2fsPolicy::new())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use fskit::{FileSystem, FileSystemExt, OpenFlags};
    use mssd::stats::Direction;
    use mssd::{Category, DramMode, Interface, Mssd, MssdConfig};

    use super::F2fsLike;
    use crate::ext4like::Ext4Like;

    fn new_fs() -> (Arc<Mssd>, Arc<F2fsLike>) {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let fs = F2fsLike::format(Arc::clone(&dev));
        (dev, fs)
    }

    #[test]
    fn basic_file_operations_roundtrip() {
        let (_dev, fs) = new_fs();
        fs.mkdir("/logs").unwrap();
        fs.write_file("/logs/a", &vec![0xC3u8; 12_345]).unwrap();
        assert_eq!(fs.read_file("/logs/a").unwrap(), vec![0xC3u8; 12_345]);
        let fd = fs.open("/logs/a", OpenFlags::read_write()).unwrap();
        fs.write(fd, 4_000, &[1u8; 200]).unwrap();
        fs.fsync(fd).unwrap();
        let back = fs.read_file("/logs/a").unwrap();
        assert_eq!(&back[4_000..4_200], &[1u8; 200][..]);
        fs.unlink("/logs/a").unwrap();
        fs.rmdir("/logs").unwrap();
    }

    #[test]
    fn uses_only_the_block_interface() {
        let (dev, fs) = new_fs();
        fs.write_file("/x", &vec![1u8; 8_192]).unwrap();
        fs.read_file("/x").unwrap();
        let t = dev.traffic();
        assert_eq!(t.host_bytes_by_interface(Direction::Write, Interface::Byte), 0);
        assert_eq!(t.host_bytes_by_interface(Direction::Read, Interface::Byte), 0);
    }

    #[test]
    fn no_journal_traffic_but_data_pointer_updates() {
        let (dev, fs) = new_fs();
        fs.write_file("/np", &vec![2u8; 8_192]).unwrap();
        fs.sync().unwrap();
        let t = dev.traffic();
        assert_eq!(
            t.host_bytes_by_category(Direction::Write, Category::Journal),
            0,
            "F2FS does not double-write through a journal"
        );
        assert!(
            t.host_bytes_by_category(Direction::Write, Category::DataPointer) > 0,
            "out-of-place updates dirty the NAT / data pointers"
        );
    }

    #[test]
    fn writes_less_metadata_than_ext4_for_the_same_ops() {
        let run = |fs: &dyn fskit::FileSystem| {
            for i in 0..16 {
                let fd = fs.create(&format!("/f{i}")).unwrap();
                fs.write(fd, 0, &vec![1u8; 4096]).unwrap();
                fs.fsync(fd).unwrap();
                fs.close(fd).unwrap();
            }
        };
        let dev_e = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let ext4 = Ext4Like::format(Arc::clone(&dev_e));
        run(ext4.as_ref());
        let dev_f = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let f2fs = F2fsLike::format(Arc::clone(&dev_f));
        run(f2fs.as_ref());
        let ext4_meta = dev_e.traffic().host_metadata_bytes(Direction::Write);
        let f2fs_meta = dev_f.traffic().host_metadata_bytes(Direction::Write);
        assert!(
            f2fs_meta < ext4_meta,
            "F2FS ({f2fs_meta} B) should write less metadata than Ext4 ({ext4_meta} B)"
        );
    }

    #[test]
    fn overwrites_relocate_data_blocks() {
        let (dev, fs) = new_fs();
        fs.write_file("/reloc", &vec![1u8; 4096]).unwrap();
        let writes_before = dev.traffic().host_bytes_by_category(Direction::Write, Category::Data);
        let fd = fs.open("/reloc", OpenFlags::read_write()).unwrap();
        fs.write(fd, 0, &vec![2u8; 4096]).unwrap();
        fs.fsync(fd).unwrap();
        let writes_after = dev.traffic().host_bytes_by_category(Direction::Write, Category::Data);
        assert_eq!(writes_after - writes_before, 4096);
        assert_eq!(fs.read_file("/reloc").unwrap(), vec![2u8; 4096]);
    }
}
