//! Crash sweep over a recorded op trace: `ReplayStress` re-drives the
//! CI-churn corpus trace against ByteFS and must survive power cuts at any
//! enumerated step — the device-level half of the replay determinism story
//! (the workload-level half lives in the `workloads` replay tests).

use crashkit::{Enumerator, ReplayStress};

#[test]
fn replay_trace_has_a_real_crash_point_space() {
    let scenario = ReplayStress::quick();
    assert!(
        scenario.trace.records.len() > 100,
        "quick trace too small to stress anything: {} records",
        scenario.trace.records.len()
    );
    let e = Enumerator::new(scenario);
    let total = e.count_steps(1);
    assert!(total > 50, "only {total} durability steps in the replay run");
    // The op stream is fixed by the trace, so every seed sizes the same
    // space — the seed only moves the cut points.
    assert_eq!(total, e.count_steps(2));
}

#[test]
fn replay_cuts_recover_cleanly_and_deterministically() {
    let e = Enumerator::new(ReplayStress::quick());
    let seed = 0x5EED;
    let total = e.count_steps(seed);
    for cut in [1, total / 4, total / 2, (total * 3) / 4, total] {
        let a = e.run_cut(seed, cut);
        assert!(a.clean(), "{}", a.repro_line());
        let b = e.run_cut(seed, cut);
        assert_eq!(a.image_digest, b.image_digest, "cut {cut}: crash image diverged");
        assert_eq!(a.recovered_digest, b.recovered_digest, "cut {cut}: recovery diverged");
    }
}
