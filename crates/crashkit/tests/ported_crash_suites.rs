//! The crash tests that used to live scattered across the repo — the
//! workspace-level `crash_and_claims` crash cases, the sealed-region crash
//! case from `mssd/tests/cleaner_stress.rs` and the concurrent
//! crash-recovery case from `bytefs/tests/concurrency.rs` — ported onto
//! crashkit's power-cycle + checker machinery so there is exactly one
//! cut-power/remount implementation in the tree. Unlike the old
//! `dev.crash()` helper, `crashkit::power_cycle` does not assume the
//! capacitor flush completed: the write buffer crosses the power cycle
//! as-is and recovery handles it.

use std::sync::Arc;

use bytefs::{ByteFs, ByteFsConfig};
use crashkit::power_cycle;
use fskit::check::CrashConsistent;
use fskit::{FileSystem, FileSystemExt, OpenFlags};
use kvstore::{Db, DbOptions};
use mssd::log::PARTITION_BYTES;
use mssd::{Category, DramMode, Mssd, MssdConfig, TxId};

fn cfg_64m() -> MssdConfig {
    MssdConfig::default().with_capacity(64 << 20)
}

/// Ported from `tests/crash_and_claims.rs`: committed files survive
/// repeated power cycles; unsynced buffered writes may vanish. Every
/// remount now also passes the full fsck.
#[test]
fn committed_files_survive_repeated_crashes() {
    let mut device = Mssd::new(cfg_64m(), DramMode::WriteLog);
    let mut expected: Vec<(String, usize)> = Vec::new();
    for round in 0..3u32 {
        let fs = if round == 0 {
            ByteFs::format(Arc::clone(&device), ByteFsConfig::full()).unwrap()
        } else {
            ByteFs::mount(Arc::clone(&device), ByteFsConfig::full()).unwrap()
        };
        // Everything from previous rounds must still be there.
        for (path, len) in &expected {
            let data = fs.read_file(path).unwrap();
            assert_eq!(data.len(), *len, "{path} after {round} crashes");
        }
        let dir = format!("/round{round}");
        fs.mkdir(&dir).unwrap();
        for i in 0..20 {
            let path = format!("{dir}/f{i}");
            let len = 100 + (i * 37) % 5000;
            fs.write_file(&path, &vec![round as u8; len]).unwrap();
            expected.push((path, len));
        }
        // Unsynced buffered write that may be lost.
        let fd = fs.open(&format!("{dir}/f0"), OpenFlags::read_write()).unwrap();
        fs.write(fd, 0, &[0xFF; 16]).unwrap();
        assert!(fs.fsck().is_empty(), "round {round}: volume dirtied in memory");
        drop(fs);
        device = power_cycle(&device, cfg_64m());
        device.recover();
    }
    let fs = ByteFs::mount(device, ByteFsConfig::full()).unwrap();
    for (path, len) in &expected {
        assert_eq!(fs.read_file(path).unwrap().len(), *len);
    }
    assert!(fs.fsck().is_empty());
}

/// Ported from `tests/crash_and_claims.rs`: a cleanly closed KV store
/// survives a power cycle, and the reopened database passes the WAL-tail
/// checker.
#[test]
fn kv_store_data_survives_a_crash_on_bytefs() {
    let device = Mssd::new(cfg_64m(), DramMode::WriteLog);
    let fs = ByteFs::format(Arc::clone(&device), ByteFsConfig::full()).unwrap();
    {
        let db = Db::open(fs.clone(), "/db", DbOptions::small_test()).unwrap();
        for i in 0..300u32 {
            db.put(format!("key{i:05}").as_bytes(), &[i as u8; 200]).unwrap();
        }
        db.flush().unwrap();
        for i in 300..320u32 {
            db.put(format!("key{i:05}").as_bytes(), &[i as u8; 200]).unwrap();
        }
        // WAL group commit: force the tail to be durable before the crash.
        db.close().unwrap();
    }
    drop(fs);
    let device = power_cycle(&device, cfg_64m());
    device.recover();

    let fs = ByteFs::mount(device, ByteFsConfig::full()).unwrap();
    let db = Db::open(fs.clone(), "/db", DbOptions::small_test()).unwrap();
    for i in (0..320u32).step_by(13) {
        assert_eq!(
            db.get(format!("key{i:05}").as_bytes()).unwrap(),
            Some(vec![i as u8; 200]),
            "key{i}"
        );
    }
    assert!(db.check_invariants().is_empty());
    assert!(fs.fsck().is_empty());
}

/// Ported from `mssd/tests/cleaner_stress.rs`: concurrent writers leave
/// committed and uncommitted entries behind, every shard's region is sealed
/// as if the cleaner had flipped them but not yet drained, and the power
/// dies. Recovery on the restored device must flush exactly the committed
/// entries.
#[test]
fn crash_recovery_with_sealed_undrained_regions() {
    const THREADS: usize = 4;
    let mut cfg = MssdConfig::small_test();
    cfg.capacity_bytes = 64 << 20; // one 16 MB partition (= log shard) per thread
    cfg.dram_region_bytes = 128 << 10;
    let dev = Mssd::new(cfg.clone(), DramMode::WriteLog);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let dev = Arc::clone(&dev);
            std::thread::spawn(move || {
                let base = t as u64 * PARTITION_BYTES;
                let committed_tx = TxId(((t as u32) << 8) | 1);
                let lost_tx = TxId(((t as u32) << 8) | 2);
                dev.byte_write(base, &[0xA0 + t as u8; 64], Some(committed_tx), Category::Data);
                dev.byte_write(base + 4096, &[0xB0 + t as u8; 64], Some(lost_tx), Category::Data);
                dev.commit(committed_tx);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    dev.quiesce_cleaning();
    // Flip every shard's active region into the sealed slot, then crash
    // before anything drains: recovery must handle sealed regions.
    dev.seal_log_regions();
    let entries_before = dev.snapshot().log_entries;
    assert!(entries_before >= 2 * THREADS, "both writes of each thread still logged");

    let image = dev.crash_image();
    assert!(
        image.log_entries.iter().all(|e| e.sealed),
        "every entry crossed the crash inside a sealed region"
    );
    let dev = Mssd::from_crash_image(cfg, DramMode::WriteLog, &image);
    let report = dev.recover();
    assert_eq!(report.scanned_entries, entries_before);
    assert_eq!(report.discarded_entries, THREADS, "one uncommitted entry per thread");
    assert_eq!(dev.snapshot().log_entries, 0);
    for t in 0..THREADS as u64 {
        let base = t * PARTITION_BYTES;
        assert_eq!(
            dev.byte_read(base, 64, Category::Data),
            vec![0xA0 + t as u8; 64],
            "committed write of thread {t} survives"
        );
        assert_eq!(
            dev.byte_read(base + 4096, 64, Category::Data),
            vec![0u8; 64],
            "uncommitted write of thread {t} is discarded"
        );
    }
    assert!(dev.check_consistency().is_empty());
}

/// Ported from `bytefs/tests/concurrency.rs`: every thread fsyncs one file
/// and renames another (committed firmware transactions), leaves a third
/// dirty in the host page cache, then the machine dies. After the power
/// cycle the committed state must be intact, the uncommitted data absent,
/// and the volume fsck-clean.
#[test]
fn concurrent_crash_recovery_preserves_committed_operations() {
    const THREADS: usize = 8;
    let small = MssdConfig::small_test();
    let dev = Mssd::new(small.clone(), DramMode::WriteLog);
    let fs = ByteFs::format(Arc::clone(&dev), ByteFsConfig::full()).unwrap();
    for t in 0..THREADS {
        fs.mkdir(&format!("/t{t}")).unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let fs = Arc::clone(&fs);
            s.spawn(move || {
                let dir = format!("/t{t}");
                // Durable: written and fsynced.
                fs.write_file(&format!("{dir}/durable"), &vec![0xA0 + t as u8; 5_000]).unwrap();
                // Durable metadata: created+fsynced, then renamed.
                fs.write_file(&format!("{dir}/moved.tmp"), &vec![0xB0 + t as u8; 600]).unwrap();
                fs.rename(&format!("{dir}/moved.tmp"), &format!("{dir}/moved")).unwrap();
                // Volatile: created (committed) but its data never fsynced.
                let fd = fs.open(&format!("{dir}/volatile"), OpenFlags::create_rw()).unwrap();
                fs.write(fd, 0, &[0xFFu8; 2_000]).unwrap();
                // No fsync: the 2 000 bytes stay dirty in the host page
                // cache and die with the host.
            });
        }
    });
    drop(fs);
    let dev = power_cycle(&dev, small);
    dev.recover();

    let fs2 = ByteFs::mount(Arc::clone(&dev), ByteFsConfig::full()).unwrap();
    for t in 0..THREADS {
        let dir = format!("/t{t}");
        assert_eq!(
            fs2.read_file(&format!("{dir}/durable")).unwrap(),
            vec![0xA0 + t as u8; 5_000],
            "thread {t}: fsynced file survives the crash"
        );
        assert_eq!(
            fs2.read_file(&format!("{dir}/moved")).unwrap(),
            vec![0xB0 + t as u8; 600],
            "thread {t}: committed rename survives the crash"
        );
        assert!(!fs2.exists(&format!("{dir}/moved.tmp")), "thread {t}: old name is gone");
        let meta = fs2.stat(&format!("{dir}/volatile")).unwrap();
        assert_eq!(meta.size, 0, "thread {t}: unsynced page-cache data is lost");
    }
    assert!(fs2.fsck().is_empty(), "recovered volume must be fsck-clean");
}
