//! Property sweep: for randomized seeds and cut fractions, an enumerated
//! crash point must recover to the **same invariant-clean state** whether
//! the recovery-side firmware runs its background cleaner or not, and the
//! crash-point counting itself must be deterministic (same seed → same
//! space → same cut → same image).

use proptest::prelude::*;

use crashkit::{DeviceStress, Enumerator, FsStress};

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn device_crash_points_recover_identically_with_cleaning_on_and_off(
        seed in any::<u64>(),
        frac in 0u64..1000,
    ) {
        let off = Enumerator::new(DeviceStress { ops: 120 });
        let mut on = Enumerator::new(DeviceStress { ops: 120 });
        on.recover_cleaning = true;
        let total = off.count_steps(seed);
        prop_assert!(total > 0);
        prop_assert_eq!(total, on.count_steps(seed), "counting must be deterministic");
        let cut = 1 + frac % total;
        let a = off.run_cut(seed, cut);
        let b = on.run_cut(seed, cut);
        prop_assert_eq!(a.image_digest, b.image_digest, "same seed+cut, same crash image");
        prop_assert!(a.violations.is_empty(), "cleaning-off: {}", a.repro_line());
        prop_assert!(b.violations.is_empty(), "cleaning-on: {}", b.repro_line());
        prop_assert_eq!(
            a.recovered_digest, b.recovered_digest,
            "recovery must converge to one state regardless of the cleaning mode"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn fs_crash_points_recover_identically_with_cleaning_on_and_off(
        seed in any::<u64>(),
        frac in 0u64..1000,
    ) {
        let off = Enumerator::new(FsStress { ops: 24 });
        let mut on = Enumerator::new(FsStress { ops: 24 });
        on.recover_cleaning = true;
        let total = off.count_steps(seed);
        prop_assert!(total > 0);
        let cut = 1 + frac % total;
        let a = off.run_cut(seed, cut);
        let b = on.run_cut(seed, cut);
        prop_assert_eq!(a.image_digest, b.image_digest);
        prop_assert!(a.violations.is_empty(), "cleaning-off: {}", a.repro_line());
        prop_assert!(b.violations.is_empty(), "cleaning-on: {}", b.repro_line());
        prop_assert_eq!(a.recovered_digest, b.recovered_digest);
    }
}
