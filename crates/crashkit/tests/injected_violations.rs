//! Negative controls: crashkit must *catch* durability violations, and a
//! caught violation must be reproducible from its printed seed + cut alone.
//! The violations are injected by mutating the captured crash image before
//! restoration — modelling hardware that breaks the battery-backed-DRAM
//! assumptions the stack is built on.

use crashkit::{DeviceStress, Enumerator};
use mssd::CrashImage;

/// A failed capacitor flush: the FTL write buffer dies with the power.
fn drop_write_buffer(image: &mut CrashImage, _seed: u64) {
    image.buffered_pages.clear();
}

/// Torn TxLog tail: the most recent commit record is lost.
fn drop_last_commit(image: &mut CrashImage, _seed: u64) {
    image.txlog.pop();
}

#[test]
fn a_dropped_write_buffer_is_caught_and_reproducible() {
    let mut e = Enumerator::new(DeviceStress::quick());
    e.mutator = Some(drop_write_buffer);
    let seed = 0x00BA_DCAB;
    let report = e.exhaustive(seed, 150);
    let failures: Vec<_> = report.failures().collect();
    assert!(
        !failures.is_empty(),
        "dropping the battery-backed write buffer must violate block-write durability"
    );
    // Reproduction from the printed line alone: same seed, same cut, same
    // scenario => identical image and identical violations.
    let first = &failures[0];
    let again = e.reproduce(first.seed, first.cut);
    assert_eq!(again.image_digest, first.image_digest, "{}", first.repro_line());
    assert_eq!(again.violations, first.violations, "{}", first.repro_line());
}

#[test]
fn a_torn_commit_record_is_caught_and_reproducible() {
    let mut e = Enumerator::new(DeviceStress::quick());
    e.mutator = Some(drop_last_commit);
    let seed = 0x7EA2;
    let report = e.exhaustive(seed, 150);
    let failures: Vec<_> = report.failures().collect();
    assert!(!failures.is_empty(), "losing a commit record must surface as lost committed writes");
    for f in failures.iter().take(3) {
        let again = e.reproduce(f.seed, f.cut);
        assert_eq!(again.violations, f.violations, "{}", f.repro_line());
    }
    // Sanity: without the mutator the same sweep is clean.
    e.mutator = None;
    e.exhaustive(seed, 60).assert_clean();
}
