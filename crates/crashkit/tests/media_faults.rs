//! Acceptance tests of the media-error RAS layer under crashkit.
//!
//! The `device-media` mode runs the [`MediaStress`] workload to completion
//! (no power cut) against a device whose [`mssd::MediaFaultPlan`] injects
//! transient read errors, program failures and erase failures, then power
//! cycles it cleanly. The sweep here must observe well over 200 injected
//! faults across all three kinds — with background cleaning both off and on
//! — and complete with zero consistency violations, zero panics, every
//! uncorrectable read surfaced as a typed error, and the bad-block table
//! intact across the power cycle (the oracle checks that last one).
//!
//! Media injection is seeded: the same media seed over the same op stream
//! must inject the same faults, yield the same RAS counters and converge to
//! the same post-recovery digest. The determinism test pins that, because it
//! is what makes a media-failure report reproducible.

use crashkit::{Enumerator, MediaStress, Scenario};
use mssd::{MediaOpKind, Mssd};

/// Per-kind injected-fault counts of one run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Injected {
    read: u64,
    program: u64,
    erase: u64,
}

impl Injected {
    fn total(&self) -> u64 {
        self.read + self.program + self.erase
    }
}

/// RAS counter snapshot relevant to determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RasCounts {
    corrected: u64,
    uncorrectable: u64,
    retries: u64,
    remapped: u64,
    retired: u64,
}

/// Runs one `device-media` pass directly (outside the [`Enumerator`], which
/// hides the device) so the injected-fault counters are observable, then
/// performs the same clean power cycle + oracle verification the enumerator
/// does. Returns everything the acceptance and determinism tests assert on.
fn run_media(
    scenario: &MediaStress,
    cleaning: bool,
    seed: u64,
) -> (Injected, RasCounts, u64, usize) {
    let mut cfg = scenario.device_config();
    cfg.background_cleaning = cleaning;
    let dev = Mssd::new(cfg, scenario.dram_mode());
    let oracle = scenario.run(&dev, seed);
    dev.quiesce_cleaning();
    let injected = Injected {
        read: dev.config().media.injected_of(MediaOpKind::Read),
        program: dev.config().media.injected_of(MediaOpKind::Program),
        erase: dev.config().media.injected_of(MediaOpKind::Erase),
    };
    let snap = dev.snapshot();
    let ras = RasCounts {
        corrected: snap.traffic.ras_corrected_reads,
        uncorrectable: snap.traffic.ras_uncorrectable_reads,
        retries: snap.traffic.ras_read_retries,
        remapped: snap.traffic.ras_remapped_pages,
        retired: snap.traffic.ras_retired_blocks,
    };
    let image = dev.crash_image();
    drop(dev);
    let mut rcfg = scenario.device_config();
    rcfg.background_cleaning = cleaning;
    let restored = Mssd::from_crash_image(rcfg, scenario.dram_mode(), &image);
    let violations = oracle.verify(&restored);
    for v in &violations {
        eprintln!("media violation (cleaning={cleaning}, seed={seed:#x}): {v}");
    }
    restored.quiesce_cleaning();
    let digest = restored.crash_image().digest();
    (injected, ras, digest, violations.len())
}

#[test]
fn media_sweep_injects_hundreds_of_faults_with_zero_violations() {
    let scenario = MediaStress::quick();
    let mut grand = Injected::default();
    for cleaning in [false, true] {
        let mut sub = Injected::default();
        for seed in 1u64..=6 {
            let seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let (injected, _ras, _digest, violations) = run_media(&scenario, cleaning, seed);
            assert_eq!(violations, 0, "cleaning={cleaning} seed={seed:#x} found violations");
            sub.read += injected.read;
            sub.program += injected.program;
            sub.erase += injected.erase;
        }
        assert!(sub.total() > 0, "cleaning={cleaning}: the armed media plan injected nothing");
        grand.read += sub.read;
        grand.program += sub.program;
        grand.erase += sub.erase;
    }
    assert!(
        grand.total() >= 200,
        "acceptance floor: expected >= 200 injected media faults, got {grand:?}"
    );
    assert!(grand.read > 0, "no transient read errors injected: {grand:?}");
    assert!(grand.program > 0, "no program failures injected: {grand:?}");
    assert!(grand.erase > 0, "no erase failures injected: {grand:?}");
}

#[test]
fn media_faults_are_deterministic_per_seed() {
    // Same media seed + same op stream -> same injected faults, same RAS
    // verdicts (corrected / UECC / remap / retire) and the same
    // post-power-cycle digest. Cleaning must stay off: the background
    // cleaner's racing flash ops shift the per-kind fault ordinals.
    let scenario = MediaStress::quick();
    for seed in [0x5EED_u64, 0xFEED_FACE] {
        let (ia, ra, da, va) = run_media(&scenario, false, seed);
        let (ib, rb, db, vb) = run_media(&scenario, false, seed);
        assert_eq!(ia, ib, "seed {seed:#x}: injected-fault counts diverged");
        assert_eq!(ra, rb, "seed {seed:#x}: RAS counters diverged");
        assert_eq!(da, db, "seed {seed:#x}: post-recovery digest diverged");
        assert_eq!(va, vb, "seed {seed:#x}: violation counts diverged");
        assert_eq!(va, 0, "seed {seed:#x}: violations found");
    }
}

#[test]
fn media_power_cut_sweep_is_clean() {
    // The combination mode ("media+power"): power cuts land inside a stream
    // that is simultaneously suffering injected NAND faults. Every explored
    // crash point must restore, recover and verify clean — in particular the
    // bad-block table captured at the cut must survive the power cycle.
    let e = Enumerator::new(MediaStress::quick());
    let report = e.sweep(&[0x11, 0x22], 8);
    assert!(report.total_steps > 0, "media stream produced no durability steps");
    assert!(report.distinct_points() > 0);
    report.assert_clean();
}

#[test]
fn media_run_to_end_reports_cut_zero() {
    let e = Enumerator::new(MediaStress::quick());
    let outcome = e.run_to_end(0x77);
    assert_eq!(outcome.cut, 0, "run_to_end is the no-cut mode");
    assert!(outcome.cut_kind.is_none());
    assert!(outcome.clean(), "{}", outcome.repro_line());
}
