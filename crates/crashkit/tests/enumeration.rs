//! The acceptance sweep: crashkit must enumerate a crash-point space of at
//! least 200 distinct points on the mixed-op device stress workload and find
//! zero invariant violations at every one of them — with background cleaning
//! off (deterministic) and on (racing cleaner thread), on both the injection
//! and the recovery side. The file-system, KV and baseline scenarios ride
//! the same driver with bounded sweeps.

use std::collections::BTreeSet;

use crashkit::{
    BaselineKind, BaselineStress, DeviceAsyncStress, DeviceMqStress, DeviceStress, Enumerator,
    FsStress, KvStress,
};
use mssd::FaultKind;

#[test]
fn mixed_op_stress_enumerates_at_least_200_clean_crash_points() {
    let e = Enumerator::new(DeviceStress::quick());
    let seed = 0x00A5_CE55;
    let total = e.count_steps(seed);
    assert!(total >= 200, "the mixed-op stress must expose >= 200 crash points, got {total}");
    let report = e.exhaustive(seed, 400);
    assert_eq!(report.total_steps, total);
    assert!(report.distinct_points() >= 200, "only {} points explored", report.distinct_points());
    report.assert_clean();

    // The sweep must have cut at every flavour of durability step the
    // workload produces — torn programs, lost commits, half-drained seals.
    let kinds: BTreeSet<&str> =
        report.outcomes.iter().filter_map(|o| o.cut_kind).map(FaultKind::label).collect();
    for expected in ["log-append", "tx-commit", "buffer-write", "flash-program", "seal-drain"] {
        assert!(kinds.contains(expected), "no cut landed on a {expected} step (got {kinds:?})");
    }
}

#[test]
fn mixed_op_stress_is_clean_with_background_cleaning_on_both_sides() {
    // Injection with the cleaner thread racing: cut placement is
    // nondeterministic, but every crash state it produces must still
    // recover clean. Recovery also runs with cleaning enabled.
    let mut e = Enumerator::new(DeviceStress::quick());
    e.inject_cleaning = true;
    e.recover_cleaning = true;
    let report = e.sweep(&[1, 2, 3], 20);
    assert!(report.distinct_points() >= 40);
    report.assert_clean();
}

#[test]
fn multi_queue_stress_enumerates_a_clean_crash_space() {
    // The multi-queue front end: batched doorbells, coalesced byte writes,
    // in-batch commits and per-queue block traffic. Completed-but-unpolled
    // commands must be durable, commands left in a submission queue must
    // have no durable effect; the oracle encodes both.
    let e = Enumerator::new(DeviceMqStress::quick());
    let seed = 0x00D0_0B31;
    let total = e.count_steps(seed);
    assert!(total >= 150, "multi-queue stress too small: {total} steps");
    let report = e.exhaustive(seed, 300);
    assert_eq!(report.total_steps, total);
    report.assert_clean();
    // Cuts landed on the step kinds queued traffic produces.
    let kinds: BTreeSet<&str> =
        report.outcomes.iter().filter_map(|o| o.cut_kind).map(FaultKind::label).collect();
    for expected in ["log-append", "tx-commit", "buffer-write"] {
        assert!(kinds.contains(expected), "no cut landed on a {expected} step (got {kinds:?})");
    }
}

#[test]
fn multi_queue_stress_is_clean_with_cleaning_on_both_sides() {
    let mut e = Enumerator::new(DeviceMqStress::quick());
    e.inject_cleaning = true;
    e.recover_cleaning = true;
    let report = e.sweep(&[7, 8, 9], 16);
    assert!(report.distinct_points() >= 30);
    report.assert_clean();
}

#[test]
fn async_runtime_stress_enumerates_a_clean_crash_space() {
    // Futures over shared reactor lanes: the cut lands with commands
    // resolved-but-unread, in coalesced groups mid-execution, stranded in
    // SQs and *parked for capacity* — every one must resolve to a typed
    // outcome and the durable state must honour it.
    let e = Enumerator::new(DeviceAsyncStress::quick());
    let seed = 0x00A5_0CC5;
    let total = e.count_steps(seed);
    assert!(total >= 150, "async stress too small: {total} steps");
    let report = e.exhaustive(seed, 250);
    assert_eq!(report.total_steps, total);
    report.assert_clean();
    let kinds: BTreeSet<&str> =
        report.outcomes.iter().filter_map(|o| o.cut_kind).map(FaultKind::label).collect();
    for expected in ["log-append", "tx-commit", "buffer-write"] {
        assert!(kinds.contains(expected), "no cut landed on a {expected} step (got {kinds:?})");
    }
}

#[test]
fn async_runtime_stress_is_clean_with_cleaning_on_both_sides() {
    let mut e = Enumerator::new(DeviceAsyncStress::quick());
    e.inject_cleaning = true;
    e.recover_cleaning = true;
    let report = e.sweep(&[21, 22], 12);
    assert!(report.distinct_points() >= 20);
    report.assert_clean();
}

#[test]
fn bytefs_stress_survives_an_exhaustive_sweep() {
    let e = Enumerator::new(FsStress::quick());
    let report = e.exhaustive(0xF5, 120);
    assert!(report.total_steps > 120, "fs workload too small: {}", report.total_steps);
    report.assert_clean();
}

#[test]
fn bytefs_stress_is_clean_with_cleaning_enabled() {
    let mut e = Enumerator::new(FsStress::quick());
    e.inject_cleaning = true;
    e.recover_cleaning = true;
    let report = e.sweep(&[0xF6, 0xF7], 15);
    report.assert_clean();
}

#[test]
fn kv_store_recovers_at_every_crash_point() {
    // Pins the WAL-tail contract: Db::open must succeed (torn final record
    // truncated, not an error) and flushed puts must survive, at every cut.
    let e = Enumerator::new(KvStress::quick());
    let report = e.exhaustive(0xDB, 100);
    assert!(report.total_steps > 60);
    report.assert_clean();
}

#[test]
fn baseline_engines_stay_consistent_across_crash_points() {
    for kind in [BaselineKind::Ext4, BaselineKind::Nova] {
        let e = Enumerator::new(BaselineStress::quick(kind));
        let report = e.exhaustive(0xBA5E, 60);
        assert!(report.total_steps > 60, "{}: workload too small", kind.label());
        report.assert_clean();
    }
}
