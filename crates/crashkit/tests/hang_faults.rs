//! Acceptance tests of the host error-recovery layer under crashkit.
//!
//! The `device-hang` mode runs the [`HangStress`] workload to completion
//! (no power cut) against a device whose [`mssd::HangFaultPlan`] injects
//! bounded and unbounded command stalls, lost completions and lane wedges,
//! then power cycles it cleanly. The sweep here must observe well over 200
//! injected hang faults across all three kinds — with background cleaning
//! both off and on — and complete with zero consistency violations: every
//! timed-out command resolved through the deadline/abort/retry layer with
//! its final value exactly-once observable (never duplicated into a stale
//! or torn state, never silently dropped).
//!
//! Hang injection is seeded: the same hang seed over the same op stream
//! must inject the same faults, take the same timeouts/aborts/resets/
//! retries and converge to the same post-recovery digest. The determinism
//! test pins that, because it is what makes a hang-failure report
//! reproducible. All hang detection runs on the virtual clock — the RAS
//! counters asserted here move without any wall-clock sleeping.

use crashkit::{Enumerator, HangStress, Scenario};
use mssd::{HangOpKind, Mssd};

/// Per-kind injected-hang counts of one run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Injected {
    stall: u64,
    loss: u64,
    wedge: u64,
}

impl Injected {
    fn total(&self) -> u64 {
        self.stall + self.loss + self.wedge
    }
}

/// Recovery-layer RAS counter snapshot relevant to determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RasCounts {
    hang_timeouts: u64,
    aborts: u64,
    lane_resets: u64,
    retries: u64,
}

/// Runs one `device-hang` pass directly (outside the [`Enumerator`], which
/// hides the device) so the injected-hang counters are observable, then
/// performs the same clean power cycle + oracle verification the enumerator
/// does. Returns everything the acceptance and determinism tests assert on.
fn run_hang(scenario: &HangStress, cleaning: bool, seed: u64) -> (Injected, RasCounts, u64, usize) {
    let mut cfg = scenario.device_config();
    cfg.background_cleaning = cleaning;
    let dev = Mssd::new(cfg, scenario.dram_mode());
    let oracle = scenario.run(&dev, seed);
    dev.quiesce_cleaning();
    let injected = Injected {
        stall: dev.config().hang.injected_of(HangOpKind::Stall),
        loss: dev.config().hang.injected_of(HangOpKind::Loss),
        wedge: dev.config().hang.injected_of(HangOpKind::Wedge),
    };
    let snap = dev.snapshot();
    let ras = RasCounts {
        hang_timeouts: snap.traffic.hang_timeouts,
        aborts: snap.traffic.aborts,
        lane_resets: snap.traffic.lane_resets,
        retries: snap.traffic.retries,
    };
    let image = dev.crash_image();
    drop(dev);
    let mut rcfg = scenario.device_config();
    rcfg.background_cleaning = cleaning;
    let restored = Mssd::from_crash_image(rcfg, scenario.dram_mode(), &image);
    let violations = oracle.verify(&restored);
    for v in &violations {
        eprintln!("hang violation (cleaning={cleaning}, seed={seed:#x}): {v}");
    }
    restored.quiesce_cleaning();
    let digest = restored.crash_image().digest();
    (injected, ras, digest, violations.len())
}

#[test]
fn hang_sweep_injects_hundreds_of_faults_with_zero_violations() {
    let scenario = HangStress::quick();
    let mut grand = Injected::default();
    let mut grand_ras = RasCounts { hang_timeouts: 0, aborts: 0, lane_resets: 0, retries: 0 };
    for cleaning in [false, true] {
        let mut sub = Injected::default();
        for seed in 1u64..=6 {
            let seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let (injected, ras, _digest, violations) = run_hang(&scenario, cleaning, seed);
            assert_eq!(violations, 0, "cleaning={cleaning} seed={seed:#x} found violations");
            sub.stall += injected.stall;
            sub.loss += injected.loss;
            sub.wedge += injected.wedge;
            grand_ras.hang_timeouts += ras.hang_timeouts;
            grand_ras.aborts += ras.aborts;
            grand_ras.lane_resets += ras.lane_resets;
            grand_ras.retries += ras.retries;
        }
        assert!(sub.total() > 0, "cleaning={cleaning}: the armed hang plan injected nothing");
        grand.stall += sub.stall;
        grand.loss += sub.loss;
        grand.wedge += sub.wedge;
    }
    assert!(
        grand.total() >= 200,
        "acceptance floor: expected >= 200 injected hang faults, got {grand:?}"
    );
    assert!(grand.stall > 0, "no stalls injected: {grand:?}");
    assert!(grand.loss > 0, "no lost completions injected: {grand:?}");
    assert!(grand.wedge > 0, "no lane wedges injected: {grand:?}");
    // The recovery layer must actually have worked for the runs to be
    // clean: losses and unbounded stalls surface as deadline timeouts and
    // host aborts, wedges as lane resets, and every recovered command rides
    // a backoff retry.
    assert!(grand_ras.hang_timeouts > 0, "no deadline timeouts taken: {grand_ras:?}");
    assert!(grand_ras.aborts > 0, "no host aborts issued: {grand_ras:?}");
    assert!(grand_ras.lane_resets > 0, "no lane resets taken: {grand_ras:?}");
    assert!(grand_ras.retries > 0, "no retries taken: {grand_ras:?}");
}

#[test]
fn hang_faults_are_deterministic_per_seed() {
    // Same hang seed + same op stream -> same injected hangs, same recovery
    // actions (timeouts / aborts / resets / retries) and the same
    // post-power-cycle digest. Cleaning must stay off: the runtime is
    // zero-worker deterministic only without the racing cleaner thread.
    let scenario = HangStress::quick();
    for seed in [0x5EED_u64, 0xFEED_FACE] {
        let (ia, ra, da, va) = run_hang(&scenario, false, seed);
        let (ib, rb, db, vb) = run_hang(&scenario, false, seed);
        assert_eq!(ia, ib, "seed {seed:#x}: injected-hang counts diverged");
        assert_eq!(ra, rb, "seed {seed:#x}: recovery RAS counters diverged");
        assert_eq!(da, db, "seed {seed:#x}: post-recovery digest diverged");
        assert_eq!(va, vb, "seed {seed:#x}: violation counts diverged");
        assert_eq!(va, 0, "seed {seed:#x}: violations found");
    }
}

#[test]
fn hang_power_cut_sweep_is_clean() {
    // The combination mode ("hang+power"): power cuts land inside a stream
    // that is simultaneously suffering injected hangs — including inside
    // timeout, abort, lane-reset and backoff-retry windows. Every explored
    // crash point must restore, recover and verify clean: a timed-out-then-
    // retried command is exactly-once observable or in-doubt, never
    // duplicated into a torn or impossible state.
    let e = Enumerator::new(HangStress::quick());
    let report = e.sweep(&[0x11, 0x22], 8);
    assert!(report.total_steps > 0, "hang stream produced no durability steps");
    assert!(report.distinct_points() > 0);
    report.assert_clean();
}

#[test]
fn hang_run_to_end_reports_cut_zero() {
    let e = Enumerator::new(HangStress::quick());
    let outcome = e.run_to_end(0x77);
    assert_eq!(outcome.cut, 0, "run_to_end is the no-cut mode");
    assert!(outcome.cut_kind.is_none());
    assert!(outcome.clean(), "{}", outcome.repro_line());
}
