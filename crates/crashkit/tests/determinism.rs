//! Crash-point counting and cut reproduction must be bit-deterministic:
//! the same seed sizes the same crash-point space, and the same `(seed,
//! cut)` pair produces the same crash image and the same post-recovery
//! state. This is what makes a printed failure line a full reproduction.

use crashkit::{DeviceAsyncStress, DeviceStress, Enumerator, FsStress, KvStress};

#[test]
fn same_seed_counts_the_same_crash_point_space() {
    let e = Enumerator::new(DeviceStress::quick());
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        assert_eq!(e.count_steps(seed), e.count_steps(seed), "seed {seed:#x}");
    }
    let e = Enumerator::new(FsStress::quick());
    assert_eq!(e.count_steps(7), e.count_steps(7));
}

#[test]
fn same_cut_produces_the_same_image_and_recovery() {
    let e = Enumerator::new(DeviceStress::quick());
    let seed = 0x5EED;
    let total = e.count_steps(seed);
    assert!(total > 0);
    for cut in [1, total / 3, total / 2, total] {
        let a = e.run_cut(seed, cut);
        let b = e.run_cut(seed, cut);
        assert_eq!(a.image_digest, b.image_digest, "cut {cut}: crash image diverged");
        assert_eq!(a.recovered_digest, b.recovered_digest, "cut {cut}: recovery diverged");
        assert_eq!(a.cut_kind, b.cut_kind, "cut {cut}: step kind diverged");
        assert!(a.clean(), "{}", a.repro_line());
    }
}

#[test]
fn async_runtime_cuts_are_deterministic() {
    // The zero-worker executor runs every client future on the enumerating
    // thread in FIFO order, so the async scenario replays bit-exactly.
    let e = Enumerator::new(DeviceAsyncStress::quick());
    let seed = 0xA51C;
    let total = e.count_steps(seed);
    assert_eq!(total, e.count_steps(seed), "step space diverged");
    for cut in [1, total / 2, total] {
        let a = e.run_cut(seed, cut);
        let b = e.run_cut(seed, cut);
        assert_eq!(a.image_digest, b.image_digest, "cut {cut}: crash image diverged");
        assert_eq!(a.recovered_digest, b.recovered_digest, "cut {cut}: recovery diverged");
        assert!(a.clean(), "{}", a.repro_line());
    }
}

#[test]
fn fs_and_kv_cuts_are_deterministic_too() {
    let e = Enumerator::new(FsStress::quick());
    let total = e.count_steps(11);
    let cut = total / 2;
    let a = e.run_cut(11, cut);
    let b = e.run_cut(11, cut);
    assert_eq!(a.image_digest, b.image_digest);
    assert_eq!(a.recovered_digest, b.recovered_digest);

    let e = Enumerator::new(KvStress::quick());
    let total = e.count_steps(5);
    let cut = 2 * total / 3;
    let a = e.run_cut(5, cut);
    let b = e.run_cut(5, cut);
    assert_eq!(a.image_digest, b.image_digest);
    assert_eq!(a.recovered_digest, b.recovered_digest);
}

#[test]
fn tracing_does_not_change_crash_determinism() {
    // Event tracing is observe-only: a traced enumeration must produce the
    // same step space, crash images and recovered digests as an untraced
    // one, and a power cut simply truncates the bounded trace rings — the
    // traced run still yields a drainable (non-empty) event stream.
    let seed = 0x7A3E;
    let off = Enumerator::new(DeviceStress::quick());
    let mut on = Enumerator::new(DeviceStress::quick());
    on.trace_injection = true;
    let total = off.count_steps(seed);
    assert_eq!(total, on.count_steps(seed), "tracing changed the step space");
    for cut in [1, total / 2, total] {
        let a = off.run_cut(seed, cut);
        let b = on.run_cut(seed, cut);
        assert_eq!(a.image_digest, b.image_digest, "cut {cut}: tracing changed the crash image");
        assert_eq!(a.recovered_digest, b.recovered_digest, "cut {cut}: tracing changed recovery");
        assert_eq!(a.cut_kind, b.cut_kind, "cut {cut}: tracing moved the cut");
        assert_eq!(a.traced_events, 0, "untraced run must capture nothing");
        if cut == total {
            // An immediate cut can legitimately capture nothing (power dies
            // before the first instrumented boundary); the full run must not.
            assert!(b.traced_events > 0, "cut {cut}: traced run captured no events");
        }
    }
}

#[test]
fn recovery_is_independent_of_background_cleaning() {
    // The same crash image, recovered on a device with the background
    // cleaner enabled vs disabled, must converge to the same durable state.
    let seed = 0xCAFE;
    let off = Enumerator::new(DeviceStress::quick());
    let mut on = Enumerator::new(DeviceStress::quick());
    on.recover_cleaning = true;
    let total = off.count_steps(seed);
    for cut in [1, total / 4, total / 2, 3 * total / 4, total] {
        let a = off.run_cut(seed, cut);
        let b = on.run_cut(seed, cut);
        assert_eq!(a.image_digest, b.image_digest, "cut {cut}: injection side must agree");
        assert_eq!(
            a.recovered_digest, b.recovered_digest,
            "cut {cut}: recovery must not depend on the cleaning mode"
        );
        assert!(a.clean() && b.clean(), "cut {cut} dirty");
    }
}
