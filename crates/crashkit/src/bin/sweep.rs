//! CI entry point: bounded crash-point sweep of one scenario, emitting a
//! JSON report whose `failures` array carries everything needed to replay a
//! bad crash point (`Enumerator::reproduce(seed, cut)` with the same
//! scenario and flags). Exits non-zero when any violation was found, so the
//! workflow can upload the report as the failure-seed artifact.
//!
//! ```text
//! sweep <device|device-mq|device-async|bytefs|kv|ext4like|novalike|device-media|media+power|device-hang|hang+power|device-replay> \
//!       <cleaning:on|off> [seeds=4] [cuts-per-seed=24] [out.json]
//! ```
//!
//! `device-media` runs the media-fault stress to completion per seed (no
//! power cut, clean power cycle at the end); `media+power` sweeps random
//! power-cut points through the same media-fault workload. `device-hang`
//! and `hang+power` do the same for the fail-slow (hang-injection) stress:
//! to-completion runs prove every injected hang resolves through the
//! timeout/abort/retry recovery layer, and the power sweep crosses hangs
//! with cuts landing inside recovery windows. `device-replay` re-drives the
//! recorded CI-churn corpus op trace against ByteFS with power cut at each
//! enumerated step — crash consistency over a captured production-shaped
//! trace rather than a synthetic seeded mix.

use std::io::Write as _;

use crashkit::{
    BaselineKind, BaselineStress, DeviceAsyncStress, DeviceMqStress, DeviceStress, Enumerator,
    FsStress, HangStress, KvStress, MediaStress, ReplayStress, Scenario, SweepReport,
};

fn seed_stream(seeds: u64) -> Vec<u64> {
    (1..=seeds).map(|s| s.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect()
}

fn run<S: Scenario>(scenario: S, cleaning: bool, seeds: u64, cuts: usize) -> SweepReport {
    let mut e = Enumerator::new(scenario);
    e.inject_cleaning = cleaning;
    e.recover_cleaning = cleaning;
    e.sweep(&seed_stream(seeds), cuts)
}

/// Pure media-fault mode: every seed's stream runs to completion (no power
/// cut) and ends with a clean power cycle; one outcome per seed.
fn run_to_end<S: Scenario>(scenario: S, cleaning: bool, seeds: u64) -> SweepReport {
    let mut e = Enumerator::new(scenario);
    e.inject_cleaning = cleaning;
    e.recover_cleaning = cleaning;
    let mut report = SweepReport::default();
    for seed in seed_stream(seeds) {
        let outcome = e.run_to_end(seed);
        report.total_steps = report.total_steps.max(outcome.steps_observed);
        report.outcomes.push(outcome);
    }
    report
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scenario = args.get(1).map(String::as_str).unwrap_or("device");
    let cleaning = matches!(args.get(2).map(String::as_str), Some("on"));
    let seeds: u64 = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(4);
    let cuts: usize = args.get(4).and_then(|a| a.parse().ok()).unwrap_or(24);
    let out = args.get(5).cloned().unwrap_or_else(|| "crashkit_sweep.json".into());

    let report = match scenario {
        "device" => run(DeviceStress::quick(), cleaning, seeds, cuts),
        "device-mq" => run(DeviceMqStress::quick(), cleaning, seeds, cuts),
        "device-async" => run(DeviceAsyncStress::quick(), cleaning, seeds, cuts),
        "bytefs" => run(FsStress::quick(), cleaning, seeds, cuts),
        "kv" => run(KvStress::quick(), cleaning, seeds, cuts),
        "ext4like" => run(BaselineStress::quick(BaselineKind::Ext4), cleaning, seeds, cuts),
        "novalike" => run(BaselineStress::quick(BaselineKind::Nova), cleaning, seeds, cuts),
        "device-media" => run_to_end(MediaStress::quick(), cleaning, seeds),
        "media+power" => run(MediaStress::quick(), cleaning, seeds, cuts),
        "device-hang" => run_to_end(HangStress::quick(), cleaning, seeds),
        "hang+power" => run(HangStress::quick(), cleaning, seeds, cuts),
        "device-replay" => run(ReplayStress::quick(), cleaning, seeds, cuts),
        other => {
            eprintln!(
                "unknown scenario {other:?} \
                 (device|device-mq|device-async|bytefs|kv|ext4like|novalike|device-media|\
                 media+power|device-hang|hang+power|device-replay)"
            );
            std::process::exit(2);
        }
    };

    let failures: Vec<String> = report
        .failures()
        .map(|o| {
            let violations: Vec<String> = o
                .violations
                .iter()
                .map(|v| format!("{{\"checker\":{:?},\"detail\":{:?}}}", v.checker, v.detail))
                .collect();
            format!(
                "{{\"seed\":\"{:#x}\",\"cut\":{},\"kind\":{:?},\"repro\":{:?},\"violations\":[{}]}}",
                o.seed,
                o.cut,
                o.cut_kind.map(|k| k.label()).unwrap_or("none"),
                o.repro_line(),
                violations.join(",")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scenario\": {:?},\n  \"background_cleaning\": {},\n  \"total_steps\": {},\n  \
         \"points_explored\": {},\n  \"failures\": [{}]\n}}\n",
        scenario,
        cleaning,
        report.total_steps,
        report.distinct_points(),
        failures.join(",")
    );
    let mut f = std::fs::File::create(&out).expect("create report file");
    f.write_all(json.as_bytes()).expect("write report");

    println!(
        "crashkit sweep: scenario={scenario} cleaning={} -> {} points over a {}-step space, {} failures ({out})",
        if cleaning { "on" } else { "off" },
        report.distinct_points(),
        report.total_steps,
        failures.len()
    );
    for o in report.failures() {
        println!("  {}", o.repro_line());
        for v in &o.violations {
            println!("    {v}");
        }
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
