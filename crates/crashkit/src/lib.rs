//! # crashkit — deterministic power-failure injection for the whole stack
//!
//! The stack's central promise is crash consistency: the M-SSD's
//! battery-backed write log plus ByteFS's transactional metadata keep every
//! committed byte reachable across a power failure. Before this crate, that
//! promise was spot-checked by a handful of hand-rolled cut-power/remount
//! tests; crashkit turns it into a systematically explored property:
//!
//! 1. Every durability-relevant step the device executes (write-log append,
//!    TxLog commit, sealed-region drain migration, write-buffer/journal page
//!    acceptance, NAND program, block erase) is counted by the
//!    [`mssd::FaultPlan`] installed in [`mssd::MssdConfig::fault`].
//! 2. The [`Enumerator`] runs a deterministic, seeded workload
//!    ([`Scenario`]) once in counting mode to size the crash-point space,
//!    then once per chosen cut point with power cut at exactly that step —
//!    including cuts that tear multi-page programs and leave sealed log
//!    regions partially drained.
//! 3. At the cut, [`mssd::Mssd::crash_image`] captures the durable state
//!    (NAND + battery-backed DRAM); the image is restored into a fresh
//!    device (optionally under a different firmware configuration, e.g.
//!    background cleaning toggled), recovery runs, and the scenario's
//!    [`Oracle`] plus every layer's [`fskit::CrashConsistent`] checker
//!    verify the outcome.
//!
//! Failures are reproducible from one line: the seed re-derives the
//! workload, the cut index re-places the power failure, and (with
//! `background_cleaning` off during injection, the default) the resulting
//! crash image is bit-identical — `Enumerator::reproduce(seed, cut)` replays
//! any reported violation.
//!
//! See `DESIGN.md` next to this crate for the crash-point taxonomy, the
//! checker API and the reproduction workflow.
//!
//! ```
//! use crashkit::{DeviceStress, Enumerator};
//!
//! let e = Enumerator::new(DeviceStress::quick());
//! let total = e.count_steps(7);
//! assert!(total > 0);
//! let outcome = e.run_cut(7, total / 2);
//! assert!(outcome.violations.is_empty(), "{}", outcome.repro_line());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod scenarios;

pub use driver::{CutOutcome, Enumerator, SweepReport};
pub use scenarios::{
    BaselineKind, BaselineStress, DeviceAsyncStress, DeviceMqStress, DeviceStress, FsStress,
    HangStress, KvStress, MediaStress, Oracle, ReplayStress, Scenario,
};

use std::sync::Arc;

use mssd::{Mssd, MssdConfig};

/// Deterministic xorshift64 stream used by every seeded workload.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the stream. The seed runs through a splitmix64 scramble so
    /// that adjacent seeds yield unrelated streams (a plain `seed | 1`
    /// would collapse every even seed onto its odd neighbour).
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self(z | 1)
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform value in `[0, bound)` (bound must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Simulates a full power cycle outside the enumeration driver: captures the
/// durable image of `dev` and restores it into a fresh device built from
/// `cfg`. This replaces the old hand-rolled `dev.crash()`-and-remount
/// helpers in the ported crash suites; unlike [`Mssd::crash`], it does not
/// assume the capacitor flush completed — the write buffer is carried over
/// as-is and recovery handles it.
pub fn power_cycle(dev: &Arc<Mssd>, cfg: MssdConfig) -> Arc<Mssd> {
    let image = dev.crash_image();
    Mssd::from_crash_image(cfg, dev.dram_mode(), &image)
}
