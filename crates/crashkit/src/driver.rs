//! The crash-point enumeration driver.
//!
//! [`Enumerator`] wraps a [`Scenario`] and explores its crash-point space:
//!
//! * [`Enumerator::count_steps`] runs the workload once under a counting
//!   [`FaultPlan`] to size the space;
//! * [`Enumerator::run_cut`] replays the workload with power cut at one
//!   chosen step, captures the durable [`CrashImage`], restores it into a
//!   fresh device (optionally with a different `background_cleaning`
//!   setting) and verifies the scenario's oracle plus the stack's
//!   [`fskit::CrashConsistent`] checkers;
//! * [`Enumerator::exhaustive`] sweeps every cut point (or an evenly spaced
//!   subset when capped); [`Enumerator::sweep`] samples seed-derived random
//!   cut points for stress workloads;
//! * [`Enumerator::reproduce`] replays one `(seed, cut)` pair — the two
//!   numbers printed in every failure's [`CutOutcome::repro_line`].
//!
//! Determinism: with `inject_cleaning == false` (the default) the injection
//! run is single-threaded and cleaner-free, so the same `(seed, cut)` always
//! yields the same crash image (`image_digest`) and the same post-recovery
//! state (`recovered_digest`); the determinism tests pin this. Setting
//! `inject_cleaning` lets the sweep also exercise the racing background
//! cleaner — cuts then land nondeterministically, which is fine for
//! *finding* problems but reproduction is only digest-exact cleaner-off.

use mssd::{CrashImage, FaultKind, FaultPlan, Mssd};

use fskit::check::Violation;

use crate::scenarios::Scenario;
use crate::Rng;

/// Mutates a captured crash image before restoration — the hook crash tests
/// use to *inject* violations of the durability assumptions (drop the
/// battery-backed write buffer to model a failed capacitor flush, truncate
/// the TxLog to model torn commit records) and prove the checkers catch
/// them. The same mutator re-applied to the same `(seed, cut)` reproduces
/// the same injected failure.
pub type ImageMutator = fn(&mut CrashImage, u64);

/// Drives a [`Scenario`] through its crash-point space.
pub struct Enumerator<S> {
    /// The scenario under test.
    pub scenario: S,
    /// Run the injection-side device with the background cleaner thread
    /// (nondeterministic step placement; default `false`).
    pub inject_cleaning: bool,
    /// Run the recovery-side device with background cleaning enabled.
    /// Recovery must not depend on this; the sweep tests verify identical
    /// recovered digests for both settings.
    pub recover_cleaning: bool,
    /// Optional violation injection applied to every captured image.
    pub mutator: Option<ImageMutator>,
    /// Enable `mssd::trace` event capture on the injection-side device.
    /// Tracing is observe-only — it must never change digests or the step
    /// space; the determinism tests hold it to that. Captured events are
    /// drained (and truncated at the power cut, since the per-thread rings
    /// are bounded) into [`CutOutcome::traced_events`].
    pub trace_injection: bool,
}

/// Everything one explored crash point produced.
#[derive(Debug)]
pub struct CutOutcome {
    /// Workload seed.
    pub seed: u64,
    /// 1-based durability step at which power was cut.
    pub cut: u64,
    /// Kind of the step the cut landed on.
    pub cut_kind: Option<FaultKind>,
    /// Durability steps observed by the end of the run (≥ `cut`).
    pub steps_observed: u64,
    /// Digest of the captured durable state (after mutation, if any).
    pub image_digest: u64,
    /// Digest of the durable state after restoration + recovery + checks.
    pub recovered_digest: u64,
    /// Violations found by the oracle and the layer checkers.
    pub violations: Vec<Violation>,
    /// Trace events drained from the injection-side device (0 unless
    /// [`Enumerator::trace_injection`] was set).
    pub traced_events: u64,
}

impl CutOutcome {
    /// `true` when no checker objected to this crash point.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The one line that reproduces this crash point:
    /// `Enumerator::reproduce(seed, cut)` with the same scenario and flags.
    pub fn repro_line(&self) -> String {
        format!(
            "crashkit repro: seed={:#x} cut={} kind={} ({} violations)",
            self.seed,
            self.cut,
            self.cut_kind.map(|k| k.label()).unwrap_or("none"),
            self.violations.len()
        )
    }
}

/// Aggregate of one enumeration pass.
#[derive(Debug, Default)]
pub struct SweepReport {
    /// Total crash-point space of the counted run(s) (max across seeds).
    pub total_steps: u64,
    /// One entry per explored cut.
    pub outcomes: Vec<CutOutcome>,
}

impl SweepReport {
    /// Outcomes with at least one violation.
    pub fn failures(&self) -> impl Iterator<Item = &CutOutcome> {
        self.outcomes.iter().filter(|o| !o.clean())
    }

    /// Number of distinct `(seed, cut)` crash points explored.
    pub fn distinct_points(&self) -> usize {
        let mut points: Vec<(u64, u64)> = self.outcomes.iter().map(|o| (o.seed, o.cut)).collect();
        points.sort_unstable();
        points.dedup();
        points.len()
    }

    /// Panics with every failure's reproduction line if any cut was dirty.
    pub fn assert_clean(&self) {
        let lines: Vec<String> = self
            .failures()
            .map(|o| {
                let mut s = o.repro_line();
                for violation in &o.violations {
                    s.push_str(&format!("\n    {violation}"));
                }
                s
            })
            .collect();
        assert!(lines.is_empty(), "crash sweep found violations:\n{}", lines.join("\n"));
    }
}

impl<S: Scenario> Enumerator<S> {
    /// Wraps a scenario with deterministic (cleaner-off) defaults.
    pub fn new(scenario: S) -> Self {
        Self {
            scenario,
            inject_cleaning: false,
            recover_cleaning: false,
            mutator: None,
            trace_injection: false,
        }
    }

    fn inject_config(&self, plan: FaultPlan) -> mssd::MssdConfig {
        let mut cfg = self.scenario.device_config();
        cfg.background_cleaning = self.inject_cleaning;
        cfg.fault = plan;
        cfg
    }

    fn recover_config(&self) -> mssd::MssdConfig {
        let mut cfg = self.scenario.device_config();
        cfg.background_cleaning = self.recover_cleaning;
        cfg.fault = FaultPlan::disabled();
        cfg
    }

    /// Sizes the crash-point space: runs the workload for `seed` under a
    /// counting plan and returns the number of durability steps.
    pub fn count_steps(&self, seed: u64) -> u64 {
        let plan = FaultPlan::count_only();
        let dev = Mssd::new(self.inject_config(plan.clone()), self.scenario.dram_mode());
        let _oracle = self.scenario.run(&dev, seed);
        dev.quiesce_cleaning();
        plan.total_steps()
    }

    /// Explores one crash point: cut power at step `cut` of seed `seed`'s
    /// run, restore, recover, verify.
    pub fn run_cut(&self, seed: u64, cut: u64) -> CutOutcome {
        let plan = FaultPlan::cut_at(cut);
        let mode = self.scenario.dram_mode();
        let dev = Mssd::new(self.inject_config(plan.clone()), mode);
        dev.set_tracing(self.trace_injection);
        let oracle = self.scenario.run(&dev, seed);
        let traced_events =
            if self.trace_injection { dev.trace_sink().drain().events.len() as u64 } else { 0 };
        let mut image = dev.crash_image();
        drop(dev); // the host is gone; joins the cleaner thread if any
        if let Some(mutate) = self.mutator {
            mutate(&mut image, seed);
        }
        let image_digest = image.digest();
        let restored = Mssd::from_crash_image(self.recover_config(), mode, &image);
        let violations = oracle.verify(&restored);
        restored.quiesce_cleaning();
        let recovered_digest = restored.crash_image().digest();
        CutOutcome {
            seed,
            cut,
            cut_kind: plan.cut_kind(),
            steps_observed: plan.total_steps(),
            image_digest,
            recovered_digest,
            violations,
            traced_events,
        }
    }

    /// Runs the workload to completion with no power cut — the pure
    /// media-fault mode: every injected NAND fault must be absorbed by the
    /// RAS layer or surfaced as a typed error with the device still
    /// consistent. The run ends with a clean power cycle (crash image at
    /// quiescence, restore, recover, verify), which in particular checks
    /// that the bad-block table survives it. Reported as a [`CutOutcome`]
    /// with `cut == 0` / `cut_kind == None` so it slots into the same
    /// [`SweepReport`] plumbing as real cuts.
    pub fn run_to_end(&self, seed: u64) -> CutOutcome {
        let plan = FaultPlan::count_only();
        let mode = self.scenario.dram_mode();
        let dev = Mssd::new(self.inject_config(plan.clone()), mode);
        dev.set_tracing(self.trace_injection);
        let oracle = self.scenario.run(&dev, seed);
        dev.quiesce_cleaning();
        let traced_events =
            if self.trace_injection { dev.trace_sink().drain().events.len() as u64 } else { 0 };
        let mut image = dev.crash_image();
        drop(dev);
        if let Some(mutate) = self.mutator {
            mutate(&mut image, seed);
        }
        let image_digest = image.digest();
        let restored = Mssd::from_crash_image(self.recover_config(), mode, &image);
        let violations = oracle.verify(&restored);
        restored.quiesce_cleaning();
        let recovered_digest = restored.crash_image().digest();
        CutOutcome {
            seed,
            cut: 0,
            cut_kind: None,
            steps_observed: plan.total_steps(),
            image_digest,
            recovered_digest,
            violations,
            traced_events,
        }
    }

    /// Replays one reported crash point (`CutOutcome::repro_line`).
    pub fn reproduce(&self, seed: u64, cut: u64) -> CutOutcome {
        self.run_cut(seed, cut)
    }

    /// Explores every cut point of `seed`'s run — or, when the space
    /// exceeds `max_cuts`, an evenly spaced subset covering it end to end
    /// (the cap is logged in the report, never silent: `total_steps` always
    /// records the full space).
    pub fn exhaustive(&self, seed: u64, max_cuts: usize) -> SweepReport {
        let total = self.count_steps(seed);
        let mut report = SweepReport { total_steps: total, outcomes: Vec::new() };
        if total == 0 {
            return report;
        }
        let cuts: Vec<u64> = if total as usize <= max_cuts {
            (1..=total).collect()
        } else if max_cuts <= 1 {
            // A cap of 1 (or 0, clamped) still explores the final step —
            // the most state-rich crash point.
            vec![total]
        } else {
            // Evenly spaced, always including the first and last step.
            (0..max_cuts).map(|i| 1 + (i as u64 * (total - 1)) / (max_cuts as u64 - 1)).collect()
        };
        for cut in cuts {
            report.outcomes.push(self.run_cut(seed, cut));
        }
        report
    }

    /// Seeded-random sweep for stress workloads: for each seed, sizes the
    /// space and explores `cuts_per_seed` pseudo-randomly chosen cut points
    /// (derived from the seed, so the whole sweep is reproducible).
    pub fn sweep(&self, seeds: &[u64], cuts_per_seed: usize) -> SweepReport {
        let mut report = SweepReport::default();
        for &seed in seeds {
            let total = self.count_steps(seed);
            report.total_steps = report.total_steps.max(total);
            if total == 0 {
                continue;
            }
            let mut rng = Rng::new(seed ^ CUT_PICK_SALT);
            for _ in 0..cuts_per_seed {
                let cut = 1 + rng.below(total);
                report.outcomes.push(self.run_cut(seed, cut));
            }
        }
        report
    }
}

/// Salt separating the cut-picking stream from the workload's own seed.
const CUT_PICK_SALT: u64 = 0xC1A5_4C17;
