//! Built-in crash scenarios: deterministic seeded workloads paired with the
//! oracles that verify their durability contract after a power cycle.
//!
//! A [`Scenario`] owns the workload shape (which layer it drives, which ops
//! it mixes); the seed owns the concrete op stream. Scenarios must be
//! deterministic: the same seed issues the same ops against a fresh device,
//! so the enumeration driver can first count the durability steps and then
//! replay the exact run with power cut at any chosen step. Every scenario
//! polls [`Mssd::fault_tripped`] at op boundaries and stops once the cut
//! fired; the op during which the cut landed is recorded as *in doubt* — its
//! effects may be wholly, partially or not at all durable, and the oracle
//! accepts any of those outcomes while every completed op is checked
//! exactly.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use baselines::{Ext4Like, NovaLike};
use bytefs::{ByteFs, ByteFsConfig};
use fskit::check::{CrashConsistent, Violation};
use fskit::{Fd, FileSystem, FileSystemExt, OpenFlags};
use kvstore::{Db, DbOptions, WalSync};
use mssd::{
    Category, DramMode, HangFaultConfig, HangFaultPlan, MediaFaultConfig, MediaFaultPlan, Mssd,
    MssdConfig, TxId,
};

use workloads::{record_corpus, CorpusKind, FsKind, OpTrace, Scale};

use crate::Rng;

/// A deterministic crash workload plus the knowledge to verify it.
pub trait Scenario {
    /// Base device configuration for this scenario. The driver installs the
    /// fault plan and may override `background_cleaning` on top.
    fn device_config(&self) -> MssdConfig;

    /// Firmware mode the scenario's stack needs.
    fn dram_mode(&self) -> DramMode {
        DramMode::WriteLog
    }

    /// Drives the stack on a fresh device. Must be a pure function of
    /// `seed`; must poll [`Mssd::fault_tripped`] at op boundaries and stop
    /// once it fires. Returns the oracle of expected durable state.
    fn run(&self, dev: &Arc<Mssd>, seed: u64) -> Box<dyn Oracle>;
}

/// Expected durable state captured by a [`Scenario::run`]; verified against
/// the restored-and-recovered device.
pub trait Oracle {
    /// Runs recovery-side checks on the restored device (power back on).
    /// Returns every violation found; empty means the crash point is clean.
    fn verify(&self, dev: &Arc<Mssd>) -> Vec<Violation>;
}

/// What a completed (or in-doubt) write lets the oracle demand afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// The exact tag must be durable.
    Exactly(u8),
    /// The cut landed inside the producing op: either the old or the new
    /// tag is acceptable.
    Either(u8, u8),
}

impl Expect {
    fn admits(self, got: u8) -> bool {
        match self {
            Expect::Exactly(t) => got == t,
            Expect::Either(a, b) => got == a || got == b,
        }
    }
}

// ---------------------------------------------------------------------------
// Device-level mixed-op stress
// ---------------------------------------------------------------------------

/// The mixed-op device stress workload: single-threaded, seeded mix of
/// non-transactional byte writes, transactional byte writes with batched
/// commits, page-boundary-crossing byte writes, multi-page block writes,
/// TRIMs, explicit region seals and NVMe flushes — the workload the
/// acceptance sweep enumerates. Byte traffic lives in cacheline slots of
/// partition 0; block traffic in whole pages of partition 1, so the two
/// oracles never alias.
#[derive(Debug, Clone)]
pub struct DeviceStress {
    /// Number of ops in the stream.
    pub ops: usize,
}

/// 64-byte byte-interface slots the stress cycles through.
const SLOTS: u64 = 96;
/// Whole pages of block-interface traffic (offset into partition 1).
const BLOCK_PAGES: u64 = 12;
/// First logical page of the block region (16 MB / 4 KB = partition 1).
const BLOCK_BASE: u64 = 4096;

impl DeviceStress {
    /// A stream sized so the crash-point space comfortably exceeds the
    /// 200-point acceptance floor while a full exhaustive sweep stays fast.
    pub fn quick() -> Self {
        Self { ops: 220 }
    }
}

impl Scenario for DeviceStress {
    fn device_config(&self) -> MssdConfig {
        let mut cfg = MssdConfig::small_test();
        // Two 16 MB partitions: byte slots in the first, block pages in the
        // second.
        cfg.capacity_bytes = 32 << 20;
        // A log region small enough that the stream fills it repeatedly,
        // with the cleaning threshold pushed out of the way so space
        // admission actually fails: that drives the foreground seal +
        // sealed-region drain path, whose SealDrain migrations are crash
        // points of their own.
        cfg.dram_region_bytes = 8 << 10;
        cfg.log_clean_threshold = 0.999;
        cfg
    }

    fn run(&self, dev: &Arc<Mssd>, seed: u64) -> Box<dyn Oracle> {
        let mut rng = Rng::new(seed);
        let mut o = DeviceOracle::default();
        // Transactional batch in flight: (slot, tag) pairs awaiting commit.
        let mut pending: Vec<(u64, u8)> = Vec::new();
        let mut tx = TxId(1);
        for _ in 0..self.ops {
            let roll = rng.below(100);
            // Units touched by this op, with their new tags — used to mark
            // the op in-doubt if the cut lands inside it.
            let mut touched_lines: Vec<(u64, u8)> = Vec::new();
            let mut touched_pages: Vec<(u64, u8)> = Vec::new();
            let mut committing = false;
            match roll {
                // Non-transactional single-cacheline write.
                0..=39 => {
                    let slot = rng.below(SLOTS);
                    let tag = 1 + (rng.below(250)) as u8;
                    dev.byte_write(slot * 64, &[tag; 64], None, Category::Data);
                    touched_lines.push((slot, tag));
                }
                // Transactional write; every 4th op of this kind commits.
                40..=59 => {
                    let slot = rng.below(SLOTS);
                    let tag = 1 + (rng.below(250)) as u8;
                    dev.byte_write(slot * 64, &[tag; 64], Some(tx), Category::Inode);
                    pending.push((slot, tag));
                    if pending.len() >= 4 {
                        committing = true;
                        dev.commit(tx);
                    }
                }
                // Byte write crossing a page boundary: two chunks, torn
                // independently.
                60..=69 => {
                    // Slots come in pairs (2k, 2k+1) at a page boundary:
                    // slot addresses are page-relative lines, so pick a pair
                    // whose first line ends a page (line 63 of some page).
                    let page = 1 + rng.below(SLOTS / 64);
                    let tag = 1 + (rng.below(250)) as u8;
                    let addr = page * 4096 - 64;
                    dev.byte_write(addr, &[tag; 128], None, Category::Data);
                    touched_lines.push((page * 64 - 1, tag));
                    touched_lines.push((page * 64, tag));
                }
                // Multi-page block write (1-3 pages), torn per page.
                70..=84 => {
                    let start = rng.below(BLOCK_PAGES - 2);
                    let count = 1 + rng.below(3);
                    let tag = 1 + (rng.below(250)) as u8;
                    dev.block_write(
                        BLOCK_BASE + start,
                        &vec![tag; (count * 4096) as usize],
                        Category::Data,
                    );
                    for p in start..start + count {
                        touched_pages.push((p, tag));
                    }
                }
                // TRIM one block page (atomic: counts no step).
                85..=89 => {
                    let p = rng.below(BLOCK_PAGES);
                    dev.trim(BLOCK_BASE + p, 1);
                    touched_pages.push((p, 0));
                }
                // Seal every shard's active log region.
                90..=94 => dev.seal_log_regions(),
                // NVMe FLUSH.
                _ => dev.flush(),
            }
            if dev.fault_tripped() {
                // The cut landed inside this op: everything it touched is in
                // doubt, and any uncommitted transactional writes die with
                // the TxLog record they never got.
                for (slot, tag) in touched_lines {
                    let old = o.line_tag(slot);
                    o.lines.insert(slot, Expect::Either(old, tag));
                }
                for (page, tag) in touched_pages {
                    let old = o.page_tag(page);
                    o.pages.insert(page, Expect::Either(old, tag));
                }
                if committing {
                    // Whether the commit record made it decides the whole
                    // batch at once; per slot only the newest pending tag
                    // can win the merge, and "old" is the pre-batch value —
                    // snapshot it before any insert so a batch that wrote
                    // one slot twice cannot corrupt its own baseline.
                    let mut newest: BTreeMap<u64, u8> = BTreeMap::new();
                    for (slot, tag) in pending.drain(..) {
                        newest.insert(slot, tag);
                    }
                    for (slot, tag) in newest {
                        let old = o.line_tag(slot);
                        o.lines.insert(slot, Expect::Either(old, tag));
                    }
                } else {
                    pending.clear(); // uncommitted ⇒ recovery discards ⇒ old value stands
                }
                return Box::new(o);
            }
            // Op completed: its effects are exactly durable. A
            // non-transactional write also overshadows any older pending
            // transactional write to the same slot — the pending chunk may
            // still commit later, but its older sequence number loses the
            // merge, so the oracle must forget it.
            for (slot, tag) in touched_lines {
                pending.retain(|(s, _)| *s != slot);
                o.lines.insert(slot, Expect::Exactly(tag));
            }
            for (page, tag) in touched_pages {
                o.pages.insert(page, Expect::Exactly(tag));
            }
            if committing {
                for (slot, tag) in pending.drain(..) {
                    o.lines.insert(slot, Expect::Exactly(tag));
                }
                tx = TxId(tx.0 + 1);
            }
        }
        // Stream ended without a cut (count phase): uncommitted
        // transactional writes are still discarded by recovery, so the old
        // values already recorded in `lines` stand.
        Box::new(o)
    }
}

/// Expected durable device state of a [`DeviceStress`] or
/// [`DeviceMqStress`] run.
#[derive(Debug, Default)]
struct DeviceOracle {
    /// Cacheline slot (address / 64) → expected 64-byte tag.
    lines: BTreeMap<u64, Expect>,
    /// Block-region page (relative to [`BLOCK_BASE`]) → expected page tag
    /// (used by [`DeviceStress`]).
    pages: BTreeMap<u64, Expect>,
    /// Absolute logical page → expected page tag (used by
    /// [`DeviceMqStress`], whose block traffic is sliced per queue).
    pages_abs: BTreeMap<u64, Expect>,
}

impl DeviceOracle {
    fn line_tag(&self, slot: u64) -> u8 {
        match self.lines.get(&slot) {
            Some(Expect::Exactly(t)) => *t,
            // An in-doubt slot rewritten later: use 0 as the conservative
            // base; the new Exactly/Either overwrites the entry anyway.
            Some(Expect::Either(..)) | None => 0,
        }
    }

    fn page_tag(&self, page: u64) -> u8 {
        match self.pages.get(&page) {
            Some(Expect::Exactly(t)) => *t,
            Some(Expect::Either(..)) | None => 0,
        }
    }

    fn page_abs_tag(&self, lba: u64) -> u8 {
        match self.pages_abs.get(&lba) {
            Some(Expect::Exactly(t)) => *t,
            Some(Expect::Either(..)) | None => 0,
        }
    }
}

impl Oracle for DeviceOracle {
    fn verify(&self, dev: &Arc<Mssd>) -> Vec<Violation> {
        let mut v = Vec::new();
        dev.recover();
        if dev.snapshot().log_entries != 0 {
            v.push(Violation::new(
                "device-recover",
                format!("{} log entries survived recovery", dev.snapshot().log_entries),
            ));
        }
        for (&slot, &expect) in &self.lines {
            let got = dev.byte_read(slot * 64, 64, Category::Data);
            let tag = got[0];
            if !got.iter().all(|b| *b == tag) {
                v.push(Violation::new(
                    "device-data",
                    format!("slot {slot}: torn cacheline (mixes byte values)"),
                ));
            } else if !expect.admits(tag) {
                v.push(Violation::new(
                    "device-data",
                    format!("slot {slot}: read tag {tag}, expected {expect:?}"),
                ));
            }
        }
        for (&page, &expect) in &self.pages {
            let got = dev.block_read(BLOCK_BASE + page, 1, Category::Data);
            let tag = got[0];
            if !got.iter().all(|b| *b == tag) {
                v.push(Violation::new(
                    "device-data",
                    format!("block page {page}: torn page (mixes byte values)"),
                ));
            } else if !expect.admits(tag) {
                v.push(Violation::new(
                    "device-data",
                    format!("block page {page}: read tag {tag}, expected {expect:?}"),
                ));
            }
        }
        for (&lba, &expect) in &self.pages_abs {
            let got = dev.block_read(lba, 1, Category::Data);
            let tag = got[0];
            if !got.iter().all(|b| *b == tag) {
                v.push(Violation::new(
                    "device-data",
                    format!("lba {lba}: torn page (mixes byte values)"),
                ));
            } else if !expect.admits(tag) {
                v.push(Violation::new(
                    "device-data",
                    format!("lba {lba}: read tag {tag}, expected {expect:?}"),
                ));
            }
        }
        for problem in dev.check_consistency() {
            v.push(Violation::new("mssd-ftl", problem));
        }
        v
    }
}

// ---------------------------------------------------------------------------
// Multi-queue device stress (in-flight commands on several queues)
// ---------------------------------------------------------------------------

/// Multi-queue crash scenario: three [`mssd::HostQueue`]s over disjoint
/// partitions, driven round-robin from one thread (crashkit workloads must
/// be deterministic) with batched doorbells, coalescible adjacent byte
/// writes, transactional batches with in-batch `COMMIT`s, block writes,
/// TRIMs and FLUSHes. The power cut lands with commands in flight in three
/// distinct states, and the oracle holds the queue contract:
///
/// * commands whose **completion was produced** — even if the host never
///   polled it — are durable under the normal rules (non-transactional
///   writes immediately, transactional writes at their commit);
/// * the one command group the cut landed **inside** is in-doubt (old or
///   new value, never torn);
/// * commands still sitting in a submission queue (**unsubmitted** to the
///   firmware: the doorbell never consumed them) must have *no* durable
///   effect — the old value must survive recovery.
#[derive(Debug, Clone)]
pub struct DeviceMqStress {
    /// Number of submission rounds (each round feeds every queue a small
    /// batch and rings its doorbell).
    pub rounds: usize,
}

/// Queues (= 16 MB partitions) the scenario drives.
const MQ_QUEUES: usize = 3;
/// 64-byte slots per queue partition.
const MQ_SLOTS: u64 = 64;
/// Block pages per queue inside the block partition (partition
/// [`MQ_QUEUES`]).
const MQ_BLOCK_PAGES: u64 = 8;

impl DeviceMqStress {
    /// A stream sized so the crash-point space comfortably exceeds a few
    /// hundred steps while a sweep stays fast.
    pub fn quick() -> Self {
        Self { rounds: 40 }
    }
}

/// What one submitted multi-queue command will do, for the oracle's
/// bookkeeping (absolute line index = device address / 64).
#[derive(Debug, Clone)]
enum MqCmd {
    /// Byte write of one cacheline, tagged with its transaction id if any.
    Line { line: u64, tag: u8, txid: Option<u32> },
    /// `COMMIT` of one specific transaction. Carries the id because a
    /// doorbell-skipped round can leave this commit in the SQ while the
    /// next round already writes under the successor transaction — the
    /// commit must only cover its own transaction's writes.
    Commit { txid: u32 },
    /// Block write of one page.
    Page { lba: u64, tag: u8 },
    /// TRIM of one page.
    TrimPage { lba: u64 },
    /// FLUSH (no oracle effect).
    Flush,
}

impl Scenario for DeviceMqStress {
    fn device_config(&self) -> MssdConfig {
        let mut cfg = MssdConfig::small_test();
        // MQ_QUEUES byte partitions plus one block partition.
        cfg.capacity_bytes = (MQ_QUEUES as u64 + 1) * (16 << 20);
        // Small log region with the threshold pushed out, as in
        // DeviceStress: space admission failures drive seal-drain crash
        // points under multi-queue traffic too.
        cfg.dram_region_bytes = 16 << 10;
        cfg.log_clean_threshold = 0.999;
        cfg
    }

    fn run(&self, dev: &Arc<Mssd>, seed: u64) -> Box<dyn Oracle> {
        let page_size = dev.page_size() as u64;
        let partition_pages = (16u64 << 20) / page_size;
        let block_base = MQ_QUEUES as u64 * partition_pages;
        let mut rng = Rng::new(seed);
        let mut o = DeviceOracle::default();
        let mut queues: Vec<mssd::HostQueue> = (0..MQ_QUEUES).map(|_| dev.open_queue(32)).collect();
        // Per queue: descriptors of commands sitting in the SQ (front =
        // oldest), the running TxId, and (slot, tag, txid) writes awaiting
        // their commit.
        let mut in_flight: Vec<Vec<MqCmd>> = vec![Vec::new(); MQ_QUEUES];
        let mut tx: Vec<TxId> = (0..MQ_QUEUES).map(|q| TxId((q as u32 + 1) << 16)).collect();
        let mut pending_tx: Vec<Vec<(u64, u8, u32)>> = vec![Vec::new(); MQ_QUEUES];

        'rounds: for _ in 0..self.rounds {
            for q in 0..MQ_QUEUES {
                // Submit a small batch: a coalescible run of byte writes,
                // then sometimes a commit / block op / trim / flush.
                let base_slot = rng.below(MQ_SLOTS);
                let run_len = 1 + rng.below(4);
                let tag = 1 + rng.below(250) as u8;
                let transactional = rng.below(3) == 0;
                for i in 0..run_len {
                    let slot = (base_slot + i) % MQ_SLOTS;
                    let line = q as u64 * (16 << 20) / 64 + slot;
                    let cmd = mssd::Command::ByteWrite {
                        addr: line * 64,
                        data: vec![tag.wrapping_add(i as u8); 64],
                        txid: transactional.then_some(tx[q]),
                        cat: Category::Data,
                    };
                    if queues[q].submit(cmd).is_ok() {
                        in_flight[q].push(MqCmd::Line {
                            line,
                            tag: tag.wrapping_add(i as u8),
                            txid: transactional.then_some(tx[q].0),
                        });
                    }
                }
                match rng.below(10) {
                    0 | 1 if transactional => {
                        let cmd = mssd::Command::Commit { txid: tx[q] };
                        if queues[q].submit(cmd).is_ok() {
                            in_flight[q].push(MqCmd::Commit { txid: tx[q].0 });
                            // Advance at *submit*, not at consumption: a
                            // skipped doorbell must not let the next round
                            // reuse a TxId whose commit record is already
                            // queued — the record would retroactively
                            // commit the later writes on the device while
                            // the oracle still expects their old values.
                            tx[q] = TxId(tx[q].0 + 1);
                        }
                    }
                    2 | 3 => {
                        let lba =
                            block_base + q as u64 * MQ_BLOCK_PAGES + rng.below(MQ_BLOCK_PAGES);
                        let ptag = 1 + rng.below(250) as u8;
                        let cmd = mssd::Command::BlockWrite {
                            lba,
                            data: vec![ptag; page_size as usize],
                            cat: Category::Data,
                        };
                        if queues[q].submit(cmd).is_ok() {
                            in_flight[q].push(MqCmd::Page { lba, tag: ptag });
                        }
                    }
                    4 => {
                        let lba =
                            block_base + q as u64 * MQ_BLOCK_PAGES + rng.below(MQ_BLOCK_PAGES);
                        if queues[q].submit(mssd::Command::Trim { lba, count: 1 }).is_ok() {
                            in_flight[q].push(MqCmd::TrimPage { lba });
                        }
                    }
                    5 => {
                        let cmd = mssd::Command::Flush;
                        if queues[q].submit(cmd).is_ok() {
                            in_flight[q].push(MqCmd::Flush);
                        }
                    }
                    _ => {}
                }
            }
            // Ring every doorbell round-robin; some rounds leave one queue
            // un-rung so the cut also catches whole batches unsubmitted.
            let skip =
                if rng.below(4) == 0 { Some(rng.below(MQ_QUEUES as u64) as usize) } else { None };
            for q in 0..MQ_QUEUES {
                if Some(q) == skip && !dev.fault_tripped() {
                    continue;
                }
                let before = in_flight[q].len();
                let delivered = queues[q].ring_doorbell();
                let consumed = before - queues[q].pending();
                let cmds: Vec<MqCmd> = in_flight[q].drain(..consumed).collect();
                for (i, cmd) in cmds.into_iter().enumerate() {
                    let completed = i < delivered;
                    apply_mq_cmd(&mut o, &mut pending_tx[q], cmd, completed);
                }
                if dev.fault_tripped() {
                    break 'rounds;
                }
            }
        }
        // Commands still in a submission queue at the cut (or at stream
        // end): never executed, no durable effect — the oracle's recorded
        // old values stand, and uncommitted transactional writes die with
        // the commit record they never got.
        drop(queues);
        Box::new(o)
    }
}

/// Applies one consumed multi-queue command to the oracle. `completed`
/// means its completion was produced (durable under the normal rules);
/// otherwise the cut landed inside its group and it is in-doubt.
fn apply_mq_cmd(
    o: &mut DeviceOracle,
    pending: &mut Vec<(u64, u8, u32)>,
    cmd: MqCmd,
    completed: bool,
) {
    match cmd {
        MqCmd::Line { line, tag, txid } => {
            if let Some(t) = txid {
                if completed {
                    pending.push((line, tag, t));
                }
                // In-doubt transactional write: its commit never executed,
                // so recovery discards the chunk either way — the old value
                // stands and the oracle entry is untouched.
            } else if completed {
                // A completed non-transactional write overshadows any older
                // pending transactional write to the same slot (newer seq
                // wins the merge).
                pending.retain(|(l, _, _)| *l != line);
                o.lines.insert(line, Expect::Exactly(tag));
            } else {
                let old = o.line_tag(line);
                o.lines.insert(line, Expect::Either(old, tag));
            }
        }
        MqCmd::Commit { txid } => {
            // Only this transaction's writes become durable; pending
            // entries of a successor transaction (written after this
            // commit entered the SQ) keep waiting for their own commit.
            // Push order = consumption order = device seq order, so later
            // inserts correctly overwrite earlier ones per slot.
            let (mine, keep): (Vec<_>, Vec<_>) =
                pending.drain(..).partition(|(_, _, t)| *t == txid);
            *pending = keep;
            if completed {
                for (line, tag, _) in mine {
                    o.lines.insert(line, Expect::Exactly(tag));
                }
            } else {
                // Whether the commit record made it decides the whole batch
                // at once; per slot only the newest pending tag can win,
                // and "old" is the pre-batch value (snapshot before any
                // insert, as in DeviceStress).
                let mut newest: BTreeMap<u64, u8> = BTreeMap::new();
                for (line, tag, _) in mine {
                    newest.insert(line, tag);
                }
                for (line, tag) in newest {
                    let old = o.line_tag(line);
                    o.lines.insert(line, Expect::Either(old, tag));
                }
            }
        }
        MqCmd::Page { lba, tag } => {
            if completed {
                o.pages_abs.insert(lba, Expect::Exactly(tag));
            } else {
                let old = o.page_abs_tag(lba);
                o.pages_abs.insert(lba, Expect::Either(old, tag));
            }
        }
        MqCmd::TrimPage { lba } => {
            // TRIM is atomic (no internal fault step); only a completed one
            // has an effect.
            if completed {
                o.pages_abs.insert(lba, Expect::Exactly(0));
            }
        }
        MqCmd::Flush => {}
    }
}

// ---------------------------------------------------------------------------
// Async-runtime device stress (futures multiplexed over reactor lanes)
// ---------------------------------------------------------------------------

/// Logical clients the async stress spawns as futures.
const ASYNC_CLIENTS: usize = 6;
/// Reactor lanes (queue pairs) the clients share — three clients per lane.
const ASYNC_LANES: usize = 2;
/// SQ depth per lane: shallow enough that one client's batch can fill the
/// lane and the others must *park* for capacity, so the cut also lands with
/// submitters suspended in the backpressure queue.
const ASYNC_DEPTH: usize = 4;
/// 64-byte cacheline slots per client (disjoint ranges in partition 0).
const ASYNC_SLOTS: u64 = 48;
/// Block pages per client (disjoint ranges in partition 1).
const ASYNC_PAGES: u64 = 6;

/// Async-runtime crash scenario: `ASYNC_CLIENTS` logical clients submit
/// seeded command batches as futures through one [`mssd::Runtime`] in
/// deterministic zero-worker mode — the enumerating thread drives the
/// executor, so the same seed replays the same interleaving exactly. The
/// clients share `ASYNC_LANES` reactor lanes of depth `ASYNC_DEPTH`,
/// which keeps submitters parking for capacity; the power cut therefore
/// lands with futures in every terminal state the runtime distinguishes,
/// and the oracle holds the typed contract:
///
/// * a future resolving `Ok(completion)` — even if nothing ever read the
///   result — is durable under the normal rules (non-transactional writes
///   immediately, transactional writes at their commit);
/// * [`mssd::SubmitError::CutConsumed`] means the cut landed inside the
///   command's (possibly coalesced) group: in doubt, old or new value but
///   never torn;
/// * [`mssd::SubmitError::CutUnsubmitted`] (parked at the cut, stranded in
///   the SQ, or submitted after power failed) must have **no** durable
///   effect.
///
/// Clients write disjoint cacheline and block-page ranges, so per-location
/// device write order is each client's own submission order and the oracle
/// composes client by client via `apply_mq_cmd`.
#[derive(Debug, Clone)]
pub struct DeviceAsyncStress {
    /// Number of batches each client submits.
    pub rounds: usize,
}

impl DeviceAsyncStress {
    /// A stream sized so the crash-point space comfortably exceeds a few
    /// hundred steps while a sweep stays fast.
    pub fn quick() -> Self {
        Self { rounds: 28 }
    }
}

impl Scenario for DeviceAsyncStress {
    fn device_config(&self) -> MssdConfig {
        let mut cfg = MssdConfig::small_test();
        // Partition 0 holds the clients' byte slots, partition 1 their
        // block pages.
        cfg.capacity_bytes = 32 << 20;
        // Small log region, threshold pushed out: space admission failures
        // drive foreground seal + drain crash points under async traffic.
        cfg.dram_region_bytes = 16 << 10;
        cfg.log_clean_threshold = 0.999;
        cfg
    }

    fn run(&self, dev: &Arc<Mssd>, seed: u64) -> Box<dyn Oracle> {
        let rt = mssd::Runtime::new(dev, 0, ASYNC_LANES, ASYNC_DEPTH);
        let page_size = dev.page_size() as u64;
        let block_base = (16u64 << 20) / page_size; // partition 1
        let rounds = self.rounds;

        let handles: Vec<_> = (0..ASYNC_CLIENTS)
            .map(|c| {
                let reactor = Arc::clone(rt.reactor());
                let dev = Arc::clone(dev);
                rt.spawn(async move {
                    let mut rng = Rng::new(seed.wrapping_add((c as u64 + 1) << 8));
                    let mut tx = TxId(((c as u32) + 1) << 16);
                    let lane = reactor.lane_for(c);
                    let line_base = c as u64 * ASYNC_SLOTS;
                    let page_base = block_base + c as u64 * ASYNC_PAGES;
                    let mut log: Vec<(MqCmd, Result<(), mssd::SubmitError>)> = Vec::new();
                    for _ in 0..rounds {
                        // A coalescible run of adjacent byte writes, with a
                        // tail op appended to some batches.
                        let run_len = 1 + rng.below(3);
                        let base_slot = rng.below(ASYNC_SLOTS - run_len);
                        let tag = 1 + rng.below(250) as u8;
                        let transactional = rng.below(3) == 0;
                        let mut cmds = Vec::new();
                        let mut descs = Vec::new();
                        for i in 0..run_len {
                            let line = line_base + base_slot + i;
                            let t = tag.wrapping_add(i as u8);
                            cmds.push(mssd::Command::ByteWrite {
                                addr: line * 64,
                                data: vec![t; 64],
                                txid: transactional.then_some(tx),
                                cat: Category::Data,
                            });
                            descs.push(MqCmd::Line {
                                line,
                                tag: t,
                                txid: transactional.then_some(tx.0),
                            });
                        }
                        match rng.below(8) {
                            0 if transactional => {
                                cmds.push(mssd::Command::Commit { txid: tx });
                                descs.push(MqCmd::Commit { txid: tx.0 });
                                // Advance at submission, exactly as the
                                // multi-queue stress does.
                                tx = TxId(tx.0 + 1);
                            }
                            1 | 2 => {
                                let lba = page_base + rng.below(ASYNC_PAGES);
                                let ptag = 1 + rng.below(250) as u8;
                                cmds.push(mssd::Command::BlockWrite {
                                    lba,
                                    data: vec![ptag; page_size as usize],
                                    cat: Category::Data,
                                });
                                descs.push(MqCmd::Page { lba, tag: ptag });
                            }
                            3 => {
                                let lba = page_base + rng.below(ASYNC_PAGES);
                                cmds.push(mssd::Command::Trim { lba, count: 1 });
                                descs.push(MqCmd::TrimPage { lba });
                            }
                            4 => {
                                cmds.push(mssd::Command::Flush);
                                descs.push(MqCmd::Flush);
                            }
                            _ => {}
                        }
                        let outcomes = reactor.submit_batch(lane, cmds).await;
                        for (desc, out) in descs.into_iter().zip(outcomes) {
                            log.push((desc, out.map(|_| ())));
                        }
                        if dev.fault_tripped() {
                            break; // remaining submits would all be dead
                        }
                    }
                    log
                })
            })
            .collect();
        let logs = rt.block_on(async move {
            let mut v = Vec::with_capacity(handles.len());
            for h in handles {
                v.push(h.await);
            }
            v
        });

        // Locations are disjoint per client, so replaying each client's log
        // in its own submission order reconstructs per-location device
        // order.
        let mut o = DeviceOracle::default();
        for log in logs {
            let mut pending: Vec<(u64, u8, u32)> = Vec::new();
            for (cmd, outcome) in log {
                match outcome {
                    Ok(()) => apply_mq_cmd(&mut o, &mut pending, cmd, true),
                    Err(mssd::SubmitError::CutConsumed) => {
                        apply_mq_cmd(&mut o, &mut pending, cmd, false)
                    }
                    // Never executed: the recorded old value stands.
                    Err(mssd::SubmitError::CutUnsubmitted) => {}
                }
            }
        }
        Box::new(o)
    }
}

// ---------------------------------------------------------------------------
// ByteFS file-system stress
// ---------------------------------------------------------------------------

/// File-system-level crash scenario on ByteFS: seeded mix of durable ops
/// (`write_file` = create/overwrite + fsync, `mkdir`, `rename`, `unlink`,
/// shrinking `truncate` + fsync). Every completed op must survive the crash
/// exactly; the in-doubt op may land either way (but never tear).
#[derive(Debug, Clone)]
pub struct FsStress {
    /// Number of file-system ops in the stream.
    pub ops: usize,
}

impl FsStress {
    /// Default stream for sweeps.
    pub fn quick() -> Self {
        Self { ops: 48 }
    }
}

/// The one op whose transaction the cut may have straddled.
#[derive(Debug, Clone)]
enum InDoubt {
    /// Power died during `format`: no file system exists to verify.
    Format,
    /// `write_file` (create or overwrite): any of absent / old / new /
    /// empty is acceptable; content equality is only enforced when the new
    /// size matches.
    WriteFile { path: String, old: Option<Vec<u8>>, new: Vec<u8> },
    /// `mkdir`: the directory may or may not exist.
    Mkdir { path: String },
    /// `unlink`: the file is gone, or still there with its old content.
    Unlink { path: String, old: Vec<u8> },
    /// `rename`: exactly one of the names exists, carrying the content.
    Rename { from: String, to: String, content: Vec<u8> },
    /// shrinking `truncate`: old size or new size, content prefix intact.
    Truncate { path: String, old: Vec<u8>, new_len: usize },
}

impl Scenario for FsStress {
    fn device_config(&self) -> MssdConfig {
        let mut cfg = MssdConfig::small_test();
        cfg.capacity_bytes = 64 << 20;
        cfg
    }

    fn run(&self, dev: &Arc<Mssd>, seed: u64) -> Box<dyn Oracle> {
        let mut o = FsOracle {
            files: BTreeMap::new(),
            dirs: vec!["/".into()],
            in_doubt: None,
            formatted: false,
        };
        let fs = match ByteFs::format(Arc::clone(dev), ByteFsConfig::full()) {
            Ok(fs) => fs,
            Err(_) => {
                o.in_doubt = Some(InDoubt::Format);
                return Box::new(o);
            }
        };
        if dev.fault_tripped() {
            o.in_doubt = Some(InDoubt::Format);
            return Box::new(o);
        }
        o.formatted = true;

        let mut rng = Rng::new(seed);
        let mut serial = 0usize;
        for _ in 0..self.ops {
            let roll = rng.below(100);
            let in_doubt: InDoubt;
            match roll {
                // Create a fresh fsynced file in a random directory.
                0..=39 => {
                    let dir = o.dirs[rng.below(o.dirs.len() as u64) as usize].clone();
                    let path =
                        if dir == "/" { format!("/f{serial}") } else { format!("{dir}/f{serial}") };
                    serial += 1;
                    let tag = 1 + rng.below(250) as u8;
                    let len = 64 + rng.below(6000) as usize;
                    let content = vec![tag; len];
                    in_doubt =
                        InDoubt::WriteFile { path: path.clone(), old: None, new: content.clone() };
                    fs.write_file(&path, &content).ok();
                    if !dev.fault_tripped() {
                        o.files.insert(path, content);
                    }
                }
                // Overwrite an existing file (fsynced).
                40..=54 => {
                    let Some(path) = nth_key(&o.files, rng.next_u64()) else { continue };
                    let tag = 1 + rng.below(250) as u8;
                    let len = 64 + rng.below(6000) as usize;
                    let content = vec![tag; len];
                    in_doubt = InDoubt::WriteFile {
                        path: path.clone(),
                        old: o.files.get(&path).cloned(),
                        new: content.clone(),
                    };
                    fs.write_file(&path, &content).ok();
                    if !dev.fault_tripped() {
                        o.files.insert(path, content);
                    }
                }
                // mkdir.
                55..=64 => {
                    let path = format!("/d{serial}");
                    serial += 1;
                    in_doubt = InDoubt::Mkdir { path: path.clone() };
                    fs.mkdir(&path).ok();
                    if !dev.fault_tripped() {
                        o.dirs.push(path);
                    }
                }
                // Rename a file to a fresh name in its directory.
                65..=74 => {
                    let Some(from) = nth_key(&o.files, rng.next_u64()) else { continue };
                    let to = match from.rfind('/') {
                        Some(0) => format!("/r{serial}"),
                        Some(i) => format!("{}/r{serial}", &from[..i]),
                        None => format!("/r{serial}"),
                    };
                    serial += 1;
                    let content = o.files[&from].clone();
                    in_doubt = InDoubt::Rename { from: from.clone(), to: to.clone(), content };
                    fs.rename(&from, &to).ok();
                    if !dev.fault_tripped() {
                        let c = o.files.remove(&from).expect("tracked");
                        o.files.insert(to, c);
                    }
                }
                // Unlink.
                75..=87 => {
                    let Some(path) = nth_key(&o.files, rng.next_u64()) else { continue };
                    in_doubt = InDoubt::Unlink { path: path.clone(), old: o.files[&path].clone() };
                    fs.unlink(&path).ok();
                    if !dev.fault_tripped() {
                        o.files.remove(&path);
                    }
                }
                // Shrinking truncate + fsync.
                _ => {
                    let Some(path) = nth_key(&o.files, rng.next_u64()) else { continue };
                    let old = o.files[&path].clone();
                    if old.len() < 2 {
                        continue;
                    }
                    let new_len = (rng.below(old.len() as u64 - 1) + 1) as usize;
                    in_doubt = InDoubt::Truncate { path: path.clone(), old: old.clone(), new_len };
                    if let Ok(fd) = fs.open(&path, OpenFlags::read_write()) {
                        fs.truncate(fd, new_len as u64).ok();
                        fs.fsync(fd).ok();
                        fs.close(fd).ok();
                    }
                    if !dev.fault_tripped() {
                        o.files.get_mut(&path).expect("tracked").truncate(new_len);
                    }
                }
            }
            if dev.fault_tripped() {
                o.in_doubt = Some(in_doubt);
                break;
            }
        }
        // The crashed host's in-memory fs state dies here; only the device
        // image carries on.
        Box::new(o)
    }
}

/// Expected durable file-system state of an [`FsStress`] run.
struct FsOracle {
    files: BTreeMap<String, Vec<u8>>,
    dirs: Vec<String>,
    in_doubt: Option<InDoubt>,
    formatted: bool,
}

impl FsOracle {
    /// Paths the in-doubt op may legitimately have altered; exact checks
    /// skip them.
    fn in_doubt_paths(&self) -> Vec<&str> {
        match &self.in_doubt {
            Some(InDoubt::WriteFile { path, .. })
            | Some(InDoubt::Mkdir { path })
            | Some(InDoubt::Unlink { path, .. })
            | Some(InDoubt::Truncate { path, .. }) => vec![path],
            Some(InDoubt::Rename { from, to, .. }) => vec![from, to],
            Some(InDoubt::Format) | None => vec![],
        }
    }
}

impl Oracle for FsOracle {
    fn verify(&self, dev: &Arc<Mssd>) -> Vec<Violation> {
        let mut v = Vec::new();
        dev.recover();
        if !self.formatted {
            // Power died during mkfs: there is nothing mountable to check,
            // only device-level invariants.
            for problem in dev.check_consistency() {
                v.push(Violation::new("mssd-ftl", problem));
            }
            return v;
        }
        let fs = match ByteFs::mount(Arc::clone(dev), ByteFsConfig::full()) {
            Ok(fs) => fs,
            Err(e) => {
                v.push(Violation::new("fs-mount", format!("remount failed: {e}")));
                return v;
            }
        };
        let skip = self.in_doubt_paths();
        for (path, content) in &self.files {
            if skip.contains(&path.as_str()) {
                continue;
            }
            match fs.read_file(path) {
                Ok(got) if &got == content => {}
                Ok(got) => v.push(Violation::new(
                    "fs-data",
                    format!(
                        "{path}: {} bytes read, {} expected (content diverged)",
                        got.len(),
                        content.len()
                    ),
                )),
                Err(e) => v.push(Violation::new(
                    "fs-data",
                    format!("{path}: completed fsynced write lost ({e})"),
                )),
            }
        }
        for dir in &self.dirs {
            if skip.contains(&dir.as_str()) {
                continue;
            }
            if !fs.exists(dir) {
                v.push(Violation::new("fs-namespace", format!("{dir}: committed mkdir lost")));
            }
        }
        // The in-doubt op may have landed either way — but never torn.
        match &self.in_doubt {
            None | Some(InDoubt::Format) => {}
            Some(InDoubt::WriteFile { path, old, new }) => {
                if let Ok(got) = fs.read_file(path) {
                    let ok = got.is_empty()
                        || Some(&got) == old.as_ref()
                        || &got == new
                        // An overwrite tears at page granularity inside the
                        // host cache writeback; sizes must still be one of
                        // the two.
                        || old.as_ref().is_some_and(|o| got.len() == o.len())
                        || got.len() == new.len();
                    if !ok {
                        v.push(Violation::new(
                            "fs-data",
                            format!("{path}: in-doubt write left an impossible size {}", got.len()),
                        ));
                    }
                }
            }
            Some(InDoubt::Mkdir { .. }) => {}
            Some(InDoubt::Unlink { path, old }) => {
                if let Ok(got) = fs.read_file(path) {
                    if &got != old {
                        v.push(Violation::new(
                            "fs-data",
                            format!(
                                "{path}: in-doubt unlink left {} bytes, expected the old {} \
                                 (pre-commit TRIM would zero this)",
                                got.len(),
                                old.len()
                            ),
                        ));
                    }
                }
            }
            Some(InDoubt::Rename { from, to, content }) => {
                let at_from = fs.read_file(from).ok();
                let at_to = fs.read_file(to).ok();
                match (at_from, at_to) {
                    (Some(c), None) | (None, Some(c)) => {
                        if &c != content {
                            v.push(Violation::new(
                                "fs-data",
                                format!("{from} -> {to}: rename changed the file's content"),
                            ));
                        }
                    }
                    (Some(_), Some(_)) => v.push(Violation::new(
                        "fs-namespace",
                        format!("{from} -> {to}: file visible under both names"),
                    )),
                    (None, None) => v.push(Violation::new(
                        "fs-namespace",
                        format!("{from} -> {to}: file vanished during rename"),
                    )),
                }
            }
            Some(InDoubt::Truncate { path, old, new_len }) => match fs.read_file(path) {
                Ok(got) => {
                    let ok = (got.len() == *new_len && got[..] == old[..*new_len])
                        || (got.len() == old.len() && got == *old);
                    if !ok {
                        v.push(Violation::new(
                            "fs-data",
                            format!(
                                "{path}: in-doubt truncate left {} bytes (old {}, new {}) \
                                     or corrupted the prefix",
                                got.len(),
                                old.len(),
                                new_len
                            ),
                        ));
                    }
                }
                Err(e) => v.push(Violation::new(
                    "fs-data",
                    format!("{path}: file lost by a truncate ({e})"),
                )),
            },
        }
        v.extend(fs.fsck());
        v
    }
}

fn nth_key(map: &BTreeMap<String, Vec<u8>>, r: u64) -> Option<String> {
    if map.is_empty() {
        return None;
    }
    map.keys().nth((r as usize) % map.len()).cloned()
}

// ---------------------------------------------------------------------------
// KV-store stress (WAL tail recovery)
// ---------------------------------------------------------------------------

/// KV-store crash scenario: unique-key puts through [`kvstore::Db`] on
/// ByteFS with group-committed WAL syncs and periodic explicit flushes. The
/// oracle pins the WAL-tail contract: reopening the database after *any*
/// crash point must succeed (a torn final record truncates instead of
/// erroring), every put up to the last completed flush must be present, and
/// later puts are each present-or-absent but never corrupt.
#[derive(Debug, Clone)]
pub struct KvStress {
    /// Number of puts in the stream.
    pub puts: usize,
    /// A `db.flush()` is issued after every `flush_every` puts.
    pub flush_every: usize,
}

impl KvStress {
    /// Default stream for sweeps.
    pub fn quick() -> Self {
        Self { puts: 40, flush_every: 16 }
    }

    fn value(i: usize) -> Vec<u8> {
        // Long enough that records regularly straddle page boundaries in
        // the WAL file — the torn-tail shape the checksums must catch.
        vec![(i % 251) as u8; 350 + (i * 37) % 300]
    }

    fn options() -> DbOptions {
        DbOptions {
            memtable_bytes: 8 << 10,
            compaction_threshold: 3,
            wal_sync: WalSync::Periodic(4),
        }
    }
}

impl Scenario for KvStress {
    fn device_config(&self) -> MssdConfig {
        let mut cfg = MssdConfig::small_test();
        cfg.capacity_bytes = 64 << 20;
        cfg
    }

    fn run(&self, dev: &Arc<Mssd>, seed: u64) -> Box<dyn Oracle> {
        let _ = seed; // the stream is fixed; the seed varies only the cut
        let mut o = KvOracle {
            flush_every: self.flush_every,
            completed_puts: 0,
            durable_puts: 0,
            opened: false,
        };
        let Ok(fs) = ByteFs::format(Arc::clone(dev), ByteFsConfig::full()) else {
            return Box::new(o);
        };
        if dev.fault_tripped() {
            return Box::new(o);
        }
        let Ok(db) = Db::open(fs, "/db", Self::options()) else {
            return Box::new(o);
        };
        if dev.fault_tripped() {
            return Box::new(o);
        }
        o.opened = true;
        for i in 0..self.puts {
            db.put(format!("key{i:05}").as_bytes(), &Self::value(i)).ok();
            if dev.fault_tripped() {
                return Box::new(o);
            }
            o.completed_puts = i + 1;
            if (i + 1) % self.flush_every == 0 {
                db.flush().ok();
                if dev.fault_tripped() {
                    return Box::new(o);
                }
                o.durable_puts = i + 1;
            }
        }
        db.close().ok();
        if !dev.fault_tripped() {
            o.durable_puts = self.puts;
        }
        Box::new(o)
    }
}

/// Expected durable KV state of a [`KvStress`] run.
struct KvOracle {
    flush_every: usize,
    /// Puts whose `put()` call returned before the cut.
    completed_puts: usize,
    /// Puts known durable (last completed explicit flush / clean close).
    durable_puts: usize,
    /// Whether the database finished opening before the cut.
    opened: bool,
}

impl Oracle for KvOracle {
    fn verify(&self, dev: &Arc<Mssd>) -> Vec<Violation> {
        let mut v = Vec::new();
        dev.recover();
        if !self.opened {
            for problem in dev.check_consistency() {
                v.push(Violation::new("mssd-ftl", problem));
            }
            return v;
        }
        let fs = match ByteFs::mount(Arc::clone(dev), ByteFsConfig::full()) {
            Ok(fs) => fs,
            Err(e) => {
                v.push(Violation::new("fs-mount", format!("remount failed: {e}")));
                return v;
            }
        };
        // The WAL-tail contract: reopening must always succeed — a torn
        // final record truncates cleanly instead of erroring out.
        let db = match Db::open(fs.clone(), "/db", KvStress::options()) {
            Ok(db) => db,
            Err(e) => {
                v.push(Violation::new(
                    "wal-tail",
                    format!("Db::open failed after crash (torn WAL tail not recovered): {e}"),
                ));
                return v;
            }
        };
        for i in 0..self.durable_puts {
            let key = format!("key{i:05}");
            match db.get(key.as_bytes()) {
                Ok(Some(val)) if val == KvStress::value(i) => {}
                Ok(Some(_)) => v.push(Violation::new(
                    "kv-data",
                    format!("{key}: value corrupted after recovery"),
                )),
                Ok(None) => v.push(Violation::new(
                    "kv-data",
                    format!("{key}: flushed put lost (durable through put {})", self.durable_puts),
                )),
                Err(e) => v.push(Violation::new("kv-data", format!("{key}: read failed: {e}"))),
            }
        }
        // Later puts may or may not have reached the device, but whatever
        // survives must be byte-exact.
        for i in self.durable_puts..self.completed_puts {
            let key = format!("key{i:05}");
            if let Ok(Some(val)) = db.get(key.as_bytes()) {
                if val != KvStress::value(i) {
                    v.push(Violation::new(
                        "kv-data",
                        format!("{key}: surviving unsynced put is corrupt"),
                    ));
                }
            }
        }
        let _ = self.flush_every;
        v.extend(db.check_invariants());
        v.extend(fs.fsck());
        v
    }
}

// ---------------------------------------------------------------------------
// Baseline engines (device-level durability only)
// ---------------------------------------------------------------------------

/// Which baseline engine a [`BaselineStress`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// The Ext4-like block-journaling baseline.
    Ext4,
    /// The NOVA-like byte-interface log-structured baseline.
    Nova,
}

impl BaselineKind {
    /// Stable label for reports and the CI matrix.
    pub fn label(self) -> &'static str {
        match self {
            BaselineKind::Ext4 => "ext4like",
            BaselineKind::Nova => "novalike",
        }
    }
}

/// Crash scenario for the baseline engines. The baselines are measurement
/// stand-ins without a remountable on-disk format (see
/// `crates/baselines/src/lib.rs`), so the oracle checks what *is* durable
/// contract here: the engine's own structural invariants at the moment of
/// the cut (via its [`CrashConsistent`] impl), and the device's — the
/// restored image must recover into a consistent FTL with no log residue.
/// The crash points still exercise the whole PageCache-mode device path
/// (cache writes, evictions, journal writes, flushes, GC).
#[derive(Debug, Clone)]
pub struct BaselineStress {
    /// Which engine to drive.
    pub kind: BaselineKind,
    /// Number of file-system ops in the stream.
    pub ops: usize,
}

impl BaselineStress {
    /// Default stream for sweeps.
    pub fn quick(kind: BaselineKind) -> Self {
        Self { kind, ops: 60 }
    }
}

impl Scenario for BaselineStress {
    fn device_config(&self) -> MssdConfig {
        let mut cfg = MssdConfig::small_test();
        cfg.capacity_bytes = 64 << 20;
        // A small device cache so evictions and write-through traffic
        // produce flash crash points, not just cache writes.
        cfg.dram_region_bytes = 64 << 10;
        cfg
    }

    fn dram_mode(&self) -> DramMode {
        DramMode::PageCache
    }

    fn run(&self, dev: &Arc<Mssd>, seed: u64) -> Box<dyn Oracle> {
        match self.kind {
            BaselineKind::Ext4 => {
                let fs = Ext4Like::format(Arc::clone(dev));
                drive_baseline(fs, dev, seed, self.ops)
            }
            BaselineKind::Nova => {
                let fs = NovaLike::format(Arc::clone(dev));
                drive_baseline(fs, dev, seed, self.ops)
            }
        }
    }
}

/// Runs the baseline op stream on a concrete engine (the type must stay
/// concrete so both its [`FileSystem`] and [`CrashConsistent`] impls are
/// reachable), returning the oracle.
fn drive_baseline<F>(fs: Arc<F>, dev: &Arc<Mssd>, seed: u64, ops: usize) -> Box<dyn Oracle>
where
    F: FileSystem + CrashConsistent,
{
    let mut rng = Rng::new(seed);
    let mut serial = 0usize;
    let mut files: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for _ in 0..ops {
        if dev.fault_tripped() {
            break;
        }
        match rng.below(10) {
            0..=4 => {
                let path = format!("/f{serial}");
                serial += 1;
                let tag = 1 + rng.below(250) as u8;
                let len = 64 + rng.below(9000) as usize;
                let content = vec![tag; len];
                fs.write_file(&path, &content).ok();
                files.insert(path, content);
            }
            5 | 6 => {
                let Some(path) = nth_key(&files, rng.next_u64()) else { continue };
                let tag = 1 + rng.below(250) as u8;
                let content = vec![tag; 64 + rng.below(9000) as usize];
                fs.write_file(&path, &content).ok();
                files.insert(path, content);
            }
            7 => {
                let Some(path) = nth_key(&files, rng.next_u64()) else { continue };
                fs.unlink(&path).ok();
                files.remove(&path);
            }
            8 => {
                let Some(from) = nth_key(&files, rng.next_u64()) else { continue };
                let to = format!("/r{serial}");
                serial += 1;
                if fs.rename(&from, &to).is_ok() {
                    let c = files.remove(&from).expect("tracked");
                    files.insert(to, c);
                }
            }
            _ => {
                fs.sync().ok();
            }
        }
    }
    // The engine's own structural invariants must hold at the cut instant —
    // the device refused every post-cut mutation, and the host-side
    // structures must not have been corrupted by that.
    let pre_crash = fs.check_invariants();
    Box::new(BaselineOracle { pre_crash })
}

/// Oracle of a [`BaselineStress`] run: pre-crash engine invariants plus
/// post-restore device recovery checks.
struct BaselineOracle {
    pre_crash: Vec<Violation>,
}

impl Oracle for BaselineOracle {
    fn verify(&self, dev: &Arc<Mssd>) -> Vec<Violation> {
        let mut v = self.pre_crash.clone();
        // PageCache mode: recovery is a no-op scan, but flushing the
        // battery-backed cache pages to flash must leave the FTL coherent.
        dev.recover();
        dev.flush();
        for problem in dev.check_consistency() {
            v.push(Violation::new("mssd-ftl", problem));
        }
        v
    }
}

// ---------------------------------------------------------------------------
// Device-level media-fault stress
// ---------------------------------------------------------------------------

/// Mixed-op device workload under NAND media-fault injection: a seeded mix
/// of byte and block writes, read-back checks, TRIMs, flushes and seals
/// against a device whose [`mssd::MediaFaultPlan`] injects transient read
/// errors, permanent program failures and erase failures. Run to completion
/// (no power cut) it proves the RAS layer degrades gracefully — every media
/// casualty is absorbed by ECC/retry/remap or surfaced as a typed
/// [`mssd::FlashError`], never a panic or silent corruption. Under the regular
/// power-cut sweep it proves the durability contract and the persistent
/// bad-block table survive the overlap of both failure modes.
///
/// Because acknowledged data can legitimately be lost to a UECC, the oracle
/// tracks *allowed tag sets* per unit instead of exact expectations: an `Ok`
/// read must return an untorn unit carrying some tag that was actually
/// written there (or the initial zero), and an `Err` read must be the typed
/// transient kind.
#[derive(Debug, Clone)]
pub struct MediaStress {
    /// Number of ops in the stream.
    pub ops: usize,
    /// Media-fault rates installed on the device.
    pub media: MediaFaultConfig,
}

/// First logical page of the media stress's block region (512 KB into the
/// 1 MB device — well clear of the byte slots in the first pages).
const MEDIA_BLOCK_BASE: u64 = 128;

impl MediaStress {
    /// Rates tuned for the acceptance sweep on the shrunken geometry below:
    /// aggressive enough that the stream injects faults of all three kinds,
    /// gentle enough that the spare pool is not exhausted instantly —
    /// read-only degradation stays reachable, not guaranteed.
    pub fn quick() -> Self {
        Self {
            ops: 1500,
            media: MediaFaultConfig {
                seed: 0xBAD_B17,
                read_error_rate: 0.2,
                wear_factor: 0.2,
                hard_read_rate: 0.15,
                program_fail_rate: 0.005,
                erase_fail_rate: 0.15,
                ..MediaFaultConfig::default()
            },
        }
    }
}

impl Scenario for MediaStress {
    fn device_config(&self) -> MssdConfig {
        let mut cfg = MssdConfig::small_test();
        // A deliberately tiny device — 1 MB logical, 50% overprovision —
        // so the op stream actually cycles the block budget: GC erases
        // blocks (the only erase path, hence the only erase-failure prey)
        // and wear accumulates enough for the wear-scaled read-error rate
        // to matter. Byte slots live in the first pages, block pages at
        // [`MEDIA_BLOCK_BASE`]; the log region is kept tiny so seal +
        // drain migrations keep programming flash.
        cfg.capacity_bytes = 1 << 20;
        cfg.overprovision = 0.5;
        cfg.dram_region_bytes = 8 << 10;
        cfg.log_clean_threshold = 0.999;
        cfg.media = MediaFaultPlan::new(self.media.clone());
        cfg
    }

    fn run(&self, dev: &Arc<Mssd>, seed: u64) -> Box<dyn Oracle> {
        let mut rng = Rng::new(seed);
        let mut o = MediaOracle::default();
        let mut live = Vec::new();
        for _ in 0..self.ops {
            match rng.below(100) {
                // Byte write. A failed write may still have had partial
                // durable effect (read-only tripping mid-op), so the tag is
                // allowed whether the op succeeded or not; the old tags stay
                // allowed because the set never shrinks.
                0..=29 => {
                    let slot = rng.below(SLOTS);
                    let tag = 1 + rng.below(250) as u8;
                    let _ = dev.try_byte_write(slot * 64, &[tag; 64], None, Category::Data);
                    o.allow_line(slot, tag);
                }
                // Block write of 1-2 pages, torn per page.
                30..=54 => {
                    let start = rng.below(BLOCK_PAGES - 1);
                    let count = 1 + rng.below(2);
                    let tag = 1 + rng.below(250) as u8;
                    let _ = dev.try_block_write(
                        MEDIA_BLOCK_BASE + start,
                        &vec![tag; (count * 4096) as usize],
                        Category::Data,
                    );
                    for p in start..start + count {
                        o.allow_page(p, tag);
                    }
                }
                // Byte read-back check against the allowed set.
                55..=69 => {
                    let slot = rng.below(SLOTS);
                    o.check_line(dev, slot, "media-live", &mut live);
                }
                // Block read-back check.
                70..=79 => {
                    let p = rng.below(BLOCK_PAGES);
                    o.check_page(dev, p, "media-live", &mut live);
                }
                // TRIM one block page (it reads as zero afterwards; zero is
                // always allowed, so no oracle update is needed).
                80..=84 => dev.trim(MEDIA_BLOCK_BASE + rng.below(BLOCK_PAGES), 1),
                // NVMe FLUSH (fallible: read-only degradation surfaces here).
                85..=94 => {
                    let _ = dev.try_flush();
                }
                // Seal every shard's active log region.
                _ => dev.seal_log_regions(),
            }
            if dev.fault_tripped() {
                break;
            }
        }
        o.live = live;
        o.bad_blocks_at_cut = dev.bad_blocks();
        Box::new(o)
    }
}

/// Expected durable state of a [`MediaStress`] run: per-unit allowed tag
/// sets plus the bad-block table captured when the run ended.
#[derive(Debug, Default)]
struct MediaOracle {
    /// Cacheline slot → every tag ever written there. Zero (erased /
    /// never-written / trimmed) is always allowed.
    lines: BTreeMap<u64, BTreeSet<u8>>,
    /// Block-region page (relative to [`MEDIA_BLOCK_BASE`]) → tags ever written.
    pages: BTreeMap<u64, BTreeSet<u8>>,
    /// Violations observed while the workload was still running: a read
    /// that returned a never-written tag, a torn unit, or a non-transient
    /// error escaping the typed degradation contract.
    live: Vec<Violation>,
    /// Bad blocks known when the run ended; the table is persistent, so the
    /// restored device must still know every one of them.
    bad_blocks_at_cut: Vec<u64>,
}

impl MediaOracle {
    fn allow_line(&mut self, slot: u64, tag: u8) {
        self.lines.entry(slot).or_default().insert(tag);
    }

    fn allow_page(&mut self, page: u64, tag: u8) {
        self.pages.entry(page).or_default().insert(tag);
    }

    fn admits(set: Option<&BTreeSet<u8>>, tag: u8) -> bool {
        tag == 0 || set.is_some_and(|s| s.contains(&tag))
    }

    /// One byte-unit read check: an `Ok` read must be untorn and carry an
    /// allowed tag; an `Err` read must be the typed transient kind (UECC is
    /// acknowledged data loss reported through the error path — exactly the
    /// degradation contract under test).
    fn check_line(&self, dev: &Arc<Mssd>, slot: u64, domain: &str, v: &mut Vec<Violation>) {
        match dev.try_byte_read(slot * 64, 64, Category::Data) {
            Ok(got) => {
                let tag = got[0];
                if !got.iter().all(|b| *b == tag) {
                    v.push(Violation::new(
                        domain,
                        format!("slot {slot}: torn cacheline (mixes byte values)"),
                    ));
                } else if !Self::admits(self.lines.get(&slot), tag) {
                    v.push(Violation::new(
                        domain,
                        format!("slot {slot}: read tag {tag} was never written there"),
                    ));
                }
            }
            Err(e) if e.is_transient() => {}
            Err(e) => v.push(Violation::new(
                domain,
                format!("slot {slot}: non-transient read error: {e}"),
            )),
        }
    }

    /// One block-page read check; same classification as [`Self::check_line`].
    fn check_page(&self, dev: &Arc<Mssd>, page: u64, domain: &str, v: &mut Vec<Violation>) {
        match dev.try_block_read(MEDIA_BLOCK_BASE + page, 1, Category::Data) {
            Ok(got) => {
                let tag = got[0];
                if !got.iter().all(|b| *b == tag) {
                    v.push(Violation::new(
                        domain,
                        format!("block page {page}: torn page (mixes byte values)"),
                    ));
                } else if !Self::admits(self.pages.get(&page), tag) {
                    v.push(Violation::new(
                        domain,
                        format!("block page {page}: read tag {tag} was never written there"),
                    ));
                }
            }
            Err(e) if e.is_transient() => {}
            Err(e) => v.push(Violation::new(
                domain,
                format!("block page {page}: non-transient read error: {e}"),
            )),
        }
    }
}

impl Oracle for MediaOracle {
    fn verify(&self, dev: &Arc<Mssd>) -> Vec<Violation> {
        let mut v = self.live.clone();
        dev.recover();
        // The bad-block table is persistent state: every block retired
        // before the cut must still be known after the power cycle (more
        // may have been retired since by recovery-time program failures).
        let after: BTreeSet<u64> = dev.bad_blocks().into_iter().collect();
        for &b in &self.bad_blocks_at_cut {
            if !after.contains(&b) {
                v.push(Violation::new(
                    "media-badblock",
                    format!("block {b} retired before the cut is missing from the restored bad-block table"),
                ));
            }
        }
        for &slot in self.lines.keys() {
            self.check_line(dev, slot, "media-data", &mut v);
        }
        for &page in self.pages.keys() {
            self.check_page(dev, page, "media-data", &mut v);
        }
        for problem in dev.check_consistency() {
            v.push(Violation::new("mssd-ftl", problem));
        }
        v
    }
}

// ---------------------------------------------------------------------------
// Fail-slow (hang) stress: the host error-recovery layer under injected
// stalls, lost completions and lane wedges
// ---------------------------------------------------------------------------

/// Logical clients the hang stress spawns as futures.
const HANG_CLIENTS: usize = 6;
/// Reactor lanes the clients share — wedges must be able to strand more than
/// one client's traffic behind a stuck queue.
const HANG_LANES: usize = 2;
/// SQ depth per lane: shallow, so a wedged lane quickly backpressures into
/// parked submitters.
const HANG_DEPTH: usize = 4;
/// 64-byte cacheline slots per client (disjoint ranges in partition 0).
const HANG_SLOTS: u64 = 48;
/// Block pages per client (disjoint ranges in partition 1).
const HANG_PAGES: u64 = 6;

/// Fail-slow crash scenario: `HANG_CLIENTS` logical clients drive seeded
/// command streams through one [`mssd::Runtime`] in deterministic
/// zero-worker mode against a device whose [`mssd::HangFaultPlan`] injects
/// bounded and unbounded stalls, lost completions and lane wedges at the
/// host queue. Every command rides [`mssd::Reactor::submit_with_retry`]: a
/// hang resolves through the deadline wheel (timeout → abort → typed
/// `Aborted` completion) and the shared [`mssd::RetryPolicy`] resubmits it
/// after a seeded backoff on the virtual clock, re-routing around
/// quarantined lanes.
///
/// Run to completion (no power cut) the scenario proves the recovery layer
/// is *exactly-once observable*: although retries are at-least-once at the
/// device (a lost completion's command did execute, and its retry executes
/// again), every command eventually resolves `Ok` with its final value
/// durable exactly as submitted — never duplicated into a torn or stale
/// state, never silently dropped. Under the power-cut sweep the cut lands
/// inside timeout/abort/retry windows too, and the oracle classifies each
/// command by what the host could know:
///
/// * resolved `Ok` with an `Ok` status — the last attempt executed:
///   durable under the normal rules;
/// * resolved `Ok` with a transient error status (retry budget exhausted) —
///   some attempt may or may not have executed: in doubt, old or new value
///   but never torn;
/// * [`mssd::SubmitError::CutConsumed`], or `CutUnsubmitted` *after* at
///   least one retry (an earlier attempt may have executed before being
///   aborted): in doubt;
/// * [`mssd::SubmitError::CutUnsubmitted`] with no prior attempt executed:
///   no durable effect.
///
/// Clients write disjoint cacheline and block-page ranges, so per-location
/// device order is each client's own submission order.
#[derive(Debug, Clone)]
pub struct HangStress {
    /// Number of command batches each client submits.
    pub rounds: usize,
    /// Hang-fault rates installed on the device.
    pub hang: HangFaultConfig,
}

impl HangStress {
    /// Rates tuned for the acceptance sweep: aggressive enough that a run
    /// injects dozens of hangs of all three kinds, bounded enough that the
    /// retry budget (8 attempts) is effectively never exhausted — every
    /// command resolves, which is exactly the recovery property under test.
    pub fn quick() -> Self {
        Self {
            rounds: 30,
            hang: HangFaultConfig {
                seed: 0x4A2E_6B1D,
                stall_rate: 0.10,
                stall_min_ns: 50_000,
                stall_max_ns: 2_000_000,
                unbounded_stall_rate: 0.25,
                loss_rate: 0.06,
                wedge_rate: 0.03,
                ..HangFaultConfig::default()
            },
        }
    }
}

/// What the host learned about one command after retries; drives the
/// oracle's expectation (see [`HangStress`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HangOutcome {
    /// The final attempt completed `Ok`: effects exactly durable.
    Done,
    /// Some attempt may have executed, no attempt is known to have: old or
    /// new value, never torn.
    InDoubt,
    /// No attempt was ever consumed: no durable effect.
    Never,
}

/// Classifies one [`mssd::Reactor::submit_with_retry`] result.
fn classify_hang(out: &Result<mssd::Completion, mssd::SubmitError>, retries: u32) -> HangOutcome {
    match out {
        Ok(c) if c.status.is_ok() => HangOutcome::Done,
        // Retry budget exhausted on transient errors (or a non-transient
        // status): the aborted attempts were each executed-or-not.
        Ok(_) => HangOutcome::InDoubt,
        Err(mssd::SubmitError::CutConsumed) => HangOutcome::InDoubt,
        // The final attempt never reached the firmware, but an *earlier*
        // attempt that timed out and was aborted may have executed (a lost
        // completion's command did).
        Err(mssd::SubmitError::CutUnsubmitted) if retries > 0 => HangOutcome::InDoubt,
        Err(mssd::SubmitError::CutUnsubmitted) => HangOutcome::Never,
    }
}

/// Applies one classified command to the oracle. `Done` and `Never` reuse
/// the multi-queue bookkeeping; `InDoubt` differs from a plain power-cut
/// in-doubt only for TRIM, whose earlier aborted attempt may have executed
/// (a cut-consumed TRIM in [`apply_mq_cmd`] is known *not* to have run —
/// TRIM takes no durability step, so the cut preceded it).
fn apply_hang_cmd(
    o: &mut DeviceOracle,
    pending: &mut Vec<(u64, u8, u32)>,
    cmd: MqCmd,
    outcome: HangOutcome,
) {
    match outcome {
        HangOutcome::Done => apply_mq_cmd(o, pending, cmd, true),
        HangOutcome::Never => {}
        HangOutcome::InDoubt => match cmd {
            MqCmd::TrimPage { lba } => {
                let old = o.page_abs_tag(lba);
                o.pages_abs.insert(lba, Expect::Either(old, 0));
            }
            cmd => apply_mq_cmd(o, pending, cmd, false),
        },
    }
}

impl Scenario for HangStress {
    fn device_config(&self) -> MssdConfig {
        let mut cfg = MssdConfig::small_test();
        // Partition 0 holds the clients' byte slots, partition 1 their
        // block pages — the DeviceAsyncStress layout.
        cfg.capacity_bytes = 32 << 20;
        cfg.dram_region_bytes = 16 << 10;
        cfg.log_clean_threshold = 0.999;
        cfg.hang = HangFaultPlan::new(self.hang.clone());
        cfg
    }

    fn run(&self, dev: &Arc<Mssd>, seed: u64) -> Box<dyn Oracle> {
        let rt = mssd::Runtime::new(dev, 0, HANG_LANES, HANG_DEPTH);
        let page_size = dev.page_size() as u64;
        let block_base = (16u64 << 20) / page_size; // partition 1
        let rounds = self.rounds;

        let handles: Vec<_> = (0..HANG_CLIENTS)
            .map(|c| {
                let reactor = Arc::clone(rt.reactor());
                let dev = Arc::clone(dev);
                rt.spawn(async move {
                    let mut rng = Rng::new(seed.wrapping_add((c as u64 + 1) << 8));
                    let mut tx = TxId(((c as u32) + 1) << 16);
                    // The current transaction is *poisoned* once any write
                    // under it (or any non-transactional overwrite of a slot
                    // it has pending) resolves in doubt: the client abandons
                    // it instead of committing, so the maybe-executed chunks
                    // stay uncommitted and recovery discards them — the only
                    // outcome the oracle can still bound.
                    let mut poisoned = false;
                    // Slots with a pending (uncommitted) write of `tx`.
                    let mut tx_slots: BTreeSet<u64> = BTreeSet::new();
                    let policy = mssd::RetryPolicy::default()
                        .with_seed(seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let line_base = c as u64 * HANG_SLOTS;
                    let page_base = block_base + c as u64 * HANG_PAGES;
                    let mut log: Vec<(MqCmd, HangOutcome)> = Vec::new();
                    'rounds: for _ in 0..rounds {
                        let run_len = 1 + rng.below(3);
                        let base_slot = rng.below(HANG_SLOTS - run_len);
                        let tag = 1 + rng.below(250) as u8;
                        let transactional = rng.below(3) == 0;
                        let mut batch: Vec<(mssd::Command, MqCmd)> = Vec::new();
                        for i in 0..run_len {
                            let line = line_base + base_slot + i;
                            let t = tag.wrapping_add(i as u8);
                            batch.push((
                                mssd::Command::ByteWrite {
                                    addr: line * 64,
                                    data: vec![t; 64],
                                    txid: transactional.then_some(tx),
                                    cat: Category::Data,
                                },
                                MqCmd::Line { line, tag: t, txid: transactional.then_some(tx.0) },
                            ));
                        }
                        let mut commit_after = false;
                        match rng.below(8) {
                            0 if transactional => commit_after = true,
                            1 | 2 => {
                                let lba = page_base + rng.below(HANG_PAGES);
                                let ptag = 1 + rng.below(250) as u8;
                                batch.push((
                                    mssd::Command::BlockWrite {
                                        lba,
                                        data: vec![ptag; page_size as usize],
                                        cat: Category::Data,
                                    },
                                    MqCmd::Page { lba, tag: ptag },
                                ));
                            }
                            3 => {
                                let lba = page_base + rng.below(HANG_PAGES);
                                batch.push((
                                    mssd::Command::Trim { lba, count: 1 },
                                    MqCmd::TrimPage { lba },
                                ));
                            }
                            4 => {
                                batch.push((mssd::Command::Flush, MqCmd::Flush));
                            }
                            _ => {}
                        }
                        for (cmd, desc) in batch {
                            let (out, retries) = reactor.submit_with_retry(c, cmd, policy).await;
                            let outcome = classify_hang(&out, retries);
                            match &desc {
                                MqCmd::Line { line, txid: Some(_), .. } => match outcome {
                                    HangOutcome::Done => {
                                        tx_slots.insert(*line);
                                        log.push((desc, outcome));
                                    }
                                    // A maybe-executed transactional chunk:
                                    // abandon the transaction (below) so it
                                    // is never committed — then it has no
                                    // durable effect either way.
                                    HangOutcome::InDoubt => {
                                        poisoned = true;
                                        log.push((desc, HangOutcome::Never));
                                    }
                                    HangOutcome::Never => log.push((desc, outcome)),
                                },
                                MqCmd::Line { line, txid: None, .. } => {
                                    // An in-doubt overwrite of a slot with a
                                    // pending chunk makes the slot's fate
                                    // three-valued (old / chunk / new) if the
                                    // transaction still commits; abandoning
                                    // it keeps the outcome two-valued.
                                    if outcome == HangOutcome::InDoubt && tx_slots.contains(line) {
                                        poisoned = true;
                                    }
                                    if outcome == HangOutcome::Done {
                                        tx_slots.remove(line);
                                    }
                                    log.push((desc, outcome));
                                }
                                _ => log.push((desc, outcome)),
                            }
                            if dev.fault_tripped() {
                                break 'rounds;
                            }
                        }
                        if commit_after {
                            if poisoned {
                                // Abandoned: the maybe-executed writes stay
                                // uncommitted forever; no commit is logged,
                                // so the replay drops their pending entries.
                                tx = TxId(tx.0 + 1);
                                poisoned = false;
                                tx_slots.clear();
                            } else {
                                let (out, retries) = reactor
                                    .submit_with_retry(
                                        c,
                                        mssd::Command::Commit { txid: tx },
                                        policy,
                                    )
                                    .await;
                                log.push((
                                    MqCmd::Commit { txid: tx.0 },
                                    classify_hang(&out, retries),
                                ));
                                tx = TxId(tx.0 + 1);
                                tx_slots.clear();
                                if dev.fault_tripped() {
                                    break 'rounds;
                                }
                            }
                        }
                    }
                    log
                })
            })
            .collect();
        let logs = rt.block_on(async move {
            let mut v = Vec::with_capacity(handles.len());
            for h in handles {
                v.push(h.await);
            }
            v
        });

        // Locations are disjoint per client, so replaying each client's log
        // in its own submission order reconstructs per-location device
        // order (at-least-once duplicates re-append the same bytes, which
        // per-slot merge collapses to the same value).
        let mut o = DeviceOracle::default();
        for log in logs {
            let mut pending: Vec<(u64, u8, u32)> = Vec::new();
            for (cmd, outcome) in log {
                apply_hang_cmd(&mut o, &mut pending, cmd, outcome);
            }
        }
        Box::new(o)
    }
}

// ---------------------------------------------------------------------------
// Recorded-trace replay stress
// ---------------------------------------------------------------------------

/// Crash scenario that re-drives a recorded [`workloads::OpTrace`] against
/// ByteFS with power cut at an enumerated step — "what if the machine died
/// at step N of this captured production trace?".
///
/// Unlike the seeded stresses, the op stream is fixed by the trace: the
/// sweep's seed only varies *where* the cuts land, not *what* runs. The
/// oracle tracks a conservative shadow of durable state — a file's content
/// is only checked when its last completed op left it clean (no writes
/// since an `fsync`/`fdatasync`/`sync`); dirty files, and any path the
/// in-doubt op may have touched, are skipped, and absence is never checked
/// (matching [`FsStress`]'s contract).
#[derive(Debug, Clone)]
pub struct ReplayStress {
    /// The recorded op trace the scenario re-drives (timing is ignored;
    /// records are applied sequentially in `seq` order).
    pub trace: OpTrace,
}

impl ReplayStress {
    /// Wraps an externally recorded trace.
    pub fn new(trace: OpTrace) -> Self {
        Self { trace }
    }

    /// Default sweep trace: the CI-runner-churn replay-corpus scenario
    /// (checkout → build → clean rounds) recorded on ByteFS at a scale
    /// yielding a few hundred file-system calls.
    pub fn quick() -> Self {
        let mut cfg = MssdConfig::small_test();
        cfg.capacity_bytes = 64 << 20;
        let recorded =
            record_corpus(CorpusKind::CiChurn, FsKind::ByteFs, cfg, Scale::new(0.25), 11)
                .expect("recording the CI-churn corpus trace");
        Self { trace: recorded.trace }
    }
}

/// Per-file shadow state of a [`ReplayStress`] run.
#[derive(Debug, Clone, Default)]
struct ShadowFile {
    /// Logical content after every completed op (durable or not).
    current: Vec<u8>,
    /// Content at the last completed sync point, if any.
    synced: Option<Vec<u8>>,
    /// `true` when `current` has diverged from `synced` (writes since the
    /// last sync) — the oracle then skips the file entirely.
    dirty: bool,
}

impl ShadowFile {
    fn flush(&mut self) {
        self.synced = Some(self.current.clone());
        self.dirty = false;
    }
}

/// Expected durable state of a [`ReplayStress`] run.
struct ReplayOracle {
    files: BTreeMap<String, ShadowFile>,
    dirs: BTreeSet<String>,
    /// Paths the op straddled by the cut may have altered.
    in_doubt: BTreeSet<String>,
    formatted: bool,
}

impl Scenario for ReplayStress {
    fn device_config(&self) -> MssdConfig {
        let mut cfg = MssdConfig::small_test();
        cfg.capacity_bytes = 64 << 20;
        if self.trace.meta.capacity_bytes != 0 {
            cfg.capacity_bytes = self.trace.meta.capacity_bytes;
        }
        if self.trace.meta.page_size != 0 {
            cfg.page_size = self.trace.meta.page_size as usize;
        }
        cfg
    }

    fn run(&self, dev: &Arc<Mssd>, _seed: u64) -> Box<dyn Oracle> {
        let mut o = ReplayOracle {
            files: BTreeMap::new(),
            dirs: BTreeSet::new(),
            in_doubt: BTreeSet::new(),
            formatted: false,
        };
        let fs = match ByteFs::format(Arc::clone(dev), ByteFsConfig::full()) {
            Ok(fs) => fs,
            Err(_) => return Box::new(o),
        };
        if dev.fault_tripped() {
            return Box::new(o);
        }
        o.formatted = true;

        // Recorded fd -> live handle / path. The trace is applied strictly
        // in `seq` order (single stream), so recorded fds are unique enough
        // without the tenant qualifier the timed replayer uses.
        let mut fds: HashMap<u64, Fd> = HashMap::new();
        let mut fd_paths: HashMap<u64, String> = HashMap::new();

        for rec in &self.trace.records {
            let touched = apply_replay_record(&*fs, rec, &mut fds, &mut fd_paths, dev, &mut o);
            if dev.fault_tripped() {
                o.in_doubt.extend(touched);
                break;
            }
        }
        Box::new(o)
    }
}

/// Applies one trace record to the live fs; when the call completes without
/// tripping the fault, folds its durability effect into the oracle's
/// shadow. Returns the paths whose durable state the op may alter (they
/// become in-doubt if the cut lands inside the op).
fn apply_replay_record(
    fs: &dyn FileSystem,
    rec: &workloads::OpRecord,
    fds: &mut HashMap<u64, Fd>,
    fd_paths: &mut HashMap<u64, String>,
    dev: &Arc<Mssd>,
    o: &mut ReplayOracle,
) -> Vec<String> {
    use workloads::replay::{open_flags, NO_FD};
    use workloads::OpKind;

    let path_of = |fd_paths: &HashMap<u64, String>, fd: &u64| fd_paths.get(fd).cloned();
    match &rec.op {
        OpKind::Create { path, fd } => {
            let live = fs.create(path).ok();
            if let Some(h) = live {
                if *fd == NO_FD {
                    fs.close(h).ok();
                } else {
                    fds.insert(*fd, h);
                    fd_paths.insert(*fd, path.clone());
                }
            }
            if !dev.fault_tripped() && live.is_some() {
                // create truncates an existing file, so the old synced
                // content no longer binds: mark dirty until the next sync.
                let f = o.files.entry(path.clone()).or_default();
                f.current.clear();
                f.dirty = true;
            }
            vec![path.clone()]
        }
        OpKind::Open { path, flags, fd } => {
            let fl = open_flags(*flags);
            let live = fs.open(path, fl).ok();
            if let Some(h) = live {
                if *fd == NO_FD {
                    fs.close(h).ok();
                } else {
                    fds.insert(*fd, h);
                    fd_paths.insert(*fd, path.clone());
                }
            }
            if !dev.fault_tripped() && live.is_some() && (fl.truncate || fl.create) {
                let f = o.files.entry(path.clone()).or_default();
                if fl.truncate {
                    f.current.clear();
                    f.dirty = true;
                }
            }
            if fl.truncate {
                vec![path.clone()]
            } else {
                Vec::new()
            }
        }
        OpKind::Close { fd } => {
            if let Some(h) = fds.remove(fd) {
                fs.close(h).ok();
            }
            fd_paths.remove(fd);
            Vec::new()
        }
        OpKind::Read { fd, offset, len } => {
            if let Some(h) = fds.get(fd) {
                fs.read(*h, *offset, *len as usize).ok();
            }
            Vec::new()
        }
        OpKind::Write { fd, offset, data } => {
            let buf = data.to_vec();
            if let Some(h) = fds.get(fd) {
                fs.write(*h, *offset, &buf).ok();
            }
            let path = path_of(fd_paths, fd);
            if !dev.fault_tripped() {
                if let Some(f) = path.as_ref().and_then(|p| o.files.get_mut(p)) {
                    let end = *offset as usize + buf.len();
                    if f.current.len() < end {
                        f.current.resize(end, 0);
                    }
                    f.current[*offset as usize..end].copy_from_slice(&buf);
                    f.dirty = true;
                }
            }
            path.into_iter().collect()
        }
        OpKind::Append { fd, data } => {
            let buf = data.to_vec();
            if let Some(h) = fds.get(fd) {
                fs.append(*h, &buf).ok();
            }
            let path = path_of(fd_paths, fd);
            if !dev.fault_tripped() {
                if let Some(f) = path.as_ref().and_then(|p| o.files.get_mut(p)) {
                    f.current.extend_from_slice(&buf);
                    f.dirty = true;
                }
            }
            path.into_iter().collect()
        }
        OpKind::Truncate { fd, size } => {
            if let Some(h) = fds.get(fd) {
                fs.truncate(*h, *size).ok();
            }
            let path = path_of(fd_paths, fd);
            if !dev.fault_tripped() {
                if let Some(f) = path.as_ref().and_then(|p| o.files.get_mut(p)) {
                    f.current.resize(*size as usize, 0);
                    f.dirty = true;
                }
            }
            path.into_iter().collect()
        }
        OpKind::Fsync { fd } | OpKind::Fdatasync { fd } => {
            if let Some(h) = fds.get(fd) {
                match &rec.op {
                    OpKind::Fdatasync { .. } => fs.fdatasync(*h).ok(),
                    _ => fs.fsync(*h).ok(),
                };
            }
            let path = path_of(fd_paths, fd);
            if !dev.fault_tripped() {
                if let Some(f) = path.as_ref().and_then(|p| o.files.get_mut(p)) {
                    f.flush();
                }
            }
            path.into_iter().collect()
        }
        OpKind::Fstat { fd } => {
            if let Some(h) = fds.get(fd) {
                fs.fstat(*h).ok();
            }
            Vec::new()
        }
        OpKind::Stat { path } => {
            fs.stat(path).ok();
            Vec::new()
        }
        OpKind::Mkdir { path } => {
            fs.mkdir(path).ok();
            if !dev.fault_tripped() {
                o.dirs.insert(path.clone());
            }
            vec![path.clone()]
        }
        OpKind::Rmdir { path } => {
            fs.rmdir(path).ok();
            if !dev.fault_tripped() {
                o.dirs.remove(path);
            }
            vec![path.clone()]
        }
        OpKind::Unlink { path } => {
            fs.unlink(path).ok();
            if !dev.fault_tripped() {
                o.files.remove(path);
            }
            vec![path.clone()]
        }
        OpKind::Rename { from, to } => {
            fs.rename(from, to).ok();
            if !dev.fault_tripped() {
                if let Some(f) = o.files.remove(from) {
                    o.files.insert(to.clone(), f);
                }
                if o.dirs.remove(from) {
                    o.dirs.insert(to.clone());
                }
            }
            vec![from.clone(), to.clone()]
        }
        OpKind::Readdir { path } => {
            fs.readdir(path).ok();
            Vec::new()
        }
        // A completed whole-fs sync flushes every file; an in-doubt one may
        // have flushed any subset, but that only *adds* durability: clean
        // files are unchanged by it and dirty files are skipped anyway, so
        // nothing becomes in-doubt.
        OpKind::Sync | OpKind::Unmount => {
            match &rec.op {
                OpKind::Sync => fs.sync().ok(),
                _ => fs.unmount().ok(),
            };
            if !dev.fault_tripped() {
                for f in o.files.values_mut() {
                    f.flush();
                }
            }
            Vec::new()
        }
        OpKind::DropCaches => {
            fs.drop_caches();
            Vec::new()
        }
    }
}

impl Oracle for ReplayOracle {
    fn verify(&self, dev: &Arc<Mssd>) -> Vec<Violation> {
        let mut v = Vec::new();
        dev.recover();
        if !self.formatted {
            for problem in dev.check_consistency() {
                v.push(Violation::new("mssd-ftl", problem));
            }
            return v;
        }
        let fs = match ByteFs::mount(Arc::clone(dev), ByteFsConfig::full()) {
            Ok(fs) => fs,
            Err(e) => {
                v.push(Violation::new("fs-mount", format!("remount failed: {e}")));
                return v;
            }
        };
        for dir in &self.dirs {
            if self.in_doubt.contains(dir) {
                continue;
            }
            if !fs.exists(dir) {
                v.push(Violation::new("replay-namespace", format!("{dir}: committed mkdir lost")));
            }
        }
        for (path, shadow) in &self.files {
            if shadow.dirty || self.in_doubt.contains(path) {
                continue;
            }
            let Some(synced) = &shadow.synced else { continue };
            match fs.read_file(path) {
                Ok(got) if &got == synced => {}
                Ok(got) => v.push(Violation::new(
                    "replay-data",
                    format!(
                        "{path}: {} bytes read, {} expected (synced content diverged)",
                        got.len(),
                        synced.len()
                    ),
                )),
                Err(e) => v.push(Violation::new(
                    "replay-data",
                    format!("{path}: fsynced file lost ({e})"),
                )),
            }
        }
        v
    }
}
