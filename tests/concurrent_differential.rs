//! Differential test: a multi-threaded ByteFS workload run, replayed
//! single-threaded, must produce an identical post-`fsync` on-disk image.
//!
//! This is the FS-level counterpart of the device-level replay test in
//! `mssd/tests/concurrency.rs` (and of PR 1's `sharded_log_equiv` proptest),
//! one layer up the stack: [`workloads::run_concurrent`] partitions a
//! workload's op stream into per-thread shards; here the *same* shard
//! streams are replayed sequentially on a second volume, both volumes are
//! unmounted and **remounted** — so only durable, on-device state is
//! visible — and the two file trees must then be observationally identical:
//! same paths, same types, same sizes, same byte-for-byte contents.
//!
//! Physical placement (which LBA a file landed on) and virtual timestamps
//! legitimately depend on the interleaving; the on-disk *image* a reader can
//! observe must not.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytefs::{ByteFs, ByteFsConfig};
use fskit::{FileSystem, FileSystemExt, FileType};
use mssd::{DramMode, Mssd, MssdConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use workloads::filebench::{Filebench, Personality};
use workloads::micro::{Micro, MicroOp};
use workloads::{run_concurrent, shard_seed, Recorder, Scale, Workload};

const THREADS: usize = 4;

/// One file-system object as an external observer sees it after a remount.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Observed {
    Dir,
    File { size: u64, content: Vec<u8> },
}

/// Walks the mounted tree into a path → observation map.
fn snapshot(fs: &dyn FileSystem) -> BTreeMap<String, Observed> {
    let mut out = BTreeMap::new();
    let mut stack = vec![String::from("/")];
    while let Some(dir) = stack.pop() {
        for entry in fs.readdir(&dir).unwrap() {
            let path = if dir == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{dir}/{}", entry.name)
            };
            match entry.file_type {
                FileType::Directory => {
                    out.insert(path.clone(), Observed::Dir);
                    stack.push(path);
                }
                FileType::File => {
                    let meta = fs.stat(&path).unwrap();
                    let content = fs.read_file(&path).unwrap();
                    assert_eq!(content.len() as u64, meta.size, "{path}: size agrees with data");
                    out.insert(path, Observed::File { size: meta.size, content });
                }
            }
        }
    }
    out
}

fn fresh_bytefs() -> (Arc<Mssd>, Arc<ByteFs>) {
    let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
    let fs = ByteFs::format(Arc::clone(&dev), ByteFsConfig::full()).unwrap();
    (dev, fs)
}

/// Runs `workload` concurrently on one volume and replays the identical
/// shard streams sequentially on another; asserts the remounted images match.
fn assert_differential(workload: &(dyn Workload + Sync), seed: u64) {
    // Concurrent run.
    let (dev_c, fs_c) = fresh_bytefs();
    {
        let fs: Arc<dyn FileSystem> = fs_c;
        let result = run_concurrent(&dev_c, &fs, workload, THREADS, seed).unwrap();
        assert!(result.aggregate.ops > 0);
        fs.unmount().unwrap();
    }

    // Sequential replay: same setup, then each shard's stream in thread
    // order, with exactly the per-shard seeds the concurrent driver used.
    let (dev_s, fs_s) = fresh_bytefs();
    {
        let mut rng = SmallRng::seed_from_u64(seed);
        workload.setup(fs_s.as_ref(), &mut rng).unwrap();
        fs_s.drop_caches();
        for t in 0..THREADS {
            let mut rng = SmallRng::seed_from_u64(shard_seed(seed, t));
            let mut rec = Recorder::new();
            workload.run_shard(fs_s.as_ref(), t, THREADS, &mut rng, &mut rec).unwrap();
        }
        fs_s.unmount().unwrap();
    }

    // Remount both: from here on, only the durable on-disk image is visible.
    let fs_c = ByteFs::mount(dev_c, ByteFsConfig::full()).unwrap();
    let fs_s = ByteFs::mount(dev_s, ByteFsConfig::full()).unwrap();
    let concurrent = snapshot(fs_c.as_ref());
    let sequential = snapshot(fs_s.as_ref());
    assert_eq!(concurrent.len(), sequential.len(), "{}: object counts diverge", workload.name());
    assert_eq!(concurrent, sequential, "{}: on-disk images diverge", workload.name());
}

#[test]
fn micro_create_concurrent_equals_sequential_replay() {
    assert_differential(&Micro::new(MicroOp::Create, Scale::tiny()), 42);
}

#[test]
fn micro_delete_concurrent_equals_sequential_replay() {
    assert_differential(&Micro::new(MicroOp::Delete, Scale::tiny()), 17);
}

#[test]
fn varmail_concurrent_equals_sequential_replay() {
    assert_differential(&Filebench::new(Personality::Varmail, Scale::tiny()), 7);
}

#[test]
fn fileserver_concurrent_equals_sequential_replay() {
    assert_differential(&Filebench::new(Personality::Fileserver, Scale::tiny()), 23);
}
