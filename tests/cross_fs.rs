//! Cross-file-system integration tests: the same operation sequences must
//! produce identical user-visible contents on ByteFS and every baseline, and
//! ByteFS must agree with an in-memory model under randomized operation
//! sequences.

use bytefs_repro::fskit::{FileSystemExt, OpenFlags};
use bytefs_repro::mssd::MssdConfig;
use bytefs_repro::workloads::FsKind;
use proptest::prelude::*;

const ALL_KINDS: [FsKind; 7] = [
    FsKind::Ext4,
    FsKind::F2fs,
    FsKind::Nova,
    FsKind::Pmfs,
    FsKind::ByteFs,
    FsKind::ByteFsDual,
    FsKind::ByteFsLog,
];

#[test]
fn identical_scenario_on_every_file_system() {
    for kind in ALL_KINDS {
        let (_dev, fs) = kind.build(MssdConfig::small_test());
        fs.mkdir("/docs").unwrap();
        fs.mkdir("/docs/reports").unwrap();
        fs.write_file("/docs/reports/q1", &vec![1u8; 5000]).unwrap();
        fs.write_file("/docs/reports/q2", &vec![2u8; 12_000]).unwrap();

        // Overwrite part of q1, append to q2.
        let fd = fs.open("/docs/reports/q1", OpenFlags::read_write()).unwrap();
        fs.write(fd, 1000, &[9u8; 256]).unwrap();
        fs.fsync(fd).unwrap();
        fs.close(fd).unwrap();
        let fd = fs.open("/docs/reports/q2", OpenFlags::read_write().with_append()).unwrap();
        fs.write(fd, 0, &[7u8; 100]).unwrap();
        fs.close(fd).unwrap();

        fs.rename("/docs/reports/q2", "/docs/q2-final").unwrap();
        fs.unlink("/docs/reports/q1").unwrap();
        fs.rmdir("/docs/reports").unwrap();
        fs.sync().unwrap();

        let q2 = fs.read_file("/docs/q2-final").unwrap();
        assert_eq!(q2.len(), 12_100, "{kind}");
        assert_eq!(&q2[..12_000], &vec![2u8; 12_000][..], "{kind}");
        assert_eq!(&q2[12_000..], &[7u8; 100][..], "{kind}");
        assert!(!fs.exists("/docs/reports"), "{kind}");
        assert_eq!(fs.readdir("/docs").unwrap().len(), 1, "{kind}");
    }
}

#[test]
fn sparse_files_and_truncation_behave_identically() {
    for kind in ALL_KINDS {
        let (_dev, fs) = kind.build(MssdConfig::small_test());
        let fd = fs.create("/sparse").unwrap();
        // Write at an offset far beyond EOF, leaving a hole.
        fs.write(fd, 20_000, b"tail").unwrap();
        fs.fsync(fd).unwrap();
        let meta = fs.fstat(fd).unwrap();
        assert_eq!(meta.size, 20_004, "{kind}");
        let data = fs.read(fd, 0, 30_000).unwrap();
        assert_eq!(data.len(), 20_004, "{kind}");
        assert!(data[..20_000].iter().all(|b| *b == 0), "{kind}: hole reads as zeros");
        assert_eq!(&data[20_000..], b"tail", "{kind}");

        fs.truncate(fd, 10_000).unwrap();
        assert_eq!(fs.read(fd, 0, 30_000).unwrap().len(), 10_000, "{kind}");
        fs.truncate(fd, 0).unwrap();
        assert!(fs.read(fd, 0, 10).unwrap().is_empty(), "{kind}");
    }
}

/// A tiny model-based property test: random write/read/truncate sequences on
/// ByteFS must match a plain in-memory byte-vector model.
#[derive(Debug, Clone)]
enum FileOp {
    Write { offset: u16, len: u8 },
    Read { offset: u16, len: u8 },
    Truncate { size: u16 },
    Fsync,
}

fn file_op_strategy() -> impl Strategy<Value = FileOp> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(offset, len)| FileOp::Write { offset, len }),
        (any::<u16>(), any::<u8>()).prop_map(|(offset, len)| FileOp::Read { offset, len }),
        any::<u16>().prop_map(|size| FileOp::Truncate { size }),
        Just(FileOp::Fsync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn bytefs_matches_an_in_memory_model(ops in proptest::collection::vec(file_op_strategy(), 1..40)) {
        let (_dev, fs) = FsKind::ByteFs.build(MssdConfig::small_test());
        let fd = fs.create("/model").unwrap();
        let mut model: Vec<u8> = Vec::new();
        let mut tag: u8 = 0;
        for op in ops {
            match op {
                FileOp::Write { offset, len } => {
                    let offset = offset as usize % 30_000;
                    let len = (len as usize % 200) + 1;
                    tag = tag.wrapping_add(1);
                    let data = vec![tag; len];
                    fs.write(fd, offset as u64, &data).unwrap();
                    if model.len() < offset + len {
                        model.resize(offset + len, 0);
                    }
                    model[offset..offset + len].copy_from_slice(&data);
                }
                FileOp::Read { offset, len } => {
                    let offset = offset as usize % 32_000;
                    let len = len as usize;
                    let got = fs.read(fd, offset as u64, len).unwrap();
                    let expected: &[u8] = if offset >= model.len() {
                        &[]
                    } else {
                        &model[offset..(offset + len).min(model.len())]
                    };
                    prop_assert_eq!(got, expected.to_vec());
                }
                FileOp::Truncate { size } => {
                    let size = size as usize % 32_000;
                    fs.truncate(fd, size as u64).unwrap();
                    model.resize(size, 0);
                }
                FileOp::Fsync => fs.fsync(fd).unwrap(),
            }
            prop_assert_eq!(fs.fstat(fd).unwrap().size, model.len() as u64);
        }
        fs.fsync(fd).unwrap();
        let full = fs.read(fd, 0, model.len()).unwrap();
        prop_assert_eq!(full, model);
    }
}
