//! End-to-end tests of the paper's performance / traffic-ordering claims at
//! a reduced scale. The crash-consistency claims that used to be
//! spot-checked here moved to the `crashkit` crate, which enumerates crash
//! points systematically (`crates/crashkit/tests/ported_crash_suites.rs`
//! holds the direct ports of the old tests).

use bytefs_repro::mssd::stats::Direction;
use bytefs_repro::mssd::MssdConfig;
use bytefs_repro::workloads::filebench::{Filebench, Personality};
use bytefs_repro::workloads::micro::{Micro, MicroOp};
use bytefs_repro::workloads::oltp::Oltp;
use bytefs_repro::workloads::{run_workload, FsKind, Scale};

fn small_cfg() -> MssdConfig {
    MssdConfig::small_test()
}

#[test]
fn bytefs_outperforms_block_baselines_on_metadata_heavy_workloads() {
    let w = Micro::new(MicroOp::Create, Scale::tiny());
    let bytefs = run_workload(FsKind::ByteFs, small_cfg(), &w, 3).unwrap();
    let ext4 = run_workload(FsKind::Ext4, small_cfg(), &w, 3).unwrap();
    assert!(
        bytefs.kops_per_sec > ext4.kops_per_sec,
        "create: bytefs {:.2} kops/s vs ext4 {:.2} kops/s",
        bytefs.kops_per_sec,
        ext4.kops_per_sec
    );
    // And with far less metadata write traffic (the Figure 8 claim).
    assert!(bytefs.metadata_write_bytes() * 2 < ext4.metadata_write_bytes());
}

#[test]
fn bytefs_beats_ext4_and_f2fs_on_varmail_and_oltp() {
    for workload in ["varmail", "oltp"] {
        let run = |kind: FsKind| {
            if workload == "varmail" {
                let w = Filebench::new(Personality::Varmail, Scale::tiny());
                run_workload(kind, small_cfg(), &w, 5).unwrap()
            } else {
                let w = Oltp { transactions: 60, file_size: 64 << 10, ..Oltp::new(Scale::tiny()) };
                run_workload(kind, small_cfg(), &w, 5).unwrap()
            }
        };
        let bytefs = run(FsKind::ByteFs);
        let ext4 = run(FsKind::Ext4);
        let f2fs = run(FsKind::F2fs);
        assert!(
            bytefs.kops_per_sec > ext4.kops_per_sec,
            "{workload}: bytefs {:.2} <= ext4 {:.2}",
            bytefs.kops_per_sec,
            ext4.kops_per_sec
        );
        assert!(
            bytefs.kops_per_sec > f2fs.kops_per_sec,
            "{workload}: bytefs {:.2} <= f2fs {:.2}",
            bytefs.kops_per_sec,
            f2fs.kops_per_sec
        );
    }
}

#[test]
fn read_heavy_workloads_do_not_regress_much_on_bytefs() {
    let w = Filebench::new(Personality::Webserver, Scale::tiny());
    let bytefs = run_workload(FsKind::ByteFs, small_cfg(), &w, 9).unwrap();
    let ext4 = run_workload(FsKind::Ext4, small_cfg(), &w, 9).unwrap();
    // The paper reports similar performance on read-heavy workloads; allow a
    // modest slowdown but nothing pathological.
    assert!(
        bytefs.kops_per_sec > 0.5 * ext4.kops_per_sec,
        "webserver: bytefs {:.2} kops/s vs ext4 {:.2} kops/s",
        bytefs.kops_per_sec,
        ext4.kops_per_sec
    );
}

#[test]
fn bytefs_metadata_writes_are_byte_granular_and_ext4s_are_not() {
    let w = Micro::new(MicroOp::Mkdir, Scale::tiny());
    let bytefs = run_workload(FsKind::ByteFs, small_cfg(), &w, 2).unwrap();
    let ext4 = run_workload(FsKind::Ext4, small_cfg(), &w, 2).unwrap();
    let per_op_bytefs = bytefs.metadata_write_bytes() as f64 / bytefs.ops as f64;
    let per_op_ext4 = ext4.metadata_write_bytes() as f64 / ext4.ops as f64;
    assert!(per_op_bytefs < 1024.0, "bytefs writes {per_op_bytefs:.0} B of metadata per mkdir");
    assert!(
        per_op_ext4 > 2.0 * per_op_bytefs,
        "ext4 ({per_op_ext4:.0} B/op) should amplify metadata writes well beyond ByteFS \
         ({per_op_bytefs:.0} B/op); JBD2 batching absorbs some of it at this scale"
    );
}

#[test]
fn write_amplification_ordering_matches_table2() {
    let w = Filebench::new(Personality::Varmail, Scale::tiny());
    let bytefs = run_workload(FsKind::ByteFs, small_cfg(), &w, 8).unwrap();
    let f2fs = run_workload(FsKind::F2fs, small_cfg(), &w, 8).unwrap();
    let ext4 = run_workload(FsKind::Ext4, small_cfg(), &w, 8).unwrap();
    assert!(ext4.write_amplification() > f2fs.write_amplification());
    assert!(f2fs.write_amplification() > bytefs.write_amplification());
    // Sanity: amplification factors are at least 1 for the block file systems.
    assert!(ext4.write_amplification() > 1.0);
    // Host-side metadata read caching keeps read amplification bounded.
    assert!(ext4.read_amplification() < 10.0);
}

#[test]
fn device_write_traffic_reduction_holds_end_to_end() {
    let w = Oltp { transactions: 60, file_size: 64 << 10, ..Oltp::new(Scale::tiny()) };
    let bytefs = run_workload(FsKind::ByteFs, small_cfg(), &w, 6).unwrap();
    let ext4 = run_workload(FsKind::Ext4, small_cfg(), &w, 6).unwrap();
    let reduction = ext4
        .traffic
        .host_bytes_by_category(Direction::Write, bytefs_repro::mssd::Category::Journal)
        + ext4.metadata_write_bytes();
    assert!(
        reduction > bytefs.metadata_write_bytes() * 2,
        "ByteFS should cut metadata+journal write traffic at least in half"
    );
}
