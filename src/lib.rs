//! Umbrella crate for the ByteFS reproduction workspace.
//!
//! This crate re-exports the member crates so that the workspace-level
//! examples and integration tests can use a single dependency. Library users
//! should depend on the individual crates (`bytefs`, `mssd`, ...) directly.

pub use baselines;
pub use bytefs;
pub use crashkit;
pub use fskit;
pub use kvstore;
pub use mssd;
pub use workloads;
