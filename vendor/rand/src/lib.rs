//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API the workloads use — `SmallRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_range` and `gen_bool` — with a deterministic xoshiro256++ generator
//! (the same family the real `SmallRng` uses on 64-bit targets). Streams are
//! reproducible across runs for a given seed, which is all the measurement
//! harness requires; cryptographic quality is explicitly out of scope.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for random value generation, blanket-implemented for
/// every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable from their standard distribution by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Small fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real `SmallRng` on 64-bit
    /// targets. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce one from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn range_distribution_covers_span() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
