//! The [`Strategy`] trait and combinators (`prop_map`, boxing, unions).

use crate::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Object-safe core used for type-erased strategies.
trait DynStrategy<V> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy, produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.dyn_new_value(rng)
    }
}

/// Uniform choice between several strategies of the same value type
/// (the engine behind `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].new_value(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
