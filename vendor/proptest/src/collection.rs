//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

/// A strategy producing `Vec`s of values from an element strategy, with a
/// length drawn from `len`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose length lies
/// in `len` (half-open, as in `1..40`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec strategy with empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}
