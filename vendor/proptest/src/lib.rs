//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the API subset the workspace's tests use: [`Strategy`] with
//! `prop_map`, [`any`], tuple and range strategies, [`collection::vec`],
//! `prop_oneof!`, `proptest!`, `prop_assert!` / `prop_assert_eq!` and
//! [`ProptestConfig`]. Cases are generated from a deterministic per-test RNG,
//! so failures are reproducible run-to-run. The one intentional omission is
//! shrinking: a failing case is reported verbatim (its `Debug` rendering is
//! printed) instead of being minimized first.

use std::fmt::Debug;
use std::ops::Range;

pub mod collection;
pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Deterministic generator feeding the strategies (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for test case number `case` of a named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        state ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self { state: state | 1 }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        self.next_u64() % bound
    }
}

/// Runner configuration accepted by `proptest!`'s `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Ignored (shrinking is not implemented); kept so struct-update syntax
    /// against the real crate's field set keeps compiling.
    pub max_shrink_iters: u32,
    /// Ignored; kept for struct-update compatibility.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_shrink_iters: 0, max_global_rejects: 1024 }
    }
}

/// Types with a canonical "anything goes" strategy, used by [`any`].
pub trait Arbitrary: Sized + Debug {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy generating arbitrary values of `A` (`any::<u16>()` etc.).
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(std::marker::PhantomData<A>);

/// Returns the canonical strategy for type `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Everything a `use proptest::prelude::*;` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig, TestRng,
    };
}

/// Picks one of several same-valued strategies uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Property-test assertion (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion (behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-test inequality assertion (behaves like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases. On failure the
/// offending input's `Debug` rendering is printed before the panic propagates.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    let values = ( $( $crate::Strategy::new_value(&($strategy), &mut rng), )+ );
                    let described = format!("{values:?}");
                    let outcome = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(move || {
                            let ( $($pat,)+ ) = values;
                            $body
                        }),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {case}/{} of `{}` failed for input: {described}",
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn strategies_compose() {
        let strat = prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| (a as u16) + (b as u16)),
            Just(7u16),
            (0u16..5).prop_map(|v| v),
        ];
        let mut rng = TestRng::for_case("compose", 0);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!(v <= 510 + 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(any::<u8>(), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
        }

        #[test]
        fn multiple_params(a in 0u32..10, b in 10u32..20) {
            prop_assert!(a < 10 && (10..20).contains(&b));
        }
    }
}
