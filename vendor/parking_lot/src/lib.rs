//! Offline API-compatible stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this crate re-implements
//! the small slice of the `parking_lot` API the workspace uses on top of
//! `std::sync`. The key behavioural property callers rely on is preserved:
//! `lock()` returns the guard directly (no poisoning `Result`).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. A panic while a
    /// previous holder held the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock whose guards are infallible, mirroring
/// `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
