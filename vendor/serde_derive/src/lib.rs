//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The real serde derives generate visitor-based (de)serialization code. In
//! this workspace the traits are marker-only (see the sibling `serde` crate),
//! so the derives have nothing to emit: the blanket impls in `serde` already
//! cover every type. Accepting (and ignoring) `#[serde(...)]` helper
//! attributes keeps annotated types compiling unchanged.

use proc_macro::TokenStream;

/// Derives the marker `serde::Serialize` trait (no generated code needed —
/// the stand-in trait has a blanket impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives the marker `serde::Deserialize` trait (no generated code needed —
/// the stand-in trait has a blanket impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
