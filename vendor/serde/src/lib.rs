//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types so they
//! are ready for real serialization once a registry is reachable, but nothing
//! in-tree serializes through serde yet (reports are hand-rendered JSON and
//! markdown). This stand-in therefore provides the two traits as markers with
//! blanket impls, plus no-op derive macros, so every `#[derive(Serialize,
//! Deserialize)]` and `T: Serialize` bound in the tree compiles unchanged.
//!
//! Swapping back to the real serde is a one-line change per manifest and
//! requires no source edits.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Marker for types deserializable without borrowing from the input.
    pub trait DeserializeOwned {}

    impl<T: ?Sized> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Probe {
        #[serde(default)]
        x: u32,
    }

    fn takes_serialize<T: Serialize>(_t: &T) {}

    #[test]
    fn derive_and_bounds_compile() {
        let p = Probe { x: 7 };
        takes_serialize(&p);
        assert_eq!(p, Probe { x: 7 });
    }
}
