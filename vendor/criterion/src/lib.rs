//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Exposes the API subset the workspace's benches use — [`Criterion`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — on a simple wall-clock harness: per benchmark it
//! warms up briefly, then takes `sample_size` timed samples and reports the
//! minimum, median and maximum per-iteration time. No statistics beyond that,
//! no HTML reports, but `cargo bench` output stays comparable run-to-run.
//!
//! When the binary is invoked with `--test` (as `cargo test` does for bench
//! targets with `harness = false`), every benchmark body runs exactly once so
//! the benches double as smoke tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark runner configuration and registry (API-compatible core of
/// `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test" || a == "--list");
        Self { sample_size: 20, test_mode }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        if self.test_mode {
            // Smoke-test mode: run the body once and report nothing.
            f(&mut b);
            println!("test {id} ... ok");
            return self;
        }

        // Calibration: grow the iteration count until one sample takes ≥ 2 ms
        // (or a cap is hit), so short benchmarks are not all timer noise.
        let mut iters = 1u64;
        loop {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter.first().copied().unwrap_or(0.0);
        let med = per_iter[per_iter.len() / 2];
        let max = per_iter.last().copied().unwrap_or(0.0);
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples x {iters} iters)",
            fmt_ns(min),
            fmt_ns(med),
            fmt_ns(max),
            per_iter.len(),
        );
        self
    }

    /// Finalizes the run (kept for API compatibility; no-op).
    pub fn final_summary(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it once per configured iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions (both the positional and the
/// `name/config/targets` forms of the real macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates the `main` function running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion { sample_size: 2, test_mode: true };
        let mut ran = false;
        c.bench_function("probe", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("us"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
    }
}
